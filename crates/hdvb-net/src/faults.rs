//! Deterministic wire fault injection.
//!
//! [`NetFaultPlan`] is the network sibling of `hdvb_core::FaultPlan`
//! (the PR-5 sweep chaos grammar): a compact spec string — usually from
//! the `HDVB_NET_FAULTS` environment variable — describes faults that
//! fire at exact *data-message* indices on a connection, and
//! [`FaultyStream`] injects them on either side of any socket. Faults
//! are deterministic: the plan's message clock counts only data-plane
//! messages (HELLO/OPEN/FRAME/…), never heartbeats or acks, whose
//! timing depends on the scheduler; a given spec therefore reproduces
//! the same failures on every run.
//!
//! Spec grammar (comma-separated tokens; indices are 0-based and count
//! the wrapped side's outgoing data messages across the whole plan
//! lifetime, reconnects included):
//!
//! * `drop@<msg>` — sever the connection instead of sending message
//!   `<msg>`.
//! * `truncate@<msg>[:<bytes>]` — write only the first `<bytes>` bytes
//!   of message `<msg>`, then sever. Default: a seeded cut inside the
//!   16-byte header, leaving the peer holding a partial frame.
//! * `stall@<msg>[:<ms>]` — sleep `<ms>` milliseconds before sending
//!   message `<msg>` (default: seeded 20–100 ms).
//! * `garble@<msg>[:<bit>]` — flip bit `<bit>` (modulo the message's
//!   bit length) of message `<msg>` and send it anyway; the peer's
//!   header checksum or payload trailer catches it (default: seeded).
//! * `seed=<n>` — seed for the derived parameters (default 0; position
//!   in the spec does not matter).
//!
//! Example: `drop@4,truncate@9:11,garble@13,stall@17:40,seed=7`.

use crate::wire::{MsgType, HEADER_LEN, MAGIC, TRAILER_LEN};
use hdvb_core::splitmix64;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What a matching rule does to its message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFaultKind {
    /// Sever the connection instead of sending the message.
    Drop,
    /// Send only this many bytes of the message, then sever.
    Truncate(usize),
    /// Sleep this long, then send the message normally.
    Stall(Duration),
    /// Flip this bit (modulo the message's bit length) and send.
    Garble(u64),
}

impl NetFaultKind {
    /// True for faults that end the connection (drop, truncate).
    pub fn severs(self) -> bool {
        matches!(self, NetFaultKind::Drop | NetFaultKind::Truncate(_))
    }
}

#[derive(Debug)]
struct NetRule {
    at: u64,
    kind: NetFaultKind,
    fired: AtomicBool,
}

/// A parsed, deterministic wire fault plan. Shared (via `Arc`) across
/// every stream a client opens, so the message clock keeps counting
/// through reconnects and fault indices address the whole session
/// history.
#[derive(Debug, Default)]
pub struct NetFaultPlan {
    rules: Vec<NetRule>,
    seed: u64,
    /// Data messages seen so far (the fault clock).
    clock: AtomicU64,
}

impl NetFaultPlan {
    /// Parses a spec string (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// A description of the first malformed token.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = NetFaultPlan::default();
        let tokens: Vec<&str> = spec
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .collect();
        // The seed participates in derived rule parameters, so settle
        // it first regardless of where it sits in the spec.
        for token in &tokens {
            if let Some(v) = token.strip_prefix("seed=") {
                plan.seed = v
                    .parse()
                    .map_err(|_| format!("bad seed in net fault spec: {token:?}"))?;
            }
        }
        for token in &tokens {
            if token.starts_with("seed=") {
                continue;
            }
            if let Some(v) = token.strip_prefix("drop@") {
                let at = v
                    .parse()
                    .map_err(|_| format!("bad message index in net fault spec: {token:?}"))?;
                plan.push(at, NetFaultKind::Drop);
            } else if let Some(v) = token.strip_prefix("truncate@") {
                let (at, bytes) = parse_param(v, token)?;
                let bytes = bytes.unwrap_or_else(|| {
                    (splitmix64(plan.seed.wrapping_add(at).wrapping_mul(3)) % 15) as usize + 1
                });
                plan.push(at, NetFaultKind::Truncate(bytes));
            } else if let Some(v) = token.strip_prefix("stall@") {
                let (at, ms) = parse_param(v, token)?;
                let ms = ms.unwrap_or_else(|| {
                    20 + (splitmix64(plan.seed.wrapping_add(at).wrapping_mul(5)) % 81) as usize
                });
                plan.push(at, NetFaultKind::Stall(Duration::from_millis(ms as u64)));
            } else if let Some(v) = token.strip_prefix("garble@") {
                let (at, bit) = parse_param(v, token)?;
                let bit = match bit {
                    Some(b) => b as u64,
                    None => splitmix64(plan.seed.wrapping_add(at).wrapping_mul(7)),
                };
                plan.push(at, NetFaultKind::Garble(bit));
            } else {
                return Err(format!("unknown net fault spec token: {token:?}"));
            }
        }
        Ok(plan)
    }

    fn push(&mut self, at: u64, kind: NetFaultKind) {
        self.rules.push(NetRule {
            at,
            kind,
            fired: AtomicBool::new(false),
        });
    }

    /// Builds a plan from the `HDVB_NET_FAULTS` environment variable;
    /// `None` when the variable is unset or empty.
    ///
    /// # Errors
    ///
    /// A description of the first malformed token.
    pub fn from_env() -> Result<Option<Arc<NetFaultPlan>>, String> {
        match std::env::var("HDVB_NET_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => Ok(Some(Arc::new(NetFaultPlan::parse(&spec)?))),
            _ => Ok(None),
        }
    }

    /// True when the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Rules in the plan.
    pub fn total(&self) -> usize {
        self.rules.len()
    }

    /// Rules that have fired so far.
    pub fn fired(&self) -> usize {
        self.rules
            .iter()
            .filter(|r| r.fired.load(Ordering::Relaxed))
            .count()
    }

    /// Rules that sever connections (drops + truncations) — each one
    /// fired is one forced disconnect.
    pub fn severing_rules(&self) -> usize {
        self.rules.iter().filter(|r| r.kind.severs()).count()
    }

    /// Data messages the clock has counted so far.
    pub fn messages_seen(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Advances the message clock for one data message and returns the
    /// fault (if any) scheduled at that index. Control messages
    /// (PING/PONG/ACK) must not be passed here — they do not advance
    /// the clock (see [`MsgType::is_control`]).
    fn on_data_message(&self) -> Option<NetFaultKind> {
        let index = self.clock.fetch_add(1, Ordering::Relaxed);
        for rule in &self.rules {
            if rule.at == index
                && rule
                    .fired
                    .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                return Some(rule.kind);
            }
        }
        None
    }
}

/// Parses `<msg>[:<param>]`.
fn parse_param(v: &str, token: &str) -> Result<(u64, Option<usize>), String> {
    match v.split_once(':') {
        Some((at, p)) => {
            let at = at
                .parse()
                .map_err(|_| format!("bad message index in net fault spec: {token:?}"))?;
            let p = p
                .parse()
                .map_err(|_| format!("bad parameter in net fault spec: {token:?}"))?;
            Ok((at, Some(p)))
        }
        None => Ok((
            v.parse()
                .map_err(|_| format!("bad message index in net fault spec: {token:?}"))?,
            None,
        )),
    }
}

/// A `TcpStream` wrapper that injects the plan's faults into outgoing
/// messages. Reads pass through untouched — faults on the opposite
/// direction are injected by wrapping the *other* side's stream.
///
/// Every writer in this crate sends exactly one encoded message per
/// `write_all` call, so the wrapper recovers message boundaries from
/// the byte stream alone: at each boundary it reads the type and length
/// out of the header it is about to forward, and it tracks partial
/// `write_all` progress so a fault decision covers the whole message
/// even when the kernel accepts it in pieces.
#[derive(Debug)]
pub struct FaultyStream {
    inner: TcpStream,
    plan: Option<Arc<NetFaultPlan>>,
    /// Bytes of the current outgoing message not yet written.
    msg_remaining: usize,
    /// Bytes of the current message already written.
    msg_written: usize,
    /// Fault governing the current message.
    pending: Option<NetFaultKind>,
    /// Set once a drop/truncate fault severed the connection; shared
    /// with clones so the reader half observes the injected death.
    dead: Arc<AtomicBool>,
}

impl FaultyStream {
    /// Wraps an existing stream. `plan: None` is a transparent
    /// passthrough.
    pub fn wrap(inner: TcpStream, plan: Option<Arc<NetFaultPlan>>) -> FaultyStream {
        FaultyStream {
            inner,
            plan,
            msg_remaining: 0,
            msg_written: 0,
            pending: None,
            dead: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Connects and wraps in one step.
    ///
    /// # Errors
    ///
    /// Any I/O error from connecting.
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        plan: Option<Arc<NetFaultPlan>>,
    ) -> std::io::Result<FaultyStream> {
        Ok(FaultyStream::wrap(TcpStream::connect(addr)?, plan))
    }

    /// Clones the wrapper around a cloned socket handle. The clone
    /// shares the plan (and its message clock) and the severed flag,
    /// but keeps its own partial-write state — reader and writer halves
    /// never interleave writes of the same message.
    ///
    /// # Errors
    ///
    /// Any I/O error from duplicating the socket handle.
    pub fn try_clone(&self) -> std::io::Result<FaultyStream> {
        Ok(FaultyStream {
            inner: self.inner.try_clone()?,
            plan: self.plan.clone(),
            msg_remaining: 0,
            msg_written: 0,
            pending: None,
            dead: Arc::clone(&self.dead),
        })
    }

    /// See [`TcpStream::set_nodelay`].
    ///
    /// # Errors
    ///
    /// Any I/O error from the socket option.
    pub fn set_nodelay(&self, v: bool) -> std::io::Result<()> {
        self.inner.set_nodelay(v)
    }

    /// See [`TcpStream::set_read_timeout`].
    ///
    /// # Errors
    ///
    /// Any I/O error from the socket option.
    pub fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_read_timeout(d)
    }

    /// See [`TcpStream::set_write_timeout`].
    ///
    /// # Errors
    ///
    /// Any I/O error from the socket option.
    pub fn set_write_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_write_timeout(d)
    }

    /// See [`TcpStream::shutdown`].
    ///
    /// # Errors
    ///
    /// Any I/O error from the shutdown.
    pub fn shutdown(&self, how: Shutdown) -> std::io::Result<()> {
        self.inner.shutdown(how)
    }

    /// See [`TcpStream::peer_addr`].
    ///
    /// # Errors
    ///
    /// Any I/O error from the socket.
    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    fn sever(&mut self) -> std::io::Error {
        self.dead.store(true, Ordering::Release);
        let _ = self.inner.shutdown(Shutdown::Both);
        self.msg_remaining = 0;
        self.pending = None;
        std::io::Error::new(ErrorKind::BrokenPipe, "injected fault: connection severed")
    }
}

impl Read for FaultyStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.inner.read(buf)
    }
}

impl Write for FaultyStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead.load(Ordering::Acquire) {
            return Err(std::io::Error::new(
                ErrorKind::BrokenPipe,
                "injected fault: connection severed",
            ));
        }
        if self.plan.is_none() {
            return self.inner.write(buf);
        }
        if self.msg_remaining == 0 {
            // At a message boundary: peek the header being forwarded.
            if buf.len() >= HEADER_LEN && buf[..2] == MAGIC {
                let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
                self.msg_remaining = HEADER_LEN + len + if len > 0 { TRAILER_LEN } else { 0 };
                self.msg_written = 0;
                let is_control = MsgType::from_u8(buf[3]).is_some_and(MsgType::is_control);
                self.pending = if is_control {
                    None
                } else {
                    self.plan.as_ref().expect("checked above").on_data_message()
                };
            } else {
                // Not one of our messages; pass through uncounted.
                return self.inner.write(buf);
            }
        }
        let result = match self.pending {
            None => self.inner.write(buf),
            Some(NetFaultKind::Drop) => return Err(self.sever()),
            Some(NetFaultKind::Stall(d)) => {
                if self.msg_written == 0 {
                    std::thread::sleep(d);
                }
                self.inner.write(buf)
            }
            Some(NetFaultKind::Truncate(k)) => {
                let allowed = k.saturating_sub(self.msg_written).min(buf.len());
                if allowed > 0 && self.inner.write_all(&buf[..allowed]).is_ok() {
                    let _ = self.inner.flush();
                }
                return Err(self.sever());
            }
            Some(NetFaultKind::Garble(bit)) => {
                let total = self.msg_remaining + self.msg_written;
                let bit = (bit % (total as u64 * 8)) as usize;
                let (byte, mask) = (bit / 8, 1u8 << (bit % 8));
                if byte >= self.msg_written && byte < self.msg_written + buf.len() {
                    let mut copy = buf.to_vec();
                    copy[byte - self.msg_written] ^= mask;
                    self.inner.write(&copy)
                } else {
                    self.inner.write(buf)
                }
            }
        };
        if let Ok(n) = result {
            self.msg_written += n;
            self.msg_remaining = self.msg_remaining.saturating_sub(n);
            if self.msg_remaining == 0 {
                self.pending = None;
            }
        }
        result
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{self, Msg, WireError};
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    fn msg_bytes(msg: &Msg, seq: u32) -> Vec<u8> {
        let mut buf = Vec::new();
        wire::encode(msg, seq, &mut buf);
        buf
    }

    fn read_all(mut s: TcpStream) -> Vec<u8> {
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        out
    }

    #[test]
    fn parse_accepts_the_grammar_and_rejects_garbage() {
        let p = NetFaultPlan::parse("drop@4, truncate@9:11, stall@2:30, garble@13:5, seed=7")
            .expect("parse");
        assert_eq!(p.total(), 4);
        assert_eq!(p.severing_rules(), 2);
        assert!(!p.is_empty());
        assert!(NetFaultPlan::parse("").expect("empty").is_empty());
        // Derived parameters come from the seed even when seed= trails.
        let a = NetFaultPlan::parse("truncate@3,seed=9").expect("a");
        let b = NetFaultPlan::parse("seed=9,truncate@3").expect("b");
        assert_eq!(a.rules[0].kind, b.rules[0].kind);
        assert!(NetFaultPlan::parse("explode@4").is_err());
        assert!(NetFaultPlan::parse("drop@x").is_err());
        assert!(NetFaultPlan::parse("stall@1:abc").is_err());
    }

    #[test]
    fn drop_severs_at_the_indexed_data_message_skipping_control() {
        let (client, server) = pair();
        let plan = Arc::new(NetFaultPlan::parse("drop@1").expect("plan"));
        let mut faulty = FaultyStream::wrap(client, Some(Arc::clone(&plan)));
        // Message 0 passes.
        faulty
            .write_all(&msg_bytes(&Msg::Flush, 0))
            .expect("msg 0 passes");
        // Control messages do not advance the clock.
        faulty
            .write_all(&msg_bytes(&Msg::Ping, 1))
            .expect("ping passes");
        faulty
            .write_all(&msg_bytes(
                &Msg::AckOut {
                    outputs_received: 3,
                },
                2,
            ))
            .expect("ack passes");
        // Message 1 is dropped and the connection severed.
        let err = faulty
            .write_all(&msg_bytes(&Msg::Close, 3))
            .expect_err("msg 1 dropped");
        assert_eq!(err.kind(), ErrorKind::BrokenPipe);
        assert!(faulty.write_all(b"anything").is_err(), "stays dead");
        assert_eq!(plan.fired(), 1);
        assert_eq!(plan.messages_seen(), 2);

        // The peer got exactly the three passed messages, then EOF.
        let got = read_all(server);
        let (m, _, used) = wire::decode(&got).expect("first");
        assert!(matches!(m, Msg::Flush));
        let (m, _, used2) = wire::decode(&got[used..]).expect("second");
        assert!(matches!(m, Msg::Ping));
        let (m, _, used3) = wire::decode(&got[used + used2..]).expect("third");
        assert!(matches!(m, Msg::AckOut { .. }));
        assert_eq!(got.len(), used + used2 + used3);
    }

    #[test]
    fn truncate_leaves_a_partial_message_then_severs() {
        let (client, server) = pair();
        let plan = Arc::new(NetFaultPlan::parse("truncate@0:10").expect("plan"));
        let mut faulty = FaultyStream::wrap(client, Some(plan));
        let full = msg_bytes(&Msg::ResumeOk { inputs_received: 5 }, 0);
        let err = faulty.write_all(&full).expect_err("truncated");
        assert_eq!(err.kind(), ErrorKind::BrokenPipe);
        let got = read_all(server);
        assert_eq!(got, full[..10]);
    }

    #[test]
    fn garble_flips_one_bit_and_the_peer_detects_it() {
        for bit in [3u64, 77, 131, 100_000_007] {
            let (client, server) = pair();
            let plan = Arc::new(NetFaultPlan::parse(&format!("garble@0:{bit}")).expect("plan"));
            let mut faulty = FaultyStream::wrap(client, Some(plan));
            let clean = msg_bytes(
                &Msg::OpenOk {
                    session_id: 77,
                    heartbeat_ms: 200,
                },
                0,
            );
            faulty.write_all(&clean).expect("garbled write succeeds");
            drop(faulty);
            let got = read_all(server);
            assert_eq!(got.len(), clean.len());
            let flipped: u32 = got
                .iter()
                .zip(&clean)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(flipped, 1, "exactly one bit differs (bit {bit})");
            match wire::decode(&got) {
                Err(
                    WireError::BadChecksum { .. }
                    | WireError::BadPayloadChecksum { .. }
                    | WireError::BadMagic(_)
                    | WireError::BadVersion(_)
                    | WireError::UnknownType(_)
                    | WireError::Oversized { .. }
                    | WireError::Truncated { .. },
                ) => {}
                other => panic!("garble at bit {bit} not detected: {other:?}"),
            }
        }
    }

    #[test]
    fn stall_delays_but_delivers_intact() {
        let (client, server) = pair();
        let plan = Arc::new(NetFaultPlan::parse("stall@0:30").expect("plan"));
        let mut faulty = FaultyStream::wrap(client, Some(plan));
        let bytes = msg_bytes(&Msg::Flush, 0);
        let t = std::time::Instant::now();
        faulty.write_all(&bytes).expect("delivered");
        assert!(t.elapsed() >= Duration::from_millis(30));
        drop(faulty);
        assert_eq!(read_all(server), bytes);
    }
}
