//! The latency-vs-load saturation sweep.
//!
//! For each point in `session_counts`, [`run_load_curve`] stands up a
//! fresh [`NetServer`] on a loopback port with SLO admission enabled
//! and drives it with real TCP clients — half live, half batch. Client
//! opens are *staggered* across the send window: an all-at-once open
//! burst would land entirely inside the admission controller's warm-up
//! grace (no latency samples yet) and nothing would ever be rejected.
//! Staggering means late openers face a rolling p99 built from the
//! early sessions' traffic, which is where the curve bends: batch OPENs
//! start bouncing off the `batch_headroom·SLO` threshold while the live
//! p99 still sits under the SLO — the ordering the overload test
//! asserts.
//!
//! Each client paces its own inputs open-loop (arrival times fixed in
//! advance, jitter from [`splitmix64`]), so a saturated server sees the
//! offered load it was promised rather than a politely backing-off one.

use crate::admission::SloPolicy;
use crate::client::{NetClient, NetError};
use crate::server::{NetConfig, NetServer, NetStats};
use crate::wire::ErrorCode;
use hdvb_core::{
    encode_sequence, splitmix64, CodecId, CodingOptions, Priority, SessionInput, SessionSpec,
};
use hdvb_frame::{BufferPool, Frame, FramePool, Resolution};
use hdvb_seq::{Sequence, SequenceId};
use hdvb_serve::{PoolsReport, ServeMode, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One latency-vs-load sweep configuration.
#[derive(Clone, Debug)]
pub struct LoadCurveSpec {
    /// Codec under test (encode/decode codec, or transcode target).
    pub codec: CodecId,
    /// Session workload direction.
    pub mode: ServeMode,
    /// The sweep axis: concurrent client sessions per cell.
    pub session_counts: Vec<u32>,
    /// Offered per-session input rate.
    pub fps: u32,
    /// Send window per cell (per-session items = `fps × duration`).
    pub duration: Duration,
    /// Frame size for the synthetic sequences.
    pub resolution: Resolution,
    /// Encoder quantiser for sessions and pre-encoded feeds.
    pub qscale: u16,
    /// B-frames between anchors.
    pub b_frames: u8,
    /// Per-session input queue capacity on the server.
    pub queue_capacity: usize,
    /// Pool worker threads (`0` = machine parallelism).
    pub threads: usize,
    /// The admission SLO every cell's server enforces.
    pub slo: SloPolicy,
    /// Per-connection token-bucket rate, inputs/second.
    pub rate_limit: Option<u32>,
    /// Arrival-jitter seed.
    pub seed: u64,
}

impl Default for LoadCurveSpec {
    fn default() -> Self {
        LoadCurveSpec {
            codec: CodecId::Mpeg2,
            mode: ServeMode::Encode,
            session_counts: vec![1, 2, 4, 8],
            fps: 30,
            duration: Duration::from_secs(2),
            resolution: Resolution::new(176, 144),
            qscale: 8,
            b_frames: 2,
            queue_capacity: 64,
            threads: 0,
            slo: SloPolicy::default(),
            rate_limit: None,
            seed: 0x48_44_56_42, // "HDVB"
        }
    }
}

/// Per-priority-class numbers for one sweep cell.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassCell {
    /// OPENs admitted.
    pub admitted: u64,
    /// OPENs rejected by admission control.
    pub rejected: u64,
    /// Inputs completed.
    pub completed: u64,
    /// Median frame latency, ns.
    pub p50_ns: u64,
    /// Tail frame latency, ns.
    pub p99_ns: u64,
}

impl ClassCell {
    /// Rejected OPENs over offered OPENs (0 when none offered).
    pub fn rejection_rate(&self) -> f64 {
        let offered = self.admitted + self.rejected;
        if offered == 0 {
            0.0
        } else {
            self.rejected as f64 / offered as f64
        }
    }
}

/// One point on the latency-vs-load curve.
#[derive(Clone, Debug)]
pub struct LoadCurveCell {
    /// Concurrent client sessions offered.
    pub sessions: u32,
    /// Aggregate offered input rate, inputs/second.
    pub offered_fps: f64,
    /// Aggregate completed-input rate over the cell wall, inputs/second.
    pub goodput_fps: f64,
    /// Cell wall time (send window + drain).
    pub wall: Duration,
    /// Mid-stream disconnects the server observed.
    pub disconnects: u64,
    /// Clients that failed for a reason other than admission rejection.
    pub client_errors: u64,
    /// Per-class numbers, indexed by [`Priority::index`].
    pub classes: [ClassCell; 2],
}

/// The whole sweep: config echo plus one [`LoadCurveCell`] per point.
#[derive(Clone, Debug)]
pub struct LoadCurveReport {
    /// Codec under test.
    pub codec: CodecId,
    /// Session workload direction.
    pub mode: ServeMode,
    /// Offered per-session input rate.
    pub fps: u32,
    /// Send window per cell.
    pub duration: Duration,
    /// Frame size.
    pub resolution: Resolution,
    /// Pool worker threads actually used.
    pub threads: usize,
    /// The admission SLO enforced.
    pub slo: SloPolicy,
    /// Arrival-jitter seed.
    pub seed: u64,
    /// The curve, in `session_counts` order.
    pub cells: Vec<LoadCurveCell>,
    /// Global pool activity over the whole sweep.
    pub pools: PoolsReport,
}

/// The input material every client replays.
enum Feed {
    Frames(Vec<Frame>),
    Packets(Vec<Vec<u8>>),
}

impl Feed {
    fn input(&self, i: u32) -> SessionInput {
        match self {
            Feed::Frames(f) => {
                let src = &f[i as usize % f.len()];
                let mut frame = FramePool::global().take(src.width(), src.height());
                frame.copy_from(src);
                SessionInput::Frame(frame)
            }
            Feed::Packets(p) => {
                let src = &p[i as usize % p.len()];
                let mut data = BufferPool::global().take(src.len());
                data.extend_from_slice(src);
                SessionInput::Packet(data)
            }
        }
    }
}

fn coding_options(spec: &LoadCurveSpec) -> CodingOptions {
    CodingOptions::default()
        .with_qscale(spec.qscale)
        .with_b_frames(spec.b_frames)
}

fn build_feed(spec: &LoadCurveSpec, items: u32) -> Result<Feed, String> {
    let seq = Sequence::new(SequenceId::ALL[0], spec.resolution);
    match spec.mode {
        ServeMode::Encode => Ok(Feed::Frames((0..items).map(|i| seq.frame(i)).collect())),
        ServeMode::Decode | ServeMode::Transcode => {
            let source = match spec.mode {
                ServeMode::Decode => spec.codec,
                _ => CodecId::Mpeg2,
            };
            let encoded = encode_sequence(source, seq, items, &coding_options(spec))
                .map_err(|e| format!("pre-encoding {source} feed: {e}"))?;
            Ok(Feed::Packets(
                encoded.packets.into_iter().map(|p| p.data).collect(),
            ))
        }
    }
}

fn session_spec(spec: &LoadCurveSpec) -> SessionSpec {
    let base = match spec.mode {
        ServeMode::Encode => SessionSpec::encode(spec.codec, spec.resolution),
        ServeMode::Decode => SessionSpec::decode(spec.codec, spec.resolution),
        ServeMode::Transcode => SessionSpec::transcode(CodecId::Mpeg2, spec.codec, spec.resolution),
    };
    base.with_qscale(spec.qscale).with_b_frames(spec.b_frames)
}

/// Alternating priority: even client slots are live, odd are batch.
fn priority_of(client: u32) -> Priority {
    if client.is_multiple_of(2) {
        Priority::Live
    } else {
        Priority::Batch
    }
}

enum ClientOutcome {
    Finished,
    Rejected,
    Failed,
}

#[allow(clippy::too_many_arguments)]
fn run_client(
    addr: std::net::SocketAddr,
    spec: &LoadCurveSpec,
    feed: &Feed,
    client: u32,
    items: u32,
    epoch: Instant,
    open_at: Duration,
) -> ClientOutcome {
    let now = epoch.elapsed();
    if open_at > now {
        std::thread::sleep(open_at - now);
    }
    let mut conn = match NetClient::connect(addr) {
        Ok(c) => c,
        Err(_) => return ClientOutcome::Failed,
    };
    match conn.open(session_spec(spec), priority_of(client)) {
        Ok(_) => {}
        Err(NetError::Remote {
            code: ErrorCode::Rejected,
            ..
        }) => return ClientOutcome::Rejected,
        Err(_) => return ClientOutcome::Failed,
    }
    let period_ns = (1_000_000_000f64 / f64::from(spec.fps.max(1))).round() as u64;
    for i in 0..items {
        let key = spec
            .seed
            .wrapping_add(u64::from(client).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(u64::from(i).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let jitter = splitmix64(key) % period_ns.max(1);
        let target = open_at + Duration::from_nanos(u64::from(i) * period_ns + jitter);
        let now = epoch.elapsed();
        if target > now {
            std::thread::sleep(target - now);
        }
        if conn.send(feed.input(i)).is_err() {
            return ClientOutcome::Failed;
        }
    }
    match conn.finish() {
        Ok(result) => {
            result.recycle();
            ClientOutcome::Finished
        }
        Err(_) => ClientOutcome::Failed,
    }
}

fn cell_from_stats(
    sessions: u32,
    offered_fps: f64,
    wall: Duration,
    client_errors: u64,
    stats: &NetStats,
) -> LoadCurveCell {
    let mut classes = [ClassCell::default(); 2];
    let mut total_completed = 0u64;
    for p in Priority::ALL {
        let i = p.index();
        classes[i] = ClassCell {
            admitted: stats.admitted[i],
            rejected: stats.rejected[i],
            completed: stats.completed[i],
            p50_ns: stats.latency[i].percentile(0.50),
            p99_ns: stats.latency[i].percentile(0.99),
        };
        total_completed += stats.completed[i];
    }
    LoadCurveCell {
        sessions,
        offered_fps,
        goodput_fps: if wall.as_secs_f64() > 0.0 {
            total_completed as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        wall,
        disconnects: stats.disconnects,
        client_errors,
        classes,
    }
}

/// Runs the sweep: one fresh loopback server and client fleet per
/// session count.
///
/// # Errors
///
/// Feed preparation or server bind failure; individual client failures
/// are counted in the cell, not fatal.
pub fn run_load_curve(spec: &LoadCurveSpec) -> Result<LoadCurveReport, String> {
    let pools_before = PoolsReport::snapshot();
    let items = ((f64::from(spec.fps) * spec.duration.as_secs_f64()).round() as u32).max(1);
    let feed = Arc::new(build_feed(spec, items.min(64))?);
    let shared_spec = Arc::new(spec.clone());

    let mut cells = Vec::with_capacity(spec.session_counts.len());
    let mut threads_used = 0usize;
    for &sessions in &spec.session_counts {
        let server = NetServer::bind(
            "127.0.0.1:0",
            NetConfig {
                server: ServerConfig {
                    threads: spec.threads,
                    queue_capacity: spec.queue_capacity,
                    ..ServerConfig::default()
                },
                slo: Some(spec.slo),
                rate_limit: spec.rate_limit,
                ..NetConfig::default()
            },
        )
        .map_err(|e| format!("binding loopback server: {e}"))?;
        threads_used = server.threads();
        let addr = server.local_addr();

        // Spread opens across the first 60% of the send window so late
        // openers are judged against real rolling-p99 evidence.
        let stagger = spec.duration.mul_f64(0.6) / sessions.max(1);
        let epoch = Instant::now();
        let mut joins = Vec::with_capacity(sessions as usize);
        for c in 0..sessions {
            let feed = Arc::clone(&feed);
            let spec = Arc::clone(&shared_spec);
            let open_at = stagger * c;
            joins.push(std::thread::spawn(move || {
                run_client(addr, &spec, &feed, c, items, epoch, open_at)
            }));
        }
        let mut client_errors = 0u64;
        for j in joins {
            match j.join() {
                Ok(ClientOutcome::Failed) | Err(_) => client_errors += 1,
                Ok(_) => {}
            }
        }
        let wall = epoch.elapsed();
        let stats = server.stats();
        server.shutdown();
        cells.push(cell_from_stats(
            sessions,
            f64::from(sessions) * f64::from(spec.fps),
            wall,
            client_errors,
            &stats,
        ));
    }

    Ok(LoadCurveReport {
        codec: spec.codec,
        mode: spec.mode,
        fps: spec.fps,
        duration: spec.duration,
        resolution: spec.resolution,
        threads: threads_used,
        slo: spec.slo,
        seed: spec.seed,
        cells,
        pools: PoolsReport::snapshot().delta_since(&pools_before),
    })
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Renders the sweep as a markdown saturation table.
pub fn loadcurve_markdown(report: &LoadCurveReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# hdvb loadcurve — {} {} @{}fps/session, {}x{}, SLO p99 {:.0}ms (batch headroom {:.0}%), {} threads\n\n",
        report.codec,
        report.mode.name(),
        report.fps,
        report.resolution.width(),
        report.resolution.height(),
        report.slo.p99.as_secs_f64() * 1e3,
        report.slo.batch_headroom * 100.0,
        report.threads,
    ));
    out.push_str(
        "| sessions | offered fps | goodput fps | live adm/rej | batch adm/rej | live p50 ms | live p99 ms | batch p99 ms | batch rej% | disconnects |\n",
    );
    out.push_str(
        "|---------:|------------:|------------:|-------------:|--------------:|------------:|------------:|-------------:|-----------:|------------:|\n",
    );
    for c in &report.cells {
        let live = &c.classes[Priority::Live.index()];
        let batch = &c.classes[Priority::Batch.index()];
        out.push_str(&format!(
            "| {} | {:.0} | {:.1} | {}/{} | {}/{} | {:.2} | {:.2} | {:.2} | {:.1} | {} |\n",
            c.sessions,
            c.offered_fps,
            c.goodput_fps,
            live.admitted,
            live.rejected,
            batch.admitted,
            batch.rejected,
            ms(live.p50_ns),
            ms(live.p99_ns),
            ms(batch.p99_ns),
            batch.rejection_rate() * 100.0,
            c.disconnects,
        ));
    }
    out
}

fn json_class(c: &ClassCell) -> String {
    format!(
        "{{\"admitted\":{},\"rejected\":{},\"completed\":{},\"p50_ns\":{},\"p99_ns\":{},\"rejection_rate\":{:.6}}}",
        c.admitted, c.rejected, c.completed, c.p50_ns, c.p99_ns, c.rejection_rate(),
    )
}

fn json_cell(c: &LoadCurveCell) -> String {
    format!(
        "{{\"sessions\":{},\"offered_fps\":{:.3},\"goodput_fps\":{:.3},\"wall_ms\":{:.3},\"disconnects\":{},\"client_errors\":{},\"live\":{},\"batch\":{}}}",
        c.sessions,
        c.offered_fps,
        c.goodput_fps,
        c.wall.as_secs_f64() * 1e3,
        c.disconnects,
        c.client_errors,
        json_class(&c.classes[Priority::Live.index()]),
        json_class(&c.classes[Priority::Batch.index()]),
    )
}

/// Renders the sweep as the `hdvb-loadcurve/v1` JSON document.
pub fn loadcurve_json(report: &LoadCurveReport) -> String {
    let cells: Vec<String> = report.cells.iter().map(json_cell).collect();
    format!(
        "{{\"schema\":\"hdvb-loadcurve/v1\",\"codec\":\"{}\",\"mode\":\"{}\",\"fps\":{},\"duration_ms\":{:.0},\"width\":{},\"height\":{},\"threads\":{},\"slo_p99_ms\":{:.3},\"slo_min_samples\":{},\"slo_batch_headroom\":{:.3},\"seed\":{},\"pools\":{},\"cells\":[{}]}}\n",
        report.codec,
        report.mode.name(),
        report.fps,
        report.duration.as_secs_f64() * 1e3,
        report.resolution.width(),
        report.resolution.height(),
        report.threads,
        report.slo.p99.as_secs_f64() * 1e3,
        report.slo.min_samples,
        report.slo.batch_headroom,
        report.seed,
        hdvb_serve::json_pools(&report.pools),
        cells.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LoadCurveReport {
        LoadCurveReport {
            codec: CodecId::Mpeg2,
            mode: ServeMode::Encode,
            fps: 30,
            duration: Duration::from_secs(1),
            resolution: Resolution::new(176, 144),
            threads: 4,
            slo: SloPolicy::default(),
            seed: 7,
            cells: vec![LoadCurveCell {
                sessions: 4,
                offered_fps: 120.0,
                goodput_fps: 110.5,
                wall: Duration::from_millis(1500),
                disconnects: 0,
                client_errors: 0,
                classes: [
                    ClassCell {
                        admitted: 2,
                        rejected: 0,
                        completed: 60,
                        p50_ns: 4_000_000,
                        p99_ns: 9_000_000,
                    },
                    ClassCell {
                        admitted: 1,
                        rejected: 1,
                        completed: 30,
                        p50_ns: 5_000_000,
                        p99_ns: 12_000_000,
                    },
                ],
            }],
            pools: PoolsReport::default(),
        }
    }

    #[test]
    fn json_has_schema_and_both_classes() {
        let j = loadcurve_json(&sample());
        assert!(j.contains("\"schema\":\"hdvb-loadcurve/v1\""));
        assert!(j.contains("\"live\":{\"admitted\":2"));
        assert!(j.contains("\"batch\":{\"admitted\":1,\"rejected\":1"));
        assert!(j.contains("\"rejection_rate\":0.5"));
        assert!(j.contains("\"pools\":"));
    }

    #[test]
    fn markdown_has_one_row_per_cell() {
        let md = loadcurve_markdown(&sample());
        assert!(md.contains("| sessions |"));
        assert!(md.contains("| 4 | 120 | 110.5 | 2/0 | 1/1 |"));
    }

    #[test]
    fn rejection_rate_handles_empty_class() {
        assert_eq!(ClassCell::default().rejection_rate(), 0.0);
    }
}
