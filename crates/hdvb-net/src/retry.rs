//! Auto-reconnecting client with bit-identical session resume.
//!
//! [`RetryClient`] is the recovery half of the resilience layer: it
//! opens its session with the resume flag, keeps a bounded replay
//! buffer of encoded inputs (trimmed by the server's cumulative
//! ACK_IN), heartbeats the server so silent death is detected within
//! two heartbeat intervals, and — on any connection failure — redials
//! with capped exponential backoff plus seeded jitter, then issues
//! `RESUME(session_id, outputs_received)`. The server replays exactly
//! the outputs the client never saw and the client re-sends exactly
//! the inputs the server never consumed, so the collected output of a
//! run that survived N disconnects is byte-identical to an
//! uninterrupted run.
//!
//! Faults are injected on the client side by handing the same
//! [`NetFaultPlan`] to every dial: the plan's message clock continues
//! across reconnects, so a seeded campaign is one deterministic
//! schedule regardless of how the connection lifetimes fall.

use crate::client::{ClientResult, NetError};
use crate::faults::{FaultyStream, NetFaultPlan};
use crate::reader::{MsgReader, ReadEvent};
use crate::wire::{self, DoneStats, ErrorCode, Msg};
use hdvb_core::splitmix64;
use hdvb_core::{Packet, Priority, SessionInput, SessionSpec};
use hdvb_frame::{BufferPool, Frame};
use hdvb_trace::LatencyHistogram;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the client acknowledges received outputs, bounding the
/// server's journal backlog.
const ACK_OUT_EVERY: u64 = 8;

/// Reconnect budget and backoff shape.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total reconnect attempts a session may spend before giving up.
    pub max_reconnects: u32,
    /// First backoff; doubles per consecutive failure within an outage.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the jitter draw (splitmix64), so a chaos campaign's
    /// timing is reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_reconnects: 16,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(2),
            seed: 0x9e37_79b9,
        }
    }
}

impl RetryPolicy {
    /// Backoff for the `attempt`-th consecutive failure of one outage:
    /// `min(cap, base·2^attempt)`, jittered into `[50%, 100%]`.
    fn backoff(&self, attempt: u32, draw: u64) -> Duration {
        let capped = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
            .min(self.max_backoff);
        let ns = capped.as_nanos().min(u128::from(u64::MAX)) as u64;
        if ns == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(ns / 2 + draw % (ns / 2 + 1))
    }
}

/// What recovery cost over the life of one session.
#[derive(Clone, Debug, Default)]
pub struct RetryStats {
    /// Successful reconnect+resume handshakes.
    pub reconnects: u64,
    /// Dial attempts, including failed ones.
    pub attempts: u64,
    /// Input messages re-sent after resumes.
    pub replayed_inputs: u64,
    /// Time from last known-good traffic to declaring the connection
    /// dead, per outage.
    pub detect: LatencyHistogram,
    /// Time from declaring the connection dead to a completed resume
    /// handshake, per outage.
    pub recover: LatencyHistogram,
}

/// State the reader thread shares with the caller.
struct Inbox {
    packets: Vec<Packet>,
    frames: Vec<Frame>,
    outputs_received: u64,
    inputs_acked: u64,
    done: Option<DoneStats>,
    /// Current connection failed; recoverable.
    dead: bool,
    /// Unrecoverable server error.
    fatal: Option<NetError>,
    /// Last successful traffic in either direction.
    last_ok: Instant,
}

struct Shared {
    inbox: Mutex<Inbox>,
    cv: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Inbox> {
        self.inbox.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// One live connection's moving parts.
struct Link {
    write: Arc<Mutex<FaultyStream>>,
    stop: Arc<AtomicBool>,
    reader: JoinHandle<()>,
    keepalive: Option<JoinHandle<()>>,
}

/// An auto-reconnecting session client. Mirrors
/// [`NetClient`](crate::NetClient)'s `open`/`send`/`finish` shape but
/// survives connection loss transparently.
pub struct RetryClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    plan: Option<Arc<NetFaultPlan>>,
    shared: Arc<Shared>,
    link: Option<Link>,
    session_id: u32,
    heartbeat: Duration,
    /// Encoded, unacked input messages; front is input `replay_base`.
    replay: VecDeque<Vec<u8>>,
    replay_base: u64,
    inputs_sent: u64,
    flush_sent: bool,
    reconnects_used: u32,
    stats: RetryStats,
    rng: u64,
}

fn is_fatal(e: &NetError) -> bool {
    matches!(
        e,
        NetError::Remote {
            code: ErrorCode::Rejected
                | ErrorCode::RateLimited
                | ErrorCode::BadRequest
                | ErrorCode::Codec
                | ErrorCode::NoSession,
            ..
        }
    )
}

fn fatal_code(code: ErrorCode) -> bool {
    matches!(
        code,
        ErrorCode::Rejected
            | ErrorCode::RateLimited
            | ErrorCode::BadRequest
            | ErrorCode::Codec
            | ErrorCode::NoSession
    )
}

/// Reads one message with an overall deadline, using the stream's short
/// read timeout as the polling quantum (handshakes only — the streaming
/// phase runs through the reader thread).
fn read_deadline(
    reader: &mut MsgReader<FaultyStream>,
    deadline: Duration,
) -> Result<Msg, NetError> {
    let start = Instant::now();
    loop {
        match reader.poll() {
            ReadEvent::Msg(msg, _) => return Ok(msg),
            ReadEvent::Idle => {
                if start.elapsed() >= deadline {
                    return Err(NetError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "handshake deadline",
                    )));
                }
            }
            ReadEvent::Gone => {
                return Err(NetError::Io(std::io::Error::from(
                    std::io::ErrorKind::UnexpectedEof,
                )))
            }
            ReadEvent::Malformed(e) => return Err(NetError::Wire(e)),
        }
    }
}

fn write_msg(stream: &mut FaultyStream, msg: &Msg, seq: u32) -> Result<(), NetError> {
    let mut buf = Vec::new();
    wire::encode(msg, seq, &mut buf);
    stream.write_all(&buf)?;
    Ok(())
}

impl RetryClient {
    /// Resolves `addr` and prepares a client; nothing is dialled until
    /// [`open`](Self::open). Fault injection comes from
    /// `HDVB_NET_FAULTS` if set.
    ///
    /// # Errors
    ///
    /// Address resolution failure or a malformed fault plan.
    pub fn new<A: ToSocketAddrs>(addr: A, policy: RetryPolicy) -> Result<RetryClient, NetError> {
        let plan = NetFaultPlan::from_env().map_err(NetError::Protocol)?;
        Self::with_faults(addr, policy, plan)
    }

    /// Like [`new`](Self::new) with an explicit fault plan (chaos
    /// campaigns hand the same plan to every trial).
    ///
    /// # Errors
    ///
    /// Address resolution failure.
    pub fn with_faults<A: ToSocketAddrs>(
        addr: A,
        policy: RetryPolicy,
        plan: Option<Arc<NetFaultPlan>>,
    ) -> Result<RetryClient, NetError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| NetError::Protocol("address resolved to nothing".into()))?;
        let rng = splitmix64(policy.seed ^ 0xc2b2_ae3d_27d4_eb4f);
        Ok(RetryClient {
            addr,
            policy,
            plan,
            shared: Arc::new(Shared {
                inbox: Mutex::new(Inbox {
                    packets: Vec::new(),
                    frames: Vec::new(),
                    outputs_received: 0,
                    inputs_acked: 0,
                    done: None,
                    dead: false,
                    fatal: None,
                    last_ok: Instant::now(),
                }),
                cv: Condvar::new(),
            }),
            link: None,
            session_id: 0,
            heartbeat: Duration::ZERO,
            replay: VecDeque::new(),
            replay_base: 0,
            inputs_sent: 0,
            flush_sent: false,
            reconnects_used: 0,
            stats: RetryStats::default(),
            rng,
        })
    }

    /// Recovery accounting so far.
    pub fn stats(&self) -> &RetryStats {
        &self.stats
    }

    fn draw(&mut self) -> u64 {
        self.rng = splitmix64(self.rng);
        self.rng
    }

    /// Dials, opens a resumable session, and starts the reader and
    /// keepalive threads. Retries transient failures within the
    /// reconnect budget.
    ///
    /// # Errors
    ///
    /// A fatal server response (rejection, codec failure) or an
    /// exhausted retry budget.
    pub fn open(&mut self, spec: SessionSpec, priority: Priority) -> Result<u32, NetError> {
        let mut attempt = 0u32;
        loop {
            match self.try_open(spec, priority) {
                Ok(id) => return Ok(id),
                Err(e) if is_fatal(&e) => return Err(e),
                Err(e) => {
                    if self.reconnects_used >= self.policy.max_reconnects {
                        return Err(e);
                    }
                    self.reconnects_used += 1;
                    let draw = self.draw();
                    let wait = self.policy.backoff(attempt, draw);
                    attempt += 1;
                    std::thread::sleep(wait);
                }
            }
        }
    }

    fn try_open(&mut self, spec: SessionSpec, priority: Priority) -> Result<u32, NetError> {
        self.stats.attempts += 1;
        let (mut stream, mut reader) = self.dial()?;
        write_msg(
            &mut stream,
            &Msg::Open {
                spec,
                priority,
                resume: true,
            },
            1,
        )?;
        match read_deadline(&mut reader, Duration::from_secs(5))? {
            Msg::OpenOk {
                session_id,
                heartbeat_ms,
            } => {
                self.session_id = session_id;
                self.heartbeat = Duration::from_millis(u64::from(heartbeat_ms));
                self.install_link(stream, reader);
                Ok(session_id)
            }
            Msg::Error { code, detail } => Err(NetError::Remote { code, detail }),
            other => Err(NetError::Protocol(format!(
                "expected OPEN_OK, got {:?}",
                other.msg_type()
            ))),
        }
    }

    /// Connects (through the fault plan) and completes HELLO↔HELLO.
    fn dial(&mut self) -> Result<(FaultyStream, MsgReader<FaultyStream>), NetError> {
        let mut stream = FaultyStream::connect(self.addr, self.plan.clone())?;
        let _ = stream.set_nodelay(true);
        let quantum = if self.heartbeat.is_zero() {
            Duration::from_millis(25)
        } else {
            (self.heartbeat / 4).clamp(Duration::from_millis(5), Duration::from_millis(250))
        };
        let _ = stream.set_read_timeout(Some(quantum));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
        let mut reader = MsgReader::new(stream.try_clone()?);
        write_msg(&mut stream, &Msg::Hello { server: false }, 0)?;
        match read_deadline(&mut reader, Duration::from_secs(5))? {
            Msg::Hello { server: true } => Ok((stream, reader)),
            Msg::Error { code, detail } => Err(NetError::Remote { code, detail }),
            other => Err(NetError::Protocol(format!(
                "expected server HELLO, got {:?}",
                other.msg_type()
            ))),
        }
    }

    fn install_link(&mut self, stream: FaultyStream, reader: MsgReader<FaultyStream>) {
        let write = Arc::new(Mutex::new(stream));
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::clone(&self.shared);
        let r_write = Arc::clone(&write);
        let r_stop = Arc::clone(&stop);
        let heartbeat = self.heartbeat;
        let reader_handle =
            std::thread::spawn(move || reader_loop(reader, &shared, &r_write, &r_stop, heartbeat));
        let keepalive = (!heartbeat.is_zero()).then(|| {
            let k_write = Arc::clone(&write);
            let k_stop = Arc::clone(&stop);
            std::thread::spawn(move || keepalive_loop(&k_write, &k_stop, heartbeat))
        });
        self.shared.lock().last_ok = Instant::now();
        self.link = Some(Link {
            write,
            stop,
            reader: reader_handle,
            keepalive,
        });
    }

    fn teardown_link(&mut self) {
        if let Some(link) = self.link.take() {
            link.stop.store(true, Ordering::Release);
            {
                let g = link.write.lock().unwrap_or_else(|e| e.into_inner());
                let _ = g.shutdown(Shutdown::Both);
            }
            let _ = link.reader.join();
            if let Some(k) = link.keepalive {
                let _ = k.join();
            }
        }
    }

    /// Drops replay entries the server has consumed.
    fn trim_replay(&mut self, below: u64) {
        while self.replay_base < below {
            if let Some(buf) = self.replay.pop_front() {
                BufferPool::global().put(buf);
            }
            self.replay_base += 1;
        }
    }

    /// Sends one input (a frame for encode/transcode, a packet for
    /// decode), transparently recovering the connection if it fails.
    ///
    /// # Errors
    ///
    /// Exhausted retry budget or a fatal server error.
    pub fn send(&mut self, input: SessionInput) -> Result<(), NetError> {
        let msg = match input {
            SessionInput::Frame(f) => Msg::Frame(f),
            SessionInput::Packet(data) => Msg::Packet(Packet {
                data,
                kind: hdvb_core::PacketKind::I,
                display_index: 0,
            }),
        };
        self.send_data(msg)
    }

    /// Sends a raw coding-order packet, preserving kind and display
    /// index.
    ///
    /// # Errors
    ///
    /// Exhausted retry budget or a fatal server error.
    pub fn send_packet(&mut self, packet: Packet) -> Result<(), NetError> {
        self.send_data(Msg::Packet(packet))
    }

    fn send_data(&mut self, msg: Msg) -> Result<(), NetError> {
        let estimate = wire::HEADER_LEN
            + wire::TRAILER_LEN
            + match &msg {
                Msg::Frame(f) => 8 + f.width() * f.height() * 3 / 2,
                Msg::Packet(p) => 5 + p.data.len(),
                _ => 64,
            };
        let mut buf = BufferPool::global().take(estimate);
        wire::encode(&msg, self.inputs_sent as u32, &mut buf);
        wire::recycle_msg(msg);
        let acked = self.shared.lock().inputs_acked;
        self.trim_replay(acked);
        self.replay.push_back(buf);
        self.inputs_sent += 1;

        if self.shared.lock().dead {
            // The reader noticed the connection died; recovery replays
            // the tail, which now includes this message.
            return self.recover();
        }
        let ok = match &self.link {
            Some(link) => {
                let mut g = link.write.lock().unwrap_or_else(|e| e.into_inner());
                let ok = g
                    .write_all(self.replay.back().expect("just pushed"))
                    .is_ok();
                drop(g);
                ok
            }
            None => false,
        };
        if ok {
            self.shared.lock().last_ok = Instant::now();
            Ok(())
        } else {
            self.recover()
        }
    }

    /// Reconnects and resumes after a connection failure. On return the
    /// unacked input tail (and FLUSH, if already sent) has been
    /// re-delivered.
    fn recover(&mut self) -> Result<(), NetError> {
        let detected = Instant::now();
        {
            let mut inbox = self.shared.lock();
            if let Some(fatal) = inbox.fatal.take() {
                return Err(fatal);
            }
            let gap = detected.duration_since(inbox.last_ok);
            self.stats
                .detect
                .record(gap.as_nanos().min(u128::from(u64::MAX)) as u64);
            inbox.dead = false;
        }
        self.teardown_link();
        let mut attempt = 0u32;
        loop {
            if self.reconnects_used >= self.policy.max_reconnects {
                return Err(NetError::Protocol(format!(
                    "retry budget exhausted after {} reconnect attempts",
                    self.reconnects_used
                )));
            }
            self.reconnects_used += 1;
            let draw = self.draw();
            let wait = self.policy.backoff(attempt, draw);
            attempt += 1;
            std::thread::sleep(wait);
            match self.try_resume() {
                Ok(()) => {
                    self.stats.reconnects += 1;
                    self.stats
                        .recover
                        .record(detected.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                    return Ok(());
                }
                Err(e) if is_fatal(&e) => return Err(e),
                Err(_) => {
                    // Transient — clear any dead flag a short-lived
                    // link may have raised and try again.
                    self.teardown_link();
                    self.shared.lock().dead = false;
                }
            }
        }
    }

    fn try_resume(&mut self) -> Result<(), NetError> {
        self.stats.attempts += 1;
        let (mut stream, mut reader) = self.dial()?;
        let outputs_received = self.shared.lock().outputs_received;
        write_msg(
            &mut stream,
            &Msg::Resume {
                session_id: self.session_id,
                outputs_received,
            },
            1,
        )?;
        let inputs_received = match read_deadline(&mut reader, Duration::from_secs(5))? {
            Msg::ResumeOk { inputs_received } => inputs_received,
            Msg::Error { code, detail } => return Err(NetError::Remote { code, detail }),
            other => {
                return Err(NetError::Protocol(format!(
                    "expected RESUME_OK, got {:?}",
                    other.msg_type()
                )))
            }
        };
        self.trim_replay(inputs_received);
        self.shared.lock().inputs_acked = inputs_received;
        for buf in &self.replay {
            stream.write_all(buf)?;
            self.stats.replayed_inputs += 1;
        }
        if self.flush_sent {
            write_msg(&mut stream, &Msg::Flush, 2)?;
        }
        self.install_link(stream, reader);
        Ok(())
    }

    /// Flushes the session, rides out any remaining failures, and
    /// returns everything it produced plus the recovery accounting.
    ///
    /// # Errors
    ///
    /// Exhausted retry budget or a fatal server error.
    pub fn finish(mut self) -> Result<(ClientResult, RetryStats), NetError> {
        self.flush_sent = true;
        if self.shared.lock().dead {
            self.recover()?;
        } else {
            let ok = match &self.link {
                Some(link) => {
                    let mut g = link.write.lock().unwrap_or_else(|e| e.into_inner());
                    let mut buf = Vec::new();
                    wire::encode(&Msg::Flush, self.inputs_sent as u32, &mut buf);
                    g.write_all(&buf).is_ok()
                }
                None => false,
            };
            if !ok {
                self.recover()?;
            }
        }
        loop {
            enum Wake {
                Done(Vec<Packet>, Vec<Frame>, DoneStats),
                Dead,
                Fatal(NetError),
            }
            let wake = {
                let mut inbox = self.shared.lock();
                loop {
                    if let Some(e) = inbox.fatal.take() {
                        break Wake::Fatal(e);
                    }
                    if let Some(stats) = inbox.done.take() {
                        break Wake::Done(
                            std::mem::take(&mut inbox.packets),
                            std::mem::take(&mut inbox.frames),
                            stats,
                        );
                    }
                    if inbox.dead {
                        break Wake::Dead;
                    }
                    inbox = self
                        .shared
                        .cv
                        .wait(inbox)
                        .unwrap_or_else(|e| e.into_inner());
                }
            };
            match wake {
                Wake::Done(packets, frames, stats) => {
                    return Ok((
                        ClientResult {
                            packets,
                            frames,
                            stats,
                        },
                        self.stats.clone(),
                    ));
                }
                Wake::Dead => self.recover()?,
                Wake::Fatal(e) => return Err(e),
            }
        }
    }
}

impl Drop for RetryClient {
    fn drop(&mut self) {
        self.teardown_link();
        for buf in self.replay.drain(..) {
            BufferPool::global().put(buf);
        }
    }
}

/// Collects outputs, acknowledges them, applies input acks, and raises
/// the dead/fatal flags. Exits on DONE, ERROR, connection loss, or a
/// liveness expiry (no traffic — not even a PONG — for 2× heartbeat).
fn reader_loop(
    mut reader: MsgReader<FaultyStream>,
    shared: &Shared,
    write: &Mutex<FaultyStream>,
    stop: &AtomicBool,
    heartbeat: Duration,
) {
    let liveness = (!heartbeat.is_zero()).then(|| heartbeat * 2);
    let mut last_traffic = Instant::now();
    let send_ctl = |msg: &Msg| {
        let mut buf = Vec::new();
        wire::encode(msg, 0, &mut buf);
        let mut g = write.lock().unwrap_or_else(|e| e.into_inner());
        let _ = g.write_all(&buf);
    };
    let die = |fatal: Option<NetError>| {
        let mut inbox = shared.inbox.lock().unwrap_or_else(|e| e.into_inner());
        match fatal {
            Some(e) => inbox.fatal = Some(e),
            None => inbox.dead = true,
        }
        drop(inbox);
        shared.cv.notify_all();
        let g = write.lock().unwrap_or_else(|e| e.into_inner());
        let _ = g.shutdown(Shutdown::Both);
    };
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match reader.poll() {
            ReadEvent::Msg(msg, _) => {
                last_traffic = Instant::now();
                match msg {
                    Msg::Packet(p) => {
                        let total = {
                            let mut inbox = shared.inbox.lock().unwrap_or_else(|e| e.into_inner());
                            inbox.packets.push(p);
                            inbox.outputs_received += 1;
                            inbox.last_ok = last_traffic;
                            inbox.outputs_received
                        };
                        if total % ACK_OUT_EVERY == 0 {
                            send_ctl(&Msg::AckOut {
                                outputs_received: total,
                            });
                        }
                    }
                    Msg::Frame(f) => {
                        let total = {
                            let mut inbox = shared.inbox.lock().unwrap_or_else(|e| e.into_inner());
                            inbox.frames.push(f);
                            inbox.outputs_received += 1;
                            inbox.last_ok = last_traffic;
                            inbox.outputs_received
                        };
                        if total % ACK_OUT_EVERY == 0 {
                            send_ctl(&Msg::AckOut {
                                outputs_received: total,
                            });
                        }
                    }
                    Msg::AckIn { inputs_received } => {
                        let mut inbox = shared.inbox.lock().unwrap_or_else(|e| e.into_inner());
                        inbox.inputs_acked = inbox.inputs_acked.max(inputs_received);
                        inbox.last_ok = last_traffic;
                    }
                    Msg::Done(stats) => {
                        // Final cumulative ack lets the server retire
                        // the journal immediately.
                        let total = {
                            let mut inbox = shared.inbox.lock().unwrap_or_else(|e| e.into_inner());
                            inbox.outputs_received += 1;
                            inbox.done = Some(stats);
                            inbox.outputs_received
                        };
                        send_ctl(&Msg::AckOut {
                            outputs_received: total,
                        });
                        shared.cv.notify_all();
                        return;
                    }
                    Msg::Error { code, detail } => {
                        let fatal = fatal_code(code).then_some(NetError::Remote { code, detail });
                        die(fatal);
                        return;
                    }
                    Msg::Ping => send_ctl(&Msg::Pong),
                    // PONG refreshes `last_traffic`; anything else late
                    // or duplicated is ignored.
                    _ => {}
                }
            }
            ReadEvent::Idle => {
                if let Some(limit) = liveness {
                    if last_traffic.elapsed() >= limit {
                        die(None);
                        return;
                    }
                }
            }
            ReadEvent::Gone => {
                die(None);
                return;
            }
            ReadEvent::Malformed(_) => {
                // Corrupted server output: framing is untrustworthy.
                // Reconnect; the resume replays everything not counted
                // in `outputs_received`, so nothing is lost.
                die(None);
                return;
            }
        }
    }
}

/// Pings the server every half heartbeat so both sides see traffic
/// well inside the liveness window.
fn keepalive_loop(write: &Mutex<FaultyStream>, stop: &AtomicBool, heartbeat: Duration) {
    let interval = (heartbeat / 2).max(Duration::from_millis(1));
    let step = interval.min(Duration::from_millis(25));
    loop {
        let mut slept = Duration::ZERO;
        while slept < interval {
            if stop.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(step);
            slept += step;
        }
        let mut buf = Vec::new();
        wire::encode(&Msg::Ping, 0, &mut buf);
        let mut g = write.lock().unwrap_or_else(|e| e.into_inner());
        if g.write_all(&buf).is_err() {
            return;
        }
    }
}
