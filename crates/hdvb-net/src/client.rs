//! The blocking TCP client.
//!
//! Outputs stream back while inputs are still being sent, so the
//! client spawns a reader thread at [`NetClient::open`] — without it a
//! server blocked writing outputs into a full TCP buffer would
//! deadlock against a client blocked writing inputs into its own.
//! [`NetClient::finish`] sends FLUSH and joins the reader, which runs
//! until DONE or ERROR.

use crate::wire::{self, DoneStats, ErrorCode, Msg, WireError, HEADER_LEN};
use hdvb_core::{Packet, Priority, SessionInput, SessionSpec};
use hdvb_frame::Frame;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::thread::JoinHandle;

/// Anything that can go wrong on the client side.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer sent bytes that don't decode.
    Wire(WireError),
    /// The server sent an ERROR message (rejection, codec failure, …).
    Remote {
        /// The wire error code.
        code: ErrorCode,
        /// Human-readable detail from the server.
        detail: String,
    },
    /// The peer sent a well-formed message we didn't expect here.
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o: {e}"),
            NetError::Wire(e) => write!(f, "wire: {e}"),
            NetError::Remote { code, detail } => {
                write!(f, "server error ({}): {detail}", code.name())
            }
            NetError::Protocol(d) => write!(f, "protocol: {d}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// What a finished session produced.
#[derive(Debug, Default)]
pub struct ClientResult {
    /// Streamed coded packets, in arrival order.
    pub packets: Vec<Packet>,
    /// Streamed decoded frames, in arrival order.
    pub frames: Vec<Frame>,
    /// The server's end-of-session accounting.
    pub stats: DoneStats,
}

impl ClientResult {
    /// Returns every received frame and packet buffer to the global
    /// pools. Call this when the outputs have been consumed (or were
    /// only wanted for their stats) so a long-lived client recirculates
    /// its receive buffers instead of growing the heap.
    pub fn recycle(mut self) {
        for p in self.packets.drain(..) {
            hdvb_frame::BufferPool::global().put(p.data);
        }
        for f in self.frames.drain(..) {
            hdvb_frame::FramePool::global().put(f);
        }
    }
}

struct Reader {
    handle: JoinHandle<Result<ClientResult, NetError>>,
}

/// One connection = one session against a [`NetServer`](crate::NetServer).
pub struct NetClient {
    stream: TcpStream,
    seq: u32,
    reader: Option<Reader>,
    buf: Vec<u8>,
}

fn read_one(stream: &mut TcpStream) -> Result<Msg, NetError> {
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header)?;
    let parsed = wire::parse_header(&header)?;
    let mut rest = vec![0u8; wire::frame_len(&parsed) - HEADER_LEN];
    stream.read_exact(&mut rest)?;
    let payload_len = parsed.len as usize;
    wire::check_trailer(&rest[..payload_len], &rest[payload_len..])?;
    Ok(wire::decode_payload(parsed.msg_type, &rest[..payload_len])?)
}

impl NetClient {
    /// Connects and completes the HELLO exchange.
    ///
    /// # Errors
    ///
    /// I/O failure, or a malformed/unexpected greeting.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<NetClient, NetError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = NetClient {
            stream: stream.try_clone()?,
            seq: 0,
            reader: None,
            buf: Vec::new(),
        };
        client.send_msg(&Msg::Hello { server: false })?;
        match read_one(&mut stream)? {
            Msg::Hello { server: true } => Ok(client),
            Msg::Error { code, detail } => Err(NetError::Remote { code, detail }),
            other => Err(NetError::Protocol(format!(
                "expected server HELLO, got {:?}",
                other.msg_type()
            ))),
        }
    }

    fn send_msg(&mut self, msg: &Msg) -> Result<(), NetError> {
        self.buf.clear();
        wire::encode(msg, self.seq, &mut self.buf);
        self.seq = self.seq.wrapping_add(1);
        self.stream.write_all(&self.buf)?;
        Ok(())
    }

    /// Opens a session: sends OPEN, waits for OPEN_OK (or the server's
    /// rejection), then starts the output reader thread.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] with [`ErrorCode::Rejected`] when admission
    /// control refuses the class; any I/O or protocol failure.
    pub fn open(&mut self, spec: SessionSpec, priority: Priority) -> Result<u32, NetError> {
        self.send_msg(&Msg::Open {
            spec,
            priority,
            resume: false,
        })?;
        let mut read_half = self.stream.try_clone()?;
        let session_id = match read_one(&mut read_half)? {
            Msg::OpenOk { session_id, .. } => session_id,
            Msg::Error { code, detail } => return Err(NetError::Remote { code, detail }),
            other => {
                return Err(NetError::Protocol(format!(
                    "expected OPEN_OK, got {:?}",
                    other.msg_type()
                )))
            }
        };
        let handle = std::thread::spawn(move || collect_outputs(&mut read_half));
        self.reader = Some(Reader { handle });
        Ok(session_id)
    }

    /// Sends one input (a frame for encode/transcode, a packet for
    /// decode).
    ///
    /// # Errors
    ///
    /// I/O failure — including the server closing the connection after
    /// an ERROR; call [`finish`](Self::finish) to learn which.
    pub fn send(&mut self, input: SessionInput) -> Result<(), NetError> {
        let msg = match input {
            SessionInput::Frame(f) => Msg::Frame(f),
            SessionInput::Packet(data) => Msg::Packet(Packet {
                data,
                kind: hdvb_core::PacketKind::I,
                display_index: 0,
            }),
        };
        self.send_msg(&msg)?;
        wire::recycle_msg(msg);
        Ok(())
    }

    /// Sends a raw coding-order packet for a decode session, preserving
    /// its kind and display index on the wire.
    ///
    /// # Errors
    ///
    /// I/O failure.
    pub fn send_packet(&mut self, packet: Packet) -> Result<(), NetError> {
        let msg = Msg::Packet(packet);
        self.send_msg(&msg)?;
        wire::recycle_msg(msg);
        Ok(())
    }

    /// Flushes the session and collects everything it produced.
    ///
    /// # Errors
    ///
    /// Whatever the reader thread hit: a server ERROR, an early
    /// disconnect, or malformed bytes.
    pub fn finish(mut self) -> Result<ClientResult, NetError> {
        self.send_msg(&Msg::Flush)?;
        let reader = self
            .reader
            .take()
            .ok_or_else(|| NetError::Protocol("finish before open".into()))?;
        let result = reader
            .handle
            .join()
            .map_err(|_| NetError::Protocol("reader thread panicked".into()))?;
        let _ = self.stream.shutdown(Shutdown::Both);
        result
    }

    /// Drops the connection on the floor — no FLUSH, no CLOSE — to
    /// simulate a client crash. The server must tear down only this
    /// session.
    pub fn abort(mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.handle.join();
        }
    }
}

fn collect_outputs(stream: &mut TcpStream) -> Result<ClientResult, NetError> {
    let mut result = ClientResult::default();
    loop {
        match read_one(stream)? {
            Msg::Packet(p) => result.packets.push(p),
            Msg::Frame(f) => result.frames.push(f),
            Msg::Done(stats) => {
                result.stats = stats;
                return Ok(result);
            }
            Msg::Error { code, detail } => return Err(NetError::Remote { code, detail }),
            // Control traffic from a resilience-aware server (input
            // acks, heartbeat replies) is harmless to a plain client.
            Msg::AckIn { .. } | Msg::Ping | Msg::Pong => {}
            other => {
                return Err(NetError::Protocol(format!(
                    "unexpected {:?} while streaming outputs",
                    other.msg_type()
                )))
            }
        }
    }
}
