//! The blocking TCP front end.
//!
//! One accepted connection is one codec session: the connection thread
//! reads wire messages and feeds the session's queue, while the codec
//! work itself runs on the `hdvb-serve` pool — the session's output
//! sink streams packets/frames back over the socket from whichever pool
//! worker pumps the session. A write-half mutex keeps the sink's output
//! messages and the reader's control replies from interleaving.
//!
//! A client that disconnects mid-stream (EOF, reset, or a wire error)
//! tears down only its own session: the reader cancels via the
//! session's `CancelToken` path (`SessionHandle::cancel`), queued
//! inputs are recycled to the global pools, and neighbour sessions and
//! the pool never notice.

use crate::admission::{SloPolicy, TokenBucket};
use crate::wire::{self, DoneStats, ErrorCode, Header, Msg, WireError, HEADER_LEN};
use hdvb_core::SessionInput;
use hdvb_dsp::SimdLevel;
use hdvb_serve::{OpenOptions, Server, ServerConfig, SessionHandle};
use hdvb_trace::LatencyHistogram;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything a [`NetServer`] needs to know.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// The serve-layer knobs (pool threads, queue capacity, policy,
    /// rolling latency window).
    pub server: ServerConfig,
    /// SLO admission control; `None` admits every OPEN.
    pub slo: Option<SloPolicy>,
    /// Per-session token-bucket rate limit in inputs/second (burst =
    /// one second's worth); `None` disables shaping.
    pub rate_limit: Option<u32>,
    /// Kernel dispatch tier for sessions built from OPEN specs.
    pub simd: SimdLevel,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            server: ServerConfig::default(),
            slo: None,
            rate_limit: None,
            simd: SimdLevel::preferred(),
        }
    }
}

/// Fleet counters, indexed by [`Priority::index`] where per-class.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Connections accepted.
    pub connections: u64,
    /// OPENs admitted, per class.
    pub admitted: [u64; 2],
    /// OPENs rejected by admission control, per class.
    pub rejected: [u64; 2],
    /// Inputs completed by retired sessions, per class.
    pub completed: [u64; 2],
    /// Inputs discarded by retired sessions, per class.
    pub discarded: [u64; 2],
    /// Connections that vanished mid-session (EOF/reset before FLUSH).
    pub disconnects: u64,
    /// Messages that failed wire decoding.
    pub wire_errors: u64,
    /// Latency histograms of retired sessions, per class.
    pub latency: [LatencyHistogram; 2],
}

struct NetShared {
    server: Server,
    config: NetConfig,
    stats: Mutex<NetStats>,
    shutdown: AtomicBool,
    next_session: AtomicU32,
}

/// A running TCP front end. Dropping it without
/// [`shutdown`](Self::shutdown) leaves the accept thread running until
/// the process exits.
pub struct NetServer {
    shared: Arc<NetShared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts accepting.
    ///
    /// # Errors
    ///
    /// Any I/O error from binding.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: NetConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept polled against the shutdown flag, so
        // `shutdown` never hangs on a listener with no final client.
        listener.set_nonblocking(true)?;
        let shared = Arc::new(NetShared {
            server: Server::new(config.server),
            config,
            stats: Mutex::new(NetStats::default()),
            shutdown: AtomicBool::new(false),
            next_session: AtomicU32::new(1),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(listener, &accept_shared));
        Ok(NetServer {
            shared,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the fleet counters.
    pub fn stats(&self) -> NetStats {
        self.shared
            .stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Sessions opened but not yet retired.
    pub fn active_sessions(&self) -> usize {
        self.shared.server.active_sessions()
    }

    /// The serve pool's worker count.
    pub fn threads(&self) -> usize {
        self.shared.server.threads()
    }

    /// Stops accepting, waits for connection threads to finish their
    /// sessions, and joins the accept thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shared.server.drain();
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<NetShared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared
                    .stats
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .connections += 1;
                let conn_shared = Arc::clone(shared);
                conns.push(std::thread::spawn(move || {
                    handle_connection(stream, &conn_shared);
                }));
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

/// The socket write half, shared between the connection reader (control
/// replies) and the session's output sink (streamed outputs).
struct WriteHalf {
    stream: Mutex<(TcpStream, u32)>,
    /// Set on the first write failure; the session is cancelled rather
    /// than blocked on a dead socket.
    broken: AtomicBool,
}

impl WriteHalf {
    fn send(&self, msg: &Msg) {
        if self.broken.load(Ordering::Acquire) {
            return;
        }
        let mut g = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        let (stream, seq) = &mut *g;
        let mut buf = Vec::new();
        wire::encode(msg, *seq, &mut buf);
        *seq = seq.wrapping_add(1);
        if stream.write_all(&buf).is_err() {
            self.broken.store(true, Ordering::Release);
        }
    }
}

/// Reads exactly one message off the socket.
enum ReadOutcome {
    Msg(Msg),
    /// Clean or abrupt connection end (EOF / reset / timeout).
    Gone,
    /// The bytes were not a valid message.
    Malformed(WireError),
}

fn read_msg(stream: &mut TcpStream) -> ReadOutcome {
    let mut header = [0u8; HEADER_LEN];
    if let Err(e) = stream.read_exact(&mut header) {
        let _ = e;
        return ReadOutcome::Gone;
    }
    let Header { msg_type, len, .. } = match wire::parse_header(&header) {
        Ok(h) => h,
        Err(e) => return ReadOutcome::Malformed(e),
    };
    let mut payload = vec![0u8; len as usize];
    if stream.read_exact(&mut payload).is_err() {
        return ReadOutcome::Gone;
    }
    match wire::decode_payload(msg_type, &payload) {
        Ok(msg) => ReadOutcome::Msg(msg),
        Err(e) => ReadOutcome::Malformed(e),
    }
}

fn bump(stats: &Mutex<NetStats>, f: impl FnOnce(&mut NetStats)) {
    f(&mut stats.lock().unwrap_or_else(|e| e.into_inner()));
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<NetShared>) {
    let _ = stream.set_nodelay(true);
    // HELLO ↔ HELLO.
    match read_msg(&mut stream) {
        ReadOutcome::Msg(Msg::Hello { server: false }) => {}
        ReadOutcome::Gone => return,
        other => {
            if let ReadOutcome::Malformed(e) = &other {
                bump(&shared.stats, |s| s.wire_errors += 1);
                reply_error(&stream, ErrorCode::Protocol, &e.to_string());
            } else {
                reply_error(&stream, ErrorCode::Protocol, "expected HELLO");
            }
            return;
        }
    }
    let write = Arc::new(WriteHalf {
        stream: Mutex::new((
            match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            },
            0,
        )),
        broken: AtomicBool::new(false),
    });
    write.send(&Msg::Hello { server: true });

    // OPEN → admission → OPEN_OK | ERROR.
    let (spec, priority) = match read_msg(&mut stream) {
        ReadOutcome::Msg(Msg::Open { spec, priority }) => (spec, priority),
        ReadOutcome::Gone => return,
        ReadOutcome::Malformed(e) => {
            bump(&shared.stats, |s| s.wire_errors += 1);
            write.send(&Msg::Error {
                code: ErrorCode::Protocol,
                detail: e.to_string(),
            });
            return;
        }
        ReadOutcome::Msg(_) => {
            write.send(&Msg::Error {
                code: ErrorCode::Protocol,
                detail: "expected OPEN".into(),
            });
            return;
        }
    };
    if let Some(slo) = &shared.config.slo {
        let fleet = shared.server.fleet_latency();
        // HDVB_NET_DEBUG logs every admission decision — the signal to
        // watch when tuning an SLO against a new machine's capacity.
        if std::env::var_os("HDVB_NET_DEBUG").is_some() {
            eprintln!(
                "[admit] {priority:?} fleet count={} p99={:.1}ms thr={:.1}ms",
                fleet.count(),
                fleet.percentile(0.99) as f64 / 1e6,
                slo.threshold_ns(priority) as f64 / 1e6,
            );
        }
        if let Err(rejection) = slo.admit(&fleet, priority) {
            bump(&shared.stats, |s| s.rejected[priority.index()] += 1);
            write.send(&Msg::Error {
                code: ErrorCode::Rejected,
                detail: rejection.detail(priority),
            });
            return;
        }
    }
    let session = match spec.build(shared.config.simd) {
        Ok(s) => s,
        Err(e) => {
            write.send(&Msg::Error {
                code: ErrorCode::Codec,
                detail: e.to_string(),
            });
            return;
        }
    };
    bump(&shared.stats, |s| s.admitted[priority.index()] += 1);

    let sink_write = Arc::clone(&write);
    let handle = shared.server.open_with(
        session,
        OpenOptions {
            keep_output: false,
            priority,
            sink: Some(Box::new(move |out| {
                for p in out.packets.drain(..) {
                    let msg = Msg::Packet(p);
                    sink_write.send(&msg);
                    wire::recycle_msg(msg);
                }
                for f in out.frames.drain(..) {
                    let msg = Msg::Frame(f);
                    sink_write.send(&msg);
                    wire::recycle_msg(msg);
                }
            })),
        },
    );
    let session_id = shared.next_session.fetch_add(1, Ordering::Relaxed);
    write.send(&Msg::OpenOk { session_id });

    let outcome = pump_inputs(&mut stream, shared, &write, &handle);
    // Whatever ended the stream, the session is fully retired here;
    // fold its result into the fleet counters.
    let result = handle.wait();
    bump(&shared.stats, |s| {
        s.completed[priority.index()] += result.completed;
        s.discarded[priority.index()] += result.discarded;
        s.latency[priority.index()].merge(&result.metrics.latency);
    });
    if outcome == StreamEnd::Flushed {
        write.send(&Msg::Done(DoneStats {
            completed: result.completed,
            discarded: result.discarded,
            corrupt_dropped: result.corrupt_dropped,
            p50_ns: result.metrics.latency.percentile(0.50),
            p99_ns: result.metrics.latency.percentile(0.99),
        }));
    }
    let _ = stream.shutdown(Shutdown::Both);
}

#[derive(PartialEq, Eq)]
enum StreamEnd {
    /// Client flushed; DONE follows.
    Flushed,
    /// Disconnect, CLOSE, protocol violation or session failure.
    Aborted,
}

/// Reads inputs until FLUSH/CLOSE/disconnect. Returns how the stream
/// ended; the session is finished or cancelled accordingly but not yet
/// waited on.
fn pump_inputs(
    stream: &mut TcpStream,
    shared: &Arc<NetShared>,
    write: &WriteHalf,
    handle: &SessionHandle,
) -> StreamEnd {
    let mut bucket = shared
        .config
        .rate_limit
        .map(|rate| TokenBucket::new(f64::from(rate), f64::from(rate)));
    loop {
        if write.broken.load(Ordering::Acquire) {
            // The client stopped reading its outputs; treat as gone.
            bump(&shared.stats, |s| s.disconnects += 1);
            handle.cancel();
            return StreamEnd::Aborted;
        }
        match read_msg(stream) {
            ReadOutcome::Msg(msg @ (Msg::Frame(_) | Msg::Packet(_))) => {
                if let Some(b) = bucket.as_mut() {
                    let wait = b.acquire();
                    if !wait.is_zero() {
                        std::thread::sleep(wait);
                    }
                }
                let input = match msg {
                    Msg::Frame(f) => SessionInput::Frame(f),
                    Msg::Packet(p) => SessionInput::Packet(p.data),
                    _ => unreachable!(),
                };
                if handle.submit(input).is_err() {
                    // The session already retired (codec error or
                    // cancellation); report and stop reading.
                    let detail = "session closed".to_string();
                    write.send(&Msg::Error {
                        code: ErrorCode::Codec,
                        detail,
                    });
                    return StreamEnd::Aborted;
                }
            }
            ReadOutcome::Msg(Msg::Flush) => {
                handle.finish();
                return StreamEnd::Flushed;
            }
            ReadOutcome::Msg(Msg::Close) => {
                handle.cancel();
                return StreamEnd::Aborted;
            }
            ReadOutcome::Msg(_) => {
                write.send(&Msg::Error {
                    code: ErrorCode::Protocol,
                    detail: "unexpected message mid-stream".into(),
                });
                handle.cancel();
                return StreamEnd::Aborted;
            }
            ReadOutcome::Gone => {
                // EOF or reset mid-stream: cancel this session only;
                // queued inputs are recycled by `cancel`.
                bump(&shared.stats, |s| s.disconnects += 1);
                handle.cancel();
                return StreamEnd::Aborted;
            }
            ReadOutcome::Malformed(e) => {
                bump(&shared.stats, |s| s.wire_errors += 1);
                write.send(&Msg::Error {
                    code: ErrorCode::Protocol,
                    detail: e.to_string(),
                });
                handle.cancel();
                return StreamEnd::Aborted;
            }
        }
    }
}

/// Best-effort error reply on a connection that has no [`WriteHalf`]
/// yet (pre-handshake failures).
fn reply_error(stream: &TcpStream, code: ErrorCode, detail: &str) {
    let mut buf = Vec::new();
    wire::encode(
        &Msg::Error {
            code,
            detail: detail.to_string(),
        },
        0,
        &mut buf,
    );
    let mut s = stream;
    let _ = s.write_all(&buf);
}
