//! The blocking TCP front end.
//!
//! One accepted connection is one codec session: the connection thread
//! reads wire messages and feeds the session's queue, while the codec
//! work itself runs on the `hdvb-serve` pool — the session's output
//! sink streams packets/frames back over the socket from whichever pool
//! worker pumps the session. A write-half mutex keeps the sink's output
//! messages and the reader's control replies from interleaving.
//!
//! Every accepted socket runs with a short read timeout (the poll
//! quantum) feeding a [`MsgReader`], so connection threads interleave
//! reads with liveness checks: a peer that goes silent for twice the
//! heartbeat interval — no data, no PING — is declared dead and reaped,
//! whether it FIN'd or simply vanished. Writes carry a deadline too, so
//! a peer that stops draining its receive window cannot pin a pool
//! worker in `send` forever.
//!
//! Disconnect handling depends on how the session was opened:
//!
//! * A plain session (OPEN without the resume flag) is torn down — the
//!   reader cancels via `SessionHandle::cancel`, queued inputs are
//!   recycled, neighbour sessions never notice. This is the historical
//!   behaviour.
//! * A resumable session *parks* instead (see [`crate::resume`]): the
//!   codec keeps running, outputs accumulate in the journal, and a
//!   client reconnecting with RESUME gets the unacked tail replayed.
//!   Parked sessions that nobody resumes within the resume window are
//!   reaped by the accept loop.

use crate::admission::{SloPolicy, TokenBucket};
use crate::faults::{FaultyStream, NetFaultPlan};
use crate::reader::{MsgReader, ReadEvent};
use crate::resume::{AttachError, Registry, SessionEntry};
use crate::wire::{self, DoneStats, ErrorCode, Msg, WireError};
use hdvb_core::{Priority, SessionInput, SessionSpec};
use hdvb_dsp::SimdLevel;
use hdvb_serve::{OpenOptions, Server, ServerConfig, SessionHandle, SessionResult};
use hdvb_trace::LatencyHistogram;
use std::io::{ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cumulative-input acks are sent to resumable clients every this many
/// inputs, bounding how much a client must keep in its replay buffer.
const ACK_IN_EVERY: u64 = 8;

/// Everything a [`NetServer`] needs to know.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// The serve-layer knobs (pool threads, queue capacity, policy,
    /// rolling latency window).
    pub server: ServerConfig,
    /// SLO admission control; `None` admits every OPEN.
    pub slo: Option<SloPolicy>,
    /// Per-session token-bucket rate limit in inputs/second (burst =
    /// one second's worth); `None` disables shaping.
    pub rate_limit: Option<u32>,
    /// Kernel dispatch tier for sessions built from OPEN specs.
    pub simd: SimdLevel,
    /// Heartbeat interval advertised to clients in OPEN_OK. A peer
    /// silent for twice this is reaped as dead. `Duration::ZERO`
    /// disables liveness enforcement (reads still time out on the poll
    /// quantum so threads stay responsive).
    pub heartbeat: Duration,
    /// How long a parked resumable session waits for a RESUME before
    /// the accept loop reaps it.
    pub resume_window: Duration,
    /// Max unacked output messages journaled per resumable session;
    /// overflowing makes the session non-resumable.
    pub journal_cap: usize,
    /// Server-side wire fault injection, applied to every accepted
    /// socket (tests and chaos campaigns; normal servers leave `None`).
    pub faults: Option<Arc<NetFaultPlan>>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            server: ServerConfig::default(),
            slo: None,
            rate_limit: None,
            simd: SimdLevel::preferred(),
            heartbeat: Duration::from_secs(30),
            resume_window: Duration::from_secs(10),
            journal_cap: 256,
            faults: None,
        }
    }
}

/// Fleet counters, indexed by [`Priority::index`] where per-class.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Connections accepted.
    pub connections: u64,
    /// OPENs admitted, per class.
    pub admitted: [u64; 2],
    /// OPENs rejected by admission control, per class.
    pub rejected: [u64; 2],
    /// Inputs completed by retired sessions, per class.
    pub completed: [u64; 2],
    /// Inputs discarded by retired sessions, per class.
    pub discarded: [u64; 2],
    /// Connections that vanished mid-session (EOF/reset before FLUSH).
    pub disconnects: u64,
    /// Messages that failed wire decoding.
    pub wire_errors: u64,
    /// Connections reaped by the liveness deadline (silent dead peers).
    pub timeouts: u64,
    /// PINGs answered.
    pub pings: u64,
    /// Successful RESUME attaches.
    pub resumes: u64,
    /// Journal entries replayed across all resumes.
    pub replayed: u64,
    /// Times a resumable session parked on disconnect.
    pub parked: u64,
    /// Parked sessions reaped after the resume window elapsed.
    pub expired: u64,
    /// Latency histograms of retired sessions, per class.
    pub latency: [LatencyHistogram; 2],
}

struct NetShared {
    server: Server,
    config: NetConfig,
    stats: Mutex<NetStats>,
    shutdown: AtomicBool,
    next_session: AtomicU32,
    registry: Registry,
}

/// A running TCP front end. Dropping it without
/// [`shutdown`](Self::shutdown) leaves the accept thread running until
/// the process exits.
pub struct NetServer {
    shared: Arc<NetShared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts accepting.
    ///
    /// # Errors
    ///
    /// Any I/O error from binding.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: NetConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept polled against the shutdown flag, so
        // `shutdown` never hangs on a listener with no final client.
        listener.set_nonblocking(true)?;
        let shared = Arc::new(NetShared {
            server: Server::new(config.server),
            config,
            stats: Mutex::new(NetStats::default()),
            shutdown: AtomicBool::new(false),
            next_session: AtomicU32::new(1),
            registry: Registry::new(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(listener, &accept_shared));
        Ok(NetServer {
            shared,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the fleet counters.
    pub fn stats(&self) -> NetStats {
        self.shared
            .stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Sessions opened but not yet retired.
    pub fn active_sessions(&self) -> usize {
        self.shared.server.active_sessions()
    }

    /// Resumable sessions currently registered (attached or parked).
    pub fn resumable_sessions(&self) -> usize {
        self.shared.registry.len()
    }

    /// The serve pool's worker count.
    pub fn threads(&self) -> usize {
        self.shared.server.threads()
    }

    /// Stops accepting, waits for connection threads to finish their
    /// sessions, reaps any still-parked sessions, and joins the accept
    /// thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shared.server.drain();
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<NetShared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                bump(&shared.stats, |s| s.connections += 1);
                let conn_shared = Arc::clone(shared);
                conns.push(std::thread::spawn(move || {
                    handle_connection(stream, &conn_shared);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
        reap_finished(&mut conns);
        sweep_expired(shared, &mut conns);
    }
    for h in conns.drain(..) {
        let _ = h.join();
    }
    // Final sweep: every connection thread has exited, so anything left
    // in the registry is parked. Tear it down here so `Server::drain`
    // cannot hang on a session nobody will ever resume.
    for entry in shared.registry.expire(Duration::ZERO) {
        expire_entry(shared, &entry);
    }
}

/// Joins connection threads that have finished, so a long-lived server
/// does not accumulate dead `JoinHandle`s (and their OS threads' exit
/// status) until shutdown.
fn reap_finished(conns: &mut Vec<JoinHandle<()>>) {
    let mut i = 0;
    while i < conns.len() {
        if conns[i].is_finished() {
            let h = conns.swap_remove(i);
            let _ = h.join();
        } else {
            i += 1;
        }
    }
}

/// Reaps resumable sessions parked longer than the resume window. The
/// teardown (cancel + wait) can block on the pool, so it runs on a
/// short-lived thread tracked like a connection.
fn sweep_expired(shared: &Arc<NetShared>, conns: &mut Vec<JoinHandle<()>>) {
    for entry in shared.registry.expire(shared.config.resume_window) {
        let s = Arc::clone(shared);
        conns.push(std::thread::spawn(move || expire_entry(&s, &entry)));
    }
}

fn expire_entry(shared: &Arc<NetShared>, entry: &SessionEntry) {
    entry.handle().cancel();
    if entry.claim_wait() {
        let result = entry.handle().wait();
        merge_result(shared, entry.priority, &result);
    }
    entry.recycle();
    bump(&shared.stats, |s| s.expired += 1);
}

/// The socket write half, shared between the connection reader (control
/// replies), the session's output sink (streamed outputs), and — for
/// resumable sessions — the journal's replay path.
pub(crate) struct WriteHalf {
    stream: Mutex<(FaultyStream, u32)>,
    /// Set on the first write failure; the session is parked or
    /// cancelled rather than blocked on a dead socket.
    broken: AtomicBool,
}

impl WriteHalf {
    fn new(stream: FaultyStream) -> WriteHalf {
        WriteHalf {
            stream: Mutex::new((stream, 0)),
            broken: AtomicBool::new(false),
        }
    }

    pub(crate) fn send(&self, msg: &Msg) {
        if self.is_broken() {
            return;
        }
        let mut g = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        let (stream, seq) = &mut *g;
        let mut buf = Vec::new();
        wire::encode(msg, *seq, &mut buf);
        *seq = seq.wrapping_add(1);
        if stream.write_all(&buf).is_err() {
            self.broken.store(true, Ordering::Release);
        }
    }

    /// Writes pre-encoded wire bytes (journaled outputs and replays,
    /// which carry their journal sequence instead of the connection
    /// sequence). Returns whether the socket still works.
    pub(crate) fn send_raw(&self, bytes: &[u8]) -> bool {
        if self.is_broken() {
            return false;
        }
        let mut g = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        if g.0.write_all(bytes).is_err() {
            self.broken.store(true, Ordering::Release);
            return false;
        }
        true
    }

    pub(crate) fn is_broken(&self) -> bool {
        self.broken.load(Ordering::Acquire)
    }

    fn shutdown(&self) {
        let g = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        let _ = g.0.shutdown(Shutdown::Both);
    }
}

/// How long a read may block before the connection thread gets control
/// back to check liveness, session completion, and the write half.
fn poll_quantum(heartbeat: Duration) -> Duration {
    if heartbeat.is_zero() {
        Duration::from_millis(100)
    } else {
        (heartbeat / 4).clamp(Duration::from_millis(5), Duration::from_millis(250))
    }
}

/// Write deadline: generous relative to the heartbeat so a slow-but-
/// alive client never trips it, but bounded so a wedged peer cannot pin
/// a pool worker.
fn write_timeout(heartbeat: Duration) -> Duration {
    if heartbeat.is_zero() {
        Duration::from_secs(30)
    } else {
        (heartbeat * 4).max(Duration::from_secs(1))
    }
}

fn liveness(heartbeat: Duration) -> Option<Duration> {
    (!heartbeat.is_zero()).then(|| heartbeat * 2)
}

fn bump(stats: &Mutex<NetStats>, f: impl FnOnce(&mut NetStats)) {
    f(&mut stats.lock().unwrap_or_else(|e| e.into_inner()));
}

fn merge_result(shared: &NetShared, priority: Priority, result: &SessionResult) {
    bump(&shared.stats, |s| {
        s.completed[priority.index()] += result.completed;
        s.discarded[priority.index()] += result.discarded;
        s.latency[priority.index()].merge(&result.metrics.latency);
    });
}

fn done_stats(result: &SessionResult) -> DoneStats {
    DoneStats {
        completed: result.completed,
        discarded: result.discarded,
        corrupt_dropped: result.corrupt_dropped,
        p50_ns: result.metrics.latency.percentile(0.50),
        p99_ns: result.metrics.latency.percentile(0.99),
    }
}

/// One non-control event off the wire.
enum Ctl {
    Msg(Msg),
    /// EOF, reset, or unreadable socket.
    Gone,
    /// Liveness deadline exceeded: the peer is silently dead.
    Dead,
    Malformed(WireError),
}

/// Per-connection state threaded through the handshake and session
/// phases. Control messages (PING/PONG/ACK) are absorbed here so every
/// phase gets heartbeat handling for free.
struct Conn {
    reader: MsgReader<FaultyStream>,
    write: Arc<WriteHalf>,
    shared: Arc<NetShared>,
    /// The resumable session attached to this connection, if any.
    entry: Option<Arc<SessionEntry>>,
    liveness: Option<Duration>,
    last_traffic: Instant,
}

impl Conn {
    /// One reader poll. `None` means the quantum elapsed with nothing
    /// to do (and the peer is not yet past its liveness deadline when
    /// `enforce` is set).
    fn tick(&mut self, enforce: bool) -> Option<Ctl> {
        match self.reader.poll() {
            ReadEvent::Msg(msg, _seq) => {
                self.last_traffic = Instant::now();
                match msg {
                    Msg::Ping => {
                        bump(&self.shared.stats, |s| s.pings += 1);
                        self.write.send(&Msg::Pong);
                        None
                    }
                    Msg::Pong => None,
                    Msg::AckOut { outputs_received } => {
                        if let Some(entry) = &self.entry {
                            entry.ack_outputs(outputs_received);
                        }
                        None
                    }
                    // ACK_IN is server→client; ignore echoes.
                    Msg::AckIn { .. } => None,
                    other => Some(Ctl::Msg(other)),
                }
            }
            ReadEvent::Idle => match self.liveness {
                Some(limit) if enforce && self.last_traffic.elapsed() >= limit => Some(Ctl::Dead),
                _ => None,
            },
            ReadEvent::Gone => Some(Ctl::Gone),
            ReadEvent::Malformed(e) => Some(Ctl::Malformed(e)),
        }
    }

    /// Blocks (in quantum steps) until a non-control event.
    fn next(&mut self) -> Ctl {
        loop {
            if let Some(ctl) = self.tick(true) {
                return ctl;
            }
        }
    }

    fn send_error(&self, code: ErrorCode, detail: impl Into<String>) {
        self.write.send(&Msg::Error {
            code,
            detail: detail.into(),
        });
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<NetShared>) {
    let hb = shared.config.heartbeat;
    let stream = FaultyStream::wrap(stream, shared.config.faults.clone());
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(poll_quantum(hb)));
    let _ = stream.set_write_timeout(Some(write_timeout(hb)));
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut conn = Conn {
        reader: MsgReader::new(read_half),
        write: Arc::new(WriteHalf::new(stream)),
        shared: Arc::clone(shared),
        entry: None,
        liveness: liveness(hb),
        last_traffic: Instant::now(),
    };

    // HELLO ↔ HELLO. The liveness deadline applies from the first byte,
    // so a peer that connects and says nothing is reaped.
    match conn.next() {
        Ctl::Msg(Msg::Hello { server: false }) => {}
        Ctl::Gone => return,
        Ctl::Dead => {
            bump(&shared.stats, |s| s.timeouts += 1);
            conn.write.shutdown();
            return;
        }
        Ctl::Malformed(e) => {
            bump(&shared.stats, |s| s.wire_errors += 1);
            conn.send_error(ErrorCode::Protocol, e.to_string());
            conn.write.shutdown();
            return;
        }
        Ctl::Msg(_) => {
            conn.send_error(ErrorCode::Protocol, "expected HELLO");
            conn.write.shutdown();
            return;
        }
    }
    conn.write.send(&Msg::Hello { server: true });

    // OPEN or RESUME.
    match conn.next() {
        Ctl::Msg(Msg::Open {
            spec,
            priority,
            resume,
        }) => open_session(&mut conn, spec, priority, resume),
        Ctl::Msg(Msg::Resume {
            session_id,
            outputs_received,
        }) => resume_session(&mut conn, session_id, outputs_received),
        Ctl::Gone => {}
        Ctl::Dead => bump(&shared.stats, |s| s.timeouts += 1),
        Ctl::Malformed(e) => {
            bump(&shared.stats, |s| s.wire_errors += 1);
            conn.send_error(ErrorCode::Protocol, e.to_string());
        }
        Ctl::Msg(_) => conn.send_error(ErrorCode::Protocol, "expected OPEN or RESUME"),
    }
    conn.write.shutdown();
}

fn open_session(conn: &mut Conn, spec: SessionSpec, priority: Priority, resume: bool) {
    let shared = Arc::clone(&conn.shared);
    if let Some(slo) = &shared.config.slo {
        let fleet = shared.server.fleet_latency();
        // HDVB_NET_DEBUG logs every admission decision — the signal to
        // watch when tuning an SLO against a new machine's capacity.
        if std::env::var_os("HDVB_NET_DEBUG").is_some() {
            eprintln!(
                "[admit] {priority:?} fleet count={} p99={:.1}ms thr={:.1}ms",
                fleet.count(),
                fleet.percentile(0.99) as f64 / 1e6,
                slo.threshold_ns(priority) as f64 / 1e6,
            );
        }
        if let Err(rejection) = slo.admit(&fleet, priority) {
            bump(&shared.stats, |s| s.rejected[priority.index()] += 1);
            conn.send_error(ErrorCode::Rejected, rejection.detail(priority));
            return;
        }
    }
    let session = match spec.build(shared.config.simd) {
        Ok(s) => s,
        Err(e) => {
            conn.send_error(ErrorCode::Codec, e.to_string());
            return;
        }
    };
    bump(&shared.stats, |s| s.admitted[priority.index()] += 1);
    let session_id = shared.next_session.fetch_add(1, Ordering::Relaxed);
    let heartbeat_ms = u32::try_from(shared.config.heartbeat.as_millis()).unwrap_or(u32::MAX);

    if resume {
        let entry = Arc::new(SessionEntry::new(
            session_id,
            priority,
            shared.config.journal_cap,
            Arc::clone(&conn.write),
        ));
        // The sink holds the entry weakly: the entry owns the session
        // handle, the handle keeps the session state (and this very
        // closure) alive, so a strong reference here would be a cycle
        // that leaks the session — and the pool it pins — forever.
        let sink_entry = Arc::downgrade(&entry);
        let handle = shared.server.open_with(
            session,
            OpenOptions {
                keep_output: false,
                priority,
                sink: Some(Box::new(move |out| {
                    let Some(entry) = sink_entry.upgrade() else {
                        for p in out.packets.drain(..) {
                            wire::recycle_msg(Msg::Packet(p));
                        }
                        for f in out.frames.drain(..) {
                            wire::recycle_msg(Msg::Frame(f));
                        }
                        return;
                    };
                    for p in out.packets.drain(..) {
                        entry.emit(Msg::Packet(p));
                    }
                    for f in out.frames.drain(..) {
                        entry.emit(Msg::Frame(f));
                    }
                })),
            },
        );
        entry.set_handle(handle);
        shared.registry.insert(Arc::clone(&entry));
        conn.entry = Some(Arc::clone(&entry));
        conn.write.send(&Msg::OpenOk {
            session_id,
            heartbeat_ms,
        });
        run_session(conn, entry.handle(), priority, 0);
    } else {
        let sink_write = Arc::clone(&conn.write);
        let handle = shared.server.open_with(
            session,
            OpenOptions {
                keep_output: false,
                priority,
                sink: Some(Box::new(move |out| {
                    for p in out.packets.drain(..) {
                        let msg = Msg::Packet(p);
                        sink_write.send(&msg);
                        wire::recycle_msg(msg);
                    }
                    for f in out.frames.drain(..) {
                        let msg = Msg::Frame(f);
                        sink_write.send(&msg);
                        wire::recycle_msg(msg);
                    }
                })),
            },
        );
        conn.write.send(&Msg::OpenOk {
            session_id,
            heartbeat_ms,
        });
        run_session(conn, &handle, priority, 0);
    }
}

fn resume_session(conn: &mut Conn, session_id: u32, outputs_received: u64) {
    let shared = Arc::clone(&conn.shared);
    let Some(entry) = shared.registry.get(session_id) else {
        conn.send_error(ErrorCode::NoSession, "unknown or expired session");
        return;
    };
    match entry.attach(Arc::clone(&conn.write), outputs_received) {
        Err(AttachError::Live) => {
            // The old connection has not been declared dead yet; the
            // client backs off and retries — Protocol is retryable.
            conn.send_error(
                ErrorCode::Protocol,
                "session busy: previous connection still attached",
            );
        }
        Err(AttachError::OutOfRange) => {
            conn.send_error(
                ErrorCode::NoSession,
                "resume point no longer in journal (overflowed)",
            );
        }
        Ok((generation, replayed)) => {
            bump(&shared.stats, |s| {
                s.resumes += 1;
                s.replayed += replayed;
            });
            conn.entry = Some(Arc::clone(&entry));
            run_session(conn, entry.handle(), entry.priority, generation);
        }
    }
}

#[derive(PartialEq, Eq)]
enum StreamEnd {
    /// Client flushed; the drain phase follows.
    Flushed,
    /// CLOSE, protocol violation, or session failure: torn down.
    Aborted,
    /// Resumable session detached; a later connection may pick it up.
    Parked,
}

/// Drives one attached connection through its remaining phases:
/// streaming (unless FLUSH already happened before a resume), drain,
/// and — for resumable sessions — the ack drain.
fn run_session(conn: &mut Conn, handle: &SessionHandle, priority: Priority, generation: u64) {
    let entry = conn.entry.clone();
    let end = if entry.as_ref().is_some_and(|e| e.is_flushed()) {
        StreamEnd::Flushed
    } else {
        run_streaming(conn, handle, generation)
    };
    match end {
        StreamEnd::Parked => {}
        StreamEnd::Aborted => {
            // The session is cancelled (or retired on its own); fold
            // its result into the fleet counters and forget it.
            finalize(conn, handle, priority);
            if let Some(entry) = &entry {
                conn.shared.registry.remove(entry.id);
                entry.recycle();
            }
        }
        StreamEnd::Flushed => drain_session(conn, handle, priority, generation),
    }
}

/// Reads inputs until FLUSH/CLOSE/disconnect.
fn run_streaming(conn: &mut Conn, handle: &SessionHandle, generation: u64) -> StreamEnd {
    let shared = Arc::clone(&conn.shared);
    let mut bucket = shared
        .config
        .rate_limit
        .map(|rate| TokenBucket::new(f64::from(rate), f64::from(rate)));
    loop {
        if conn.write.is_broken() {
            // The client stopped reading its outputs; treat as gone.
            return disconnect(conn, handle, generation, false);
        }
        let Some(ctl) = conn.tick(true) else { continue };
        match ctl {
            Ctl::Msg(msg @ (Msg::Frame(_) | Msg::Packet(_))) => {
                if let Some(b) = bucket.as_mut() {
                    let wait = b.acquire();
                    if !wait.is_zero() {
                        std::thread::sleep(wait);
                    }
                }
                if let Some(entry) = &conn.entry {
                    let n = entry.input_received();
                    if n % ACK_IN_EVERY == 0 {
                        conn.write.send(&Msg::AckIn { inputs_received: n });
                    }
                }
                let input = match msg {
                    Msg::Frame(f) => SessionInput::Frame(f),
                    Msg::Packet(p) => SessionInput::Packet(p.data),
                    _ => unreachable!(),
                };
                if handle.submit(input).is_err() {
                    // The session already retired (codec error or
                    // cancellation); report and stop reading.
                    conn.send_error(ErrorCode::Codec, "session closed");
                    return StreamEnd::Aborted;
                }
            }
            Ctl::Msg(Msg::Flush) => {
                if let Some(entry) = &conn.entry {
                    entry.set_flushed();
                }
                handle.finish();
                return StreamEnd::Flushed;
            }
            Ctl::Msg(Msg::Close) => {
                handle.cancel();
                return StreamEnd::Aborted;
            }
            Ctl::Msg(_) => {
                conn.send_error(ErrorCode::Protocol, "unexpected message mid-stream");
                handle.cancel();
                return StreamEnd::Aborted;
            }
            Ctl::Gone => return disconnect(conn, handle, generation, false),
            Ctl::Dead => return disconnect(conn, handle, generation, true),
            Ctl::Malformed(e) => {
                bump(&shared.stats, |s| s.wire_errors += 1);
                conn.send_error(ErrorCode::Protocol, e.to_string());
                if conn.entry.is_some() {
                    // A corrupted message severed framing, but the
                    // input was never submitted — the client's replay
                    // buffer still holds it, so a resume loses nothing.
                    return park(conn, generation, false);
                }
                handle.cancel();
                return StreamEnd::Aborted;
            }
        }
    }
}

/// EOF/reset/liveness-expiry mid-stream: park resumable sessions,
/// cancel plain ones.
fn disconnect(conn: &Conn, handle: &SessionHandle, generation: u64, timed_out: bool) -> StreamEnd {
    bump(&conn.shared.stats, |s| {
        s.disconnects += 1;
        if timed_out {
            s.timeouts += 1;
        }
    });
    if conn.entry.is_some() {
        park(conn, generation, false)
    } else {
        handle.cancel();
        StreamEnd::Aborted
    }
}

fn park(conn: &Conn, generation: u64, timed_out: bool) -> StreamEnd {
    if timed_out {
        bump(&conn.shared.stats, |s| s.timeouts += 1);
    }
    if let Some(entry) = &conn.entry {
        if entry.park(generation) {
            bump(&conn.shared.stats, |s| s.parked += 1);
        }
    }
    StreamEnd::Parked
}

/// After FLUSH: poll the session to completion while answering
/// heartbeats and acks, emit DONE, then (resumable only) wait for the
/// final acks so the journal can be retired.
fn drain_session(conn: &mut Conn, handle: &SessionHandle, priority: Priority, generation: u64) {
    let entry = conn.entry.clone();
    let quantum = poll_quantum(conn.shared.config.heartbeat);
    // A plain client that disconnects during the drain no longer gets
    // its DONE, but the session still finishes and counts.
    let mut reader_gone = false;
    while !handle.is_done() {
        if entry.is_some() && conn.write.is_broken() {
            park(conn, generation, false);
            return;
        }
        if reader_gone {
            std::thread::sleep(quantum);
            continue;
        }
        // Liveness is only enforced for resumable sessions here: a
        // plain client waits silently for its outputs, and that must
        // keep working. Resumable clients heartbeat while they wait.
        match conn.tick(entry.is_some()) {
            None => {}
            // Stray messages (duplicate FLUSH after a resume) are fine.
            Some(Ctl::Msg(_)) => {}
            Some(Ctl::Gone) | Some(Ctl::Malformed(_)) => {
                if entry.is_some() {
                    bump(&conn.shared.stats, |s| s.disconnects += 1);
                    park(conn, generation, false);
                    return;
                }
                reader_gone = true;
            }
            Some(Ctl::Dead) => {
                if entry.is_some() {
                    bump(&conn.shared.stats, |s| s.disconnects += 1);
                    park(conn, generation, true);
                    return;
                }
                reader_gone = true;
            }
        }
    }
    let stats = finalize(conn, handle, priority);
    let Some(entry) = entry else {
        conn.write.send(&Msg::Done(stats));
        return;
    };
    if !entry.done_appended() {
        entry.emit(Msg::Done(stats));
    }
    // Ack drain: the journal empties as ACK_OUTs arrive; once DONE is
    // acked the session has nothing left to deliver and retires. A
    // disconnect here parks — the tail is replayed on resume.
    loop {
        if entry.delivered() {
            conn.shared.registry.remove(entry.id);
            return;
        }
        if conn.write.is_broken() {
            park(conn, generation, false);
            return;
        }
        match conn.tick(true) {
            None => {}
            Some(Ctl::Msg(_)) => {}
            Some(ctl @ (Ctl::Gone | Ctl::Dead | Ctl::Malformed(_))) => {
                // A FIN right after the final ack is the normal end.
                if entry.delivered() {
                    conn.shared.registry.remove(entry.id);
                    return;
                }
                park(conn, generation, matches!(ctl, Ctl::Dead));
                return;
            }
        }
    }
}

/// Waits out the retired session and folds its result into the fleet
/// counters exactly once (connection threads and the expiry reaper can
/// race for a resumable session).
fn finalize(conn: &Conn, handle: &SessionHandle, priority: Priority) -> DoneStats {
    let result = handle.wait();
    let merge = conn.entry.as_ref().is_none_or(|e| e.claim_wait());
    if merge {
        merge_result(&conn.shared, priority, &result);
    }
    done_stats(&result)
}
