//! Server-side session journaling and resume.
//!
//! A session opened with the resume flag survives its connection. The
//! server journals every output message (packets, frames, DONE) as
//! pre-encoded wire bytes in a bounded, pool-backed [`OutputJournal`];
//! the client acknowledges receipt cumulatively (ACK_OUT) and acked
//! entries are recycled to the global [`BufferPool`]. When the
//! connection dies — EOF, reset, timeout, or a corrupted message — the
//! session *parks* instead of cancelling: the codec keeps running, new
//! outputs keep accumulating in the journal, and a client that
//! reconnects with `RESUME(session_id, outputs_received)` gets the
//! unacked tail replayed before the live stream continues. Output seen
//! by the client is therefore byte-identical to an uninterrupted run:
//! every journal entry is delivered exactly once, in order, regardless
//! of how many times the wire failed in between.
//!
//! Bounds: the journal holds at most `cap` unacked entries. If a
//! client falls further behind than that (or never acks), the oldest
//! entries are recycled and the session becomes non-resumable — a
//! later RESUME is refused rather than silently skipping output. A
//! parked session that nobody resumes within the server's resume
//! window is reaped by the accept loop: cancelled, drained, recycled.

use crate::server::WriteHalf;
use crate::wire::{self, Msg, HEADER_LEN, TRAILER_LEN};
use hdvb_core::Priority;
use hdvb_frame::BufferPool;
use hdvb_serve::SessionHandle;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Bounded FIFO of encoded output messages awaiting acknowledgement.
pub(crate) struct OutputJournal {
    entries: VecDeque<Vec<u8>>,
    /// Journal sequence of `entries.front()` — equivalently, how many
    /// entries have been dropped (acked or overflowed) so far.
    base: u64,
    /// Total entries ever appended; the next entry's sequence.
    next: u64,
    cap: usize,
    /// An unacked entry was evicted; the session can no longer honour
    /// an arbitrary RESUME.
    overflowed: bool,
}

impl OutputJournal {
    fn new(cap: usize) -> OutputJournal {
        OutputJournal {
            entries: VecDeque::new(),
            base: 0,
            next: 0,
            cap: cap.max(1),
            overflowed: false,
        }
    }

    fn append(&mut self, bytes: Vec<u8>) {
        self.entries.push_back(bytes);
        self.next += 1;
        while self.entries.len() > self.cap {
            if let Some(old) = self.entries.pop_front() {
                BufferPool::global().put(old);
            }
            self.base += 1;
            self.overflowed = true;
        }
    }

    /// Acknowledges entries below `n`, recycling their buffers.
    fn ack(&mut self, n: u64) {
        let n = n.min(self.next);
        while self.base < n {
            if let Some(old) = self.entries.pop_front() {
                BufferPool::global().put(old);
            }
            self.base += 1;
        }
    }

    /// True when every appended entry has been acked.
    fn fully_acked(&self) -> bool {
        self.entries.is_empty()
    }

    /// The unacked tail starting at journal sequence `from`, or `None`
    /// when `from` is outside the journal (overflowed past it, or
    /// claims entries never appended).
    fn replay_from(&self, from: u64) -> Option<impl Iterator<Item = &Vec<u8>>> {
        if from < self.base || from > self.next {
            return None;
        }
        Some(self.entries.iter().skip((from - self.base) as usize))
    }

    fn recycle_all(&mut self) {
        for old in self.entries.drain(..) {
            BufferPool::global().put(old);
        }
        self.base = self.next;
    }
}

/// Everything about a resumable session that the attached connection
/// (and the sink, and the reaper) mutate under one lock.
pub(crate) struct EntryState {
    pub(crate) journal: OutputJournal,
    /// The currently attached connection's write half, if any.
    pub(crate) write: Option<Arc<WriteHalf>>,
    /// Bumped on every attach; a connection thread only parks the
    /// session if its generation is still current, so a takeover by a
    /// newer connection is never clobbered by the old thread's exit.
    pub(crate) generation: u64,
    /// Inputs consumed so far (drives client replay-buffer trimming).
    pub(crate) inputs_received: u64,
    /// FLUSH has been accepted.
    pub(crate) flushed: bool,
    /// DONE has been appended to the journal.
    pub(crate) done_appended: bool,
    /// The session result has been folded into the fleet stats.
    pub(crate) waited: bool,
    /// When the session parked (no connection attached).
    parked_at: Option<Instant>,
}

/// Why an attach (RESUME) was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AttachError {
    /// The previous connection still looks alive; the client should
    /// back off and retry once the server notices the old socket died.
    Live,
    /// The resume point fell out of the journal (overflow) or claims
    /// outputs that were never sent — unrecoverable.
    OutOfRange,
}

/// One resumable session in the registry.
pub(crate) struct SessionEntry {
    pub(crate) id: u32,
    pub(crate) priority: Priority,
    /// Set immediately after `Server::open_with` returns. The sink
    /// closure needs the entry before the handle exists, hence the
    /// late initialisation; the sink only runs after the first submit,
    /// which is after `set_handle`.
    handle: OnceLock<SessionHandle>,
    pub(crate) state: Mutex<EntryState>,
}

fn lock(entry: &SessionEntry) -> std::sync::MutexGuard<'_, EntryState> {
    entry.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl SessionEntry {
    pub(crate) fn new(
        id: u32,
        priority: Priority,
        journal_cap: usize,
        write: Arc<WriteHalf>,
    ) -> SessionEntry {
        SessionEntry {
            id,
            priority,
            handle: OnceLock::new(),
            state: Mutex::new(EntryState {
                journal: OutputJournal::new(journal_cap),
                write: Some(write),
                generation: 0,
                inputs_received: 0,
                flushed: false,
                done_appended: false,
                waited: false,
                parked_at: None,
            }),
        }
    }

    /// Journals `msg` and sends it to the attached connection (if the
    /// socket still works). The wire seq of a journaled message is its
    /// journal sequence, so a resumed client can sanity-check ordering.
    /// Consumes the message and recycles its buffers.
    pub(crate) fn emit(&self, msg: Msg) {
        let estimate = HEADER_LEN
            + TRAILER_LEN
            + match &msg {
                Msg::Frame(f) => 8 + f.width() * f.height() * 3 / 2,
                Msg::Packet(p) => 5 + p.data.len(),
                _ => 48,
            };
        let mut bytes = BufferPool::global().take(estimate);
        let mut st = lock(self);
        let seq = st.journal.next as u32;
        wire::encode(&msg, seq, &mut bytes);
        if let Some(write) = st.write.clone() {
            if !write.send_raw(&bytes) {
                // The socket died mid-stream; keep journaling. The
                // connection thread will notice `broken` and park.
                st.write = None;
            }
        }
        if matches!(msg, Msg::Done(_)) {
            st.done_appended = true;
        }
        st.journal.append(bytes);
        drop(st);
        wire::recycle_msg(msg);
    }

    /// Installs the serve-layer handle (exactly once, right after
    /// `open_with`).
    pub(crate) fn set_handle(&self, handle: SessionHandle) {
        if self.handle.set(handle).is_err() {
            unreachable!("session handle set twice");
        }
    }

    /// The serve-layer handle. Panics if called before `set_handle`,
    /// which cannot happen outside `open_session`.
    pub(crate) fn handle(&self) -> &SessionHandle {
        self.handle.get().expect("handle installed at open")
    }

    /// Applies a cumulative output ack.
    pub(crate) fn ack_outputs(&self, n: u64) {
        lock(self).journal.ack(n);
    }

    /// Marks FLUSH as accepted (idempotent — duplicate FLUSH after a
    /// resume is harmless).
    pub(crate) fn set_flushed(&self) {
        lock(self).flushed = true;
    }

    /// FLUSH already accepted? A resumed connection skips straight to
    /// the drain phase when true.
    pub(crate) fn is_flushed(&self) -> bool {
        lock(self).flushed
    }

    /// DONE already journaled?
    pub(crate) fn done_appended(&self) -> bool {
        lock(self).done_appended
    }

    /// Claims the right to fold the session result into the fleet
    /// stats. Exactly one caller (connection thread or reaper) gets
    /// `true`.
    pub(crate) fn claim_wait(&self) -> bool {
        let mut st = lock(self);
        if st.waited {
            false
        } else {
            st.waited = true;
            true
        }
    }

    /// Records one consumed input and returns the new total.
    pub(crate) fn input_received(&self) -> u64 {
        let mut st = lock(self);
        st.inputs_received += 1;
        st.inputs_received
    }

    /// Detaches the connection and starts the park clock — but only if
    /// `generation` is still the attached one.
    pub(crate) fn park(&self, generation: u64) -> bool {
        let mut st = lock(self);
        if st.generation != generation {
            return false;
        }
        st.write = None;
        st.parked_at = Some(Instant::now());
        true
    }

    /// Attaches a new connection: validates the resume point, sends
    /// RESUME_OK (so the client's handshake completes before any
    /// replayed output arrives), replays the unacked tail after
    /// `outputs_received`, and returns the generation token plus the
    /// number of replayed messages.
    pub(crate) fn attach(
        &self,
        write: Arc<WriteHalf>,
        outputs_received: u64,
    ) -> Result<(u64, u64), AttachError> {
        let mut st = lock(self);
        if let Some(old) = &st.write {
            if !old.is_broken() {
                return Err(AttachError::Live);
            }
        }
        // Holding the state lock across the replay writes is what
        // serialises replay against the sink: a pump thread emitting a
        // fresh output blocks on this lock until the tail is out, so
        // the client sees journal order exactly.
        let mut replayed = 0u64;
        {
            let tail = st
                .journal
                .replay_from(outputs_received)
                .ok_or(AttachError::OutOfRange)?;
            write.send(&Msg::ResumeOk {
                inputs_received: st.inputs_received,
            });
            for bytes in tail {
                if !write.send_raw(bytes) {
                    break;
                }
                replayed += 1;
            }
        }
        st.generation += 1;
        st.write = Some(write);
        st.parked_at = None;
        Ok((st.generation, replayed))
    }

    /// The park timestamp, if parked.
    pub(crate) fn parked_since(&self) -> Option<Instant> {
        lock(self).parked_at
    }

    /// True once DONE is journaled and every entry is acked — the
    /// session has nothing left to deliver.
    pub(crate) fn delivered(&self) -> bool {
        let st = lock(self);
        st.done_appended && st.journal.fully_acked()
    }

    /// Recycles every journaled buffer (reaping / final teardown).
    pub(crate) fn recycle(&self) {
        lock(self).journal.recycle_all();
    }
}

/// The server's table of resumable sessions.
pub(crate) struct Registry {
    sessions: Mutex<HashMap<u32, Arc<SessionEntry>>>,
}

impl Registry {
    pub(crate) fn new() -> Registry {
        Registry {
            sessions: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn insert(&self, entry: Arc<SessionEntry>) {
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(entry.id, entry);
    }

    pub(crate) fn get(&self, id: u32) -> Option<Arc<SessionEntry>> {
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned()
    }

    pub(crate) fn remove(&self, id: u32) -> Option<Arc<SessionEntry>> {
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id)
    }

    /// Removes and returns every session parked longer than `window`.
    pub(crate) fn expire(&self, window: Duration) -> Vec<Arc<SessionEntry>> {
        let mut sessions = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        let expired: Vec<u32> = sessions
            .values()
            .filter(|e| {
                e.parked_since()
                    .is_some_and(|t| now.duration_since(t) >= window)
            })
            .map(|e| e.id)
            .collect();
        expired
            .into_iter()
            .filter_map(|id| sessions.remove(&id))
            .collect()
    }

    /// Sessions currently in the registry.
    pub(crate) fn len(&self) -> usize {
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_acks_recycle_and_bound_memory() {
        let mut j = OutputJournal::new(4);
        for i in 0..4u8 {
            j.append(vec![i]);
        }
        assert_eq!(j.next, 4);
        assert!(!j.overflowed);
        // Ack 2: base advances, replay from 2 yields entries 2..4.
        j.ack(2);
        let tail: Vec<u8> = j.replay_from(2).expect("in range").map(|b| b[0]).collect();
        assert_eq!(tail, vec![2, 3]);
        // Replay from before the acked base is refused.
        assert!(j.replay_from(1).is_none());
        // Overflow: two more pushes evict unacked entries.
        j.append(vec![4]);
        j.append(vec![5]);
        j.append(vec![6]);
        assert!(j.overflowed);
        assert!(j.replay_from(2).is_none(), "evicted tail is gone");
        assert!(j.replay_from(3).is_some());
        j.ack(7);
        assert!(j.fully_acked());
    }

    #[test]
    fn ack_beyond_appended_is_clamped() {
        let mut j = OutputJournal::new(8);
        j.append(vec![0]);
        j.ack(100);
        assert!(j.fully_acked());
        assert_eq!(j.base, 1, "base never outruns appended entries");
        // Appending after a wild ack still sequences correctly.
        j.append(vec![1]);
        let tail: Vec<u8> = j.replay_from(1).expect("in range").map(|b| b[0]).collect();
        assert_eq!(tail, vec![1]);
    }
}
