//! Incremental, timeout-aware wire message reader.
//!
//! Sockets in the resilience layer run with a short read timeout (the
//! poll quantum) so connection threads can interleave liveness checks,
//! heartbeat replies, and session-completion polling with reads. A
//! plain `read_exact` cannot survive that: a timeout mid-message would
//! throw away the bytes already consumed and desynchronise framing.
//! [`MsgReader`] buffers partial messages across timeouts instead — a
//! timeout with half a header in hand simply reports
//! [`ReadEvent::Idle`] and continues where it left off on the next
//! poll.

use crate::wire::{self, Header, Msg, WireError, HEADER_LEN};
use std::io::{ErrorKind, Read};

/// What one [`MsgReader::poll`] produced.
pub(crate) enum ReadEvent {
    /// A complete, checksum-valid message (with its header seq).
    Msg(Msg, u32),
    /// The read timed out before a full message arrived; any partial
    /// bytes stay buffered for the next poll.
    Idle,
    /// Clean or abrupt connection end (EOF, reset, broken pipe).
    Gone,
    /// The bytes were not a valid message. The reader makes no attempt
    /// to resynchronise: framing is untrustworthy after this, so the
    /// caller must drop the connection.
    Malformed(WireError),
}

/// Reads length-prefixed wire messages from `R`, tolerating read
/// timeouts at any byte boundary.
pub(crate) struct MsgReader<R: Read> {
    inner: R,
    /// Bytes of the in-flight message accumulated so far.
    buf: Vec<u8>,
    /// Target size of `buf` before the next parse step.
    need: usize,
    /// Parsed header, once `buf` held a full one.
    header: Option<Header>,
}

impl<R: Read> MsgReader<R> {
    pub(crate) fn new(inner: R) -> Self {
        MsgReader {
            inner,
            buf: Vec::with_capacity(HEADER_LEN),
            need: HEADER_LEN,
            header: None,
        }
    }

    /// Attempts to complete one message. Never blocks longer than the
    /// underlying stream's read timeout (plus one syscall).
    pub(crate) fn poll(&mut self) -> ReadEvent {
        loop {
            while self.buf.len() < self.need {
                let mut chunk = [0u8; 16 * 1024];
                let want = (self.need - self.buf.len()).min(chunk.len());
                match self.inner.read(&mut chunk[..want]) {
                    Ok(0) => return ReadEvent::Gone,
                    Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                    {
                        return ReadEvent::Idle
                    }
                    Err(_) => return ReadEvent::Gone,
                }
            }
            match self.header {
                None => {
                    let mut h = [0u8; HEADER_LEN];
                    h.copy_from_slice(&self.buf[..HEADER_LEN]);
                    let header = match wire::parse_header(&h) {
                        Ok(header) => header,
                        Err(e) => return ReadEvent::Malformed(e),
                    };
                    let total = wire::frame_len(&header);
                    if total == HEADER_LEN {
                        self.reset();
                        match wire::decode_payload(header.msg_type, &[]) {
                            Ok(m) => return ReadEvent::Msg(m, header.seq),
                            Err(e) => return ReadEvent::Malformed(e),
                        }
                    }
                    self.header = Some(header);
                    self.need = total;
                }
                Some(header) => {
                    let payload_end = HEADER_LEN + header.len as usize;
                    let trailer_ok = wire::check_trailer(
                        &self.buf[HEADER_LEN..payload_end],
                        &self.buf[payload_end..],
                    );
                    let event = match trailer_ok {
                        Err(e) => ReadEvent::Malformed(e),
                        Ok(()) => match wire::decode_payload(
                            header.msg_type,
                            &self.buf[HEADER_LEN..payload_end],
                        ) {
                            Ok(m) => ReadEvent::Msg(m, header.seq),
                            Err(e) => ReadEvent::Malformed(e),
                        },
                    };
                    self.reset();
                    return event;
                }
            }
        }
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.buf.shrink_to(64 * 1024);
        self.need = HEADER_LEN;
        self.header = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdvb_core::{Packet, PacketKind};

    /// A reader that hands out `bytes` in `chunk`-sized slices and
    /// reports a timeout between chunks, mimicking a socket with a
    /// short read deadline.
    struct Trickle {
        bytes: Vec<u8>,
        at: usize,
        chunk: usize,
        timeout_next: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.timeout_next {
                self.timeout_next = false;
                return Err(std::io::Error::from(ErrorKind::WouldBlock));
            }
            self.timeout_next = true;
            let n = self.chunk.min(out.len()).min(self.bytes.len() - self.at);
            if n == 0 {
                return Ok(0);
            }
            out[..n].copy_from_slice(&self.bytes[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    #[test]
    fn partial_reads_and_timeouts_never_desync_framing() {
        let pkt = Packet {
            kind: PacketKind::I,
            display_index: 5,
            data: (0..200u8).collect(),
        };
        let mut bytes = Vec::new();
        wire::encode(&Msg::Packet(pkt), 1, &mut bytes);
        wire::encode(&Msg::Flush, 2, &mut bytes);
        wire::encode(&Msg::Ping, 3, &mut bytes);
        for chunk in [1, 3, 7, 16, 64] {
            let mut reader = MsgReader::new(Trickle {
                bytes: bytes.clone(),
                at: 0,
                chunk,
                timeout_next: false,
            });
            let mut got = Vec::new();
            let mut idles = 0usize;
            loop {
                match reader.poll() {
                    ReadEvent::Msg(m, seq) => got.push((m.msg_type(), seq)),
                    ReadEvent::Idle => idles += 1,
                    ReadEvent::Gone => break,
                    ReadEvent::Malformed(e) => panic!("chunk {chunk}: {e}"),
                }
            }
            use crate::wire::MsgType;
            assert_eq!(
                got,
                vec![
                    (MsgType::Packet, 1),
                    (MsgType::Flush, 2),
                    (MsgType::Ping, 3)
                ],
                "chunk {chunk}"
            );
            assert!(idles > 0, "trickle reader must have reported idle");
        }
    }

    #[test]
    fn corrupt_payload_is_malformed_not_desync() {
        let mut bytes = Vec::new();
        wire::encode(
            &Msg::OpenOk {
                session_id: 9,
                heartbeat_ms: 100,
            },
            0,
            &mut bytes,
        );
        bytes[HEADER_LEN + 1] ^= 0x40;
        let mut reader = MsgReader::new(&bytes[..]);
        assert!(matches!(
            reader.poll(),
            ReadEvent::Malformed(WireError::BadPayloadChecksum { .. })
        ));
    }
}
