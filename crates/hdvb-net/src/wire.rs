//! The versioned, length-prefixed binary wire protocol.
//!
//! Every message is a 16-byte header followed by a payload and — when
//! the payload is non-empty — a 4-byte payload checksum trailer:
//!
//! ```text
//! offset  size  field
//!      0     2  magic "HV"
//!      2     1  protocol version (2)
//!      3     1  message type
//!      4     4  payload length, u32 LE (capped at 64 MiB)
//!      8     4  sender sequence number, u32 LE (diagnostic)
//!     12     4  FNV-1a-32 checksum over bytes 0..12, u32 LE
//!     16   len  payload
//!  16+len     4  FNV-1a-32 checksum over the payload, u32 LE
//!               (present only when len > 0)
//! ```
//!
//! All integers are little-endian. The header checksum catches
//! desynchronised framing (a reader that lost its place decodes garbage
//! lengths) before any length is trusted; the payload trailer gives
//! end-to-end integrity for the body, so a single flipped bit anywhere
//! in a message — header or payload — is detected by the receiver
//! (FNV-1a absorbs each byte through a bijective step, so any
//! single-byte change is guaranteed to change the hash). That is what
//! lets the chaos layer's `garble` fault be injected anywhere and still
//! keep sessions bit-identical: a corrupted message is dropped with the
//! connection and replayed from the resume journal, never consumed.
//!
//! Decoding never panics. Every malformed input — wrong magic, unknown
//! version or type, checksum mismatch, oversized or truncated frame,
//! or a payload whose fields do not parse — returns a typed
//! [`WireError`]. This is enforced by golden vectors in
//! `tests/corpus/wire/` and by mutation fuzzing in
//! `tests/wire_robustness.rs`.

use hdvb_core::{CodecId, Packet, PacketKind, Priority, SessionKind, SessionSpec};
use hdvb_frame::{BufferPool, Frame, FramePool, Resolution};
use std::fmt;

/// Returns a sent message's payload buffers to the global pools. The
/// wire owns pixel and bitstream bytes only while they are being
/// serialised; once encoded, the backing storage goes back into
/// circulation so steady-state network traffic reuses the same frames
/// and buffers the codecs do.
pub(crate) fn recycle_msg(msg: Msg) {
    match msg {
        Msg::Frame(f) => FramePool::global().put(f),
        Msg::Packet(p) => BufferPool::global().put(p.data),
        _ => {}
    }
}

/// First two bytes of every message.
pub const MAGIC: [u8; 2] = *b"HV";
/// Current protocol version.
pub const VERSION: u8 = 2;
/// Header size in bytes.
pub const HEADER_LEN: usize = 16;
/// Payload checksum trailer size (present when the payload is
/// non-empty).
pub const TRAILER_LEN: usize = 4;
/// Largest accepted payload (64 MiB — an 8K I420 frame is ~48 MiB).
pub const MAX_PAYLOAD: u32 = 1 << 26;
/// Largest accepted frame dimension on the wire.
pub const MAX_DIMENSION: u32 = 8192;

/// Message type byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgType {
    /// Version/role handshake, first message in both directions.
    Hello = 1,
    /// Client requests a session (`SessionSpec` + `Priority`).
    Open = 2,
    /// Server admitted the session.
    OpenOk = 3,
    /// One raw I420 frame (encode/transcode input, decode output).
    Frame = 4,
    /// One coded packet (decode/transcode input, encode output).
    Packet = 5,
    /// End of input: flush lookahead and retire the session.
    Flush = 6,
    /// Server's terminal summary for a flushed session.
    Done = 7,
    /// Client abandons the session (server cancels it).
    Close = 8,
    /// Typed failure; terminal for the session.
    Error = 9,
    /// Heartbeat probe; either side may send it at any time.
    Ping = 10,
    /// Heartbeat reply to a PING.
    Pong = 11,
    /// Client re-attaches to a parked session after a disconnect.
    Resume = 12,
    /// Server accepted a RESUME; journal replay follows.
    ResumeOk = 13,
    /// Client's cumulative count of outputs received (journal trim).
    AckOut = 14,
    /// Server's cumulative count of inputs received (replay-buffer trim).
    AckIn = 15,
}

impl MsgType {
    pub(crate) fn from_u8(b: u8) -> Option<MsgType> {
        Some(match b {
            1 => MsgType::Hello,
            2 => MsgType::Open,
            3 => MsgType::OpenOk,
            4 => MsgType::Frame,
            5 => MsgType::Packet,
            6 => MsgType::Flush,
            7 => MsgType::Done,
            8 => MsgType::Close,
            9 => MsgType::Error,
            10 => MsgType::Ping,
            11 => MsgType::Pong,
            12 => MsgType::Resume,
            13 => MsgType::ResumeOk,
            14 => MsgType::AckOut,
            15 => MsgType::AckIn,
            _ => return None,
        })
    }

    /// True for the heartbeat/acknowledgement messages that carry no
    /// session data. The fault injector skips these when counting
    /// messages so that fault positions stay deterministic regardless
    /// of heartbeat timing.
    pub fn is_control(self) -> bool {
        matches!(
            self,
            MsgType::Ping | MsgType::Pong | MsgType::AckOut | MsgType::AckIn
        )
    }
}

/// Error codes carried by [`Msg::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Admission control refused the OPEN (fleet p99 over threshold).
    Rejected = 1,
    /// The per-session token bucket refused an input.
    RateLimited = 2,
    /// Request invalid for the session state (e.g. frame to a decoder).
    BadRequest = 3,
    /// The codec failed (invalid options, corrupt stream, ...).
    Codec = 4,
    /// The peer violated the wire protocol.
    Protocol = 5,
    /// Server-side failure unrelated to the request.
    Internal = 6,
    /// A RESUME named a session the server no longer holds (expired,
    /// journal overflow, or never existed).
    NoSession = 7,
}

impl ErrorCode {
    fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Rejected,
            2 => ErrorCode::RateLimited,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::Codec,
            5 => ErrorCode::Protocol,
            6 => ErrorCode::Internal,
            7 => ErrorCode::NoSession,
            _ => return None,
        })
    }

    /// Short name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Rejected => "rejected",
            ErrorCode::RateLimited => "rate-limited",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Codec => "codec",
            ErrorCode::Protocol => "protocol",
            ErrorCode::Internal => "internal",
            ErrorCode::NoSession => "no-session",
        }
    }
}

/// Why a byte sequence failed to decode. Every variant is reachable
/// from a malformed input; none of them panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The first two bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown message type byte.
    UnknownType(u8),
    /// Header checksum mismatch (desynchronised or corrupted framing).
    BadChecksum {
        /// Checksum recomputed over the received header.
        expected: u32,
        /// Checksum carried by the received header.
        found: u32,
    },
    /// Payload checksum trailer mismatch (bytes corrupted in flight).
    BadPayloadChecksum {
        /// Checksum recomputed over the received payload.
        expected: u32,
        /// Checksum carried by the trailer.
        found: u32,
    },
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Declared length.
        len: u32,
    },
    /// The input ended before the declared frame did.
    Truncated {
        /// Bytes the frame needs.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The payload's fields do not parse for its message type.
    BadPayload {
        /// Message type being decoded.
        msg: &'static str,
        /// What was wrong.
        detail: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownType(t) => write!(f, "unknown message type {t}"),
            WireError::BadChecksum { expected, found } => {
                write!(
                    f,
                    "header checksum {found:#010x}, expected {expected:#010x}"
                )
            }
            WireError::BadPayloadChecksum { expected, found } => {
                write!(
                    f,
                    "payload checksum {found:#010x}, expected {expected:#010x}"
                )
            }
            WireError::Oversized { len } => {
                write!(f, "payload length {len} exceeds cap {MAX_PAYLOAD}")
            }
            WireError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            WireError::BadPayload { msg, detail } => write!(f, "bad {msg} payload: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Terminal statistics for a flushed session, carried by [`Msg::Done`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DoneStats {
    /// Inputs whose processing completed.
    pub completed: u64,
    /// Inputs discarded unprocessed.
    pub discarded: u64,
    /// Corrupt packets dropped by a resilient session.
    pub corrupt_dropped: u64,
    /// Median admission-to-completion latency, ns.
    pub p50_ns: u64,
    /// 99th-percentile latency, ns.
    pub p99_ns: u64,
}

/// A decoded protocol message.
#[derive(Debug)]
pub enum Msg {
    /// Handshake. `server` is false from the client, true in the reply.
    Hello {
        /// True when sent by the server side.
        server: bool,
    },
    /// Session request.
    Open {
        /// What to run.
        spec: SessionSpec,
        /// Scheduling class.
        priority: Priority,
        /// Client asks the server to journal outputs so the session can
        /// be resumed after a disconnect.
        resume: bool,
    },
    /// Session admitted.
    OpenOk {
        /// Server-assigned session id.
        session_id: u32,
        /// Heartbeat interval the server enforces, in milliseconds.
        /// Zero disables liveness deadlines for this session.
        heartbeat_ms: u32,
    },
    /// One raw frame.
    Frame(Frame),
    /// One coded packet.
    Packet(Packet),
    /// End of input.
    Flush,
    /// Terminal session summary.
    Done(DoneStats),
    /// Client-initiated abandon.
    Close,
    /// Typed failure.
    Error {
        /// What failed.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Heartbeat probe.
    Ping,
    /// Heartbeat reply.
    Pong,
    /// Re-attach to a parked session.
    Resume {
        /// The id handed out by OPEN_OK.
        session_id: u32,
        /// Outputs (journal entries) the client already holds; the
        /// server replays everything after this point.
        outputs_received: u64,
    },
    /// RESUME accepted.
    ResumeOk {
        /// Inputs the server has already consumed; the client resends
        /// everything after this point.
        inputs_received: u64,
    },
    /// Client → server: cumulative outputs received.
    AckOut {
        /// Count of journal entries the client now holds.
        outputs_received: u64,
    },
    /// Server → client: cumulative inputs received.
    AckIn {
        /// Count of inputs the server has consumed.
        inputs_received: u64,
    },
}

impl Msg {
    /// The message's wire type byte.
    pub fn msg_type(&self) -> MsgType {
        match self {
            Msg::Hello { .. } => MsgType::Hello,
            Msg::Open { .. } => MsgType::Open,
            Msg::OpenOk { .. } => MsgType::OpenOk,
            Msg::Frame(_) => MsgType::Frame,
            Msg::Packet(_) => MsgType::Packet,
            Msg::Flush => MsgType::Flush,
            Msg::Done(_) => MsgType::Done,
            Msg::Close => MsgType::Close,
            Msg::Error { .. } => MsgType::Error,
            Msg::Ping => MsgType::Ping,
            Msg::Pong => MsgType::Pong,
            Msg::Resume { .. } => MsgType::Resume,
            Msg::ResumeOk { .. } => MsgType::ResumeOk,
            Msg::AckOut { .. } => MsgType::AckOut,
            Msg::AckIn { .. } => MsgType::AckIn,
        }
    }
}

/// FNV-1a 32-bit over `bytes` (the header and payload checksums).
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// A parsed message header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Message type.
    pub msg_type: MsgType,
    /// Payload length in bytes.
    pub len: u32,
    /// Sender sequence number.
    pub seq: u32,
}

/// Total on-wire size of the message this header announces, including
/// the payload trailer when one is present.
pub fn frame_len(header: &Header) -> usize {
    let len = header.len as usize;
    HEADER_LEN + len + if len > 0 { TRAILER_LEN } else { 0 }
}

/// Validates a payload against its 4-byte trailer.
///
/// # Errors
///
/// [`WireError::BadPayloadChecksum`] on mismatch.
pub fn check_trailer(payload: &[u8], trailer: &[u8]) -> Result<(), WireError> {
    let expected = fnv1a(payload);
    let found = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    if expected != found {
        return Err(WireError::BadPayloadChecksum { expected, found });
    }
    Ok(())
}

/// Serialises a header.
pub fn encode_header(msg_type: MsgType, len: u32, seq: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..2].copy_from_slice(&MAGIC);
    h[2] = VERSION;
    h[3] = msg_type as u8;
    h[4..8].copy_from_slice(&len.to_le_bytes());
    h[8..12].copy_from_slice(&seq.to_le_bytes());
    let sum = fnv1a(&h[0..12]);
    h[12..16].copy_from_slice(&sum.to_le_bytes());
    h
}

/// Parses and validates a header.
///
/// # Errors
///
/// [`WireError`] on bad magic, version, type, checksum, or an oversized
/// declared length — checked in that order, so a desynchronised reader
/// fails fast on magic before trusting anything else.
pub fn parse_header(h: &[u8; HEADER_LEN]) -> Result<Header, WireError> {
    if h[0..2] != MAGIC {
        return Err(WireError::BadMagic([h[0], h[1]]));
    }
    if h[2] != VERSION {
        return Err(WireError::BadVersion(h[2]));
    }
    let expected = fnv1a(&h[0..12]);
    let found = u32::from_le_bytes([h[12], h[13], h[14], h[15]]);
    if expected != found {
        return Err(WireError::BadChecksum { expected, found });
    }
    let msg_type = MsgType::from_u8(h[3]).ok_or(WireError::UnknownType(h[3]))?;
    let len = u32::from_le_bytes([h[4], h[5], h[6], h[7]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized { len });
    }
    let seq = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
    Ok(Header { msg_type, len, seq })
}

// Codec bytes match the HVB1 container's mapping so tooling that knows
// one knows both.
fn codec_byte(c: CodecId) -> u8 {
    match c {
        CodecId::Mpeg2 => 2,
        CodecId::Mpeg4 => 4,
        CodecId::H264 => 64,
    }
}

fn codec_from_byte(b: u8) -> Option<CodecId> {
    match b {
        2 => Some(CodecId::Mpeg2),
        4 => Some(CodecId::Mpeg4),
        64 => Some(CodecId::H264),
        _ => None,
    }
}

fn kind_byte(k: PacketKind) -> u8 {
    match k {
        PacketKind::I => b'I',
        PacketKind::P => b'P',
        PacketKind::B => b'B',
    }
}

fn kind_from_byte(b: u8) -> Option<PacketKind> {
    match b {
        b'I' => Some(PacketKind::I),
        b'P' => Some(PacketKind::P),
        b'B' => Some(PacketKind::B),
        _ => None,
    }
}

/// Appends `msg` (header + payload + payload trailer) to `out`.
pub fn encode(msg: &Msg, seq: u32, out: &mut Vec<u8>) {
    let start = out.len();
    // Reserve header space; patched once the payload length is known.
    out.extend_from_slice(&[0u8; HEADER_LEN]);
    match msg {
        Msg::Hello { server } => out.push(u8::from(*server)),
        Msg::Open {
            spec,
            priority,
            resume,
        } => {
            out.push(spec.kind.as_u8());
            out.push(codec_byte(spec.codec));
            out.push(codec_byte(spec.source));
            out.push(priority.as_u8());
            out.push(u8::from(spec.resilient));
            out.push(spec.b_frames);
            out.extend_from_slice(&spec.qscale.to_le_bytes());
            out.extend_from_slice(&(spec.resolution.width() as u32).to_le_bytes());
            out.extend_from_slice(&(spec.resolution.height() as u32).to_le_bytes());
            out.push(u8::from(*resume));
        }
        Msg::OpenOk {
            session_id,
            heartbeat_ms,
        } => {
            out.extend_from_slice(&session_id.to_le_bytes());
            out.extend_from_slice(&heartbeat_ms.to_le_bytes());
        }
        Msg::Frame(frame) => {
            out.extend_from_slice(&(frame.width() as u32).to_le_bytes());
            out.extend_from_slice(&(frame.height() as u32).to_le_bytes());
            out.extend_from_slice(frame.y().data());
            out.extend_from_slice(frame.cb().data());
            out.extend_from_slice(frame.cr().data());
        }
        Msg::Packet(p) => {
            out.push(kind_byte(p.kind));
            out.extend_from_slice(&p.display_index.to_le_bytes());
            out.extend_from_slice(&p.data);
        }
        Msg::Flush | Msg::Close | Msg::Ping | Msg::Pong => {}
        Msg::Done(s) => {
            out.extend_from_slice(&s.completed.to_le_bytes());
            out.extend_from_slice(&s.discarded.to_le_bytes());
            out.extend_from_slice(&s.corrupt_dropped.to_le_bytes());
            out.extend_from_slice(&s.p50_ns.to_le_bytes());
            out.extend_from_slice(&s.p99_ns.to_le_bytes());
        }
        Msg::Error { code, detail } => {
            out.push(*code as u8);
            out.extend_from_slice(detail.as_bytes());
        }
        Msg::Resume {
            session_id,
            outputs_received,
        } => {
            out.extend_from_slice(&session_id.to_le_bytes());
            out.extend_from_slice(&outputs_received.to_le_bytes());
        }
        Msg::ResumeOk { inputs_received } => {
            out.extend_from_slice(&inputs_received.to_le_bytes());
        }
        Msg::AckOut { outputs_received } => {
            out.extend_from_slice(&outputs_received.to_le_bytes());
        }
        Msg::AckIn { inputs_received } => {
            out.extend_from_slice(&inputs_received.to_le_bytes());
        }
    }
    let len = (out.len() - start - HEADER_LEN) as u32;
    let header = encode_header(msg.msg_type(), len, seq);
    out[start..start + HEADER_LEN].copy_from_slice(&header);
    if len > 0 {
        let sum = fnv1a(&out[start + HEADER_LEN..]);
        out.extend_from_slice(&sum.to_le_bytes());
    }
}

fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Decodes one payload for a validated header. The caller has already
/// verified the payload trailer (see [`check_trailer`]).
///
/// # Errors
///
/// [`WireError::BadPayload`] when the bytes do not form a valid message
/// of `msg_type` (wrong size, out-of-range field, invalid UTF-8, ...).
pub fn decode_payload(msg_type: MsgType, payload: &[u8]) -> Result<Msg, WireError> {
    let bad = |detail: &'static str| WireError::BadPayload {
        msg: match msg_type {
            MsgType::Hello => "hello",
            MsgType::Open => "open",
            MsgType::OpenOk => "open-ok",
            MsgType::Frame => "frame",
            MsgType::Packet => "packet",
            MsgType::Flush => "flush",
            MsgType::Done => "done",
            MsgType::Close => "close",
            MsgType::Error => "error",
            MsgType::Ping => "ping",
            MsgType::Pong => "pong",
            MsgType::Resume => "resume",
            MsgType::ResumeOk => "resume-ok",
            MsgType::AckOut => "ack-out",
            MsgType::AckIn => "ack-in",
        },
        detail,
    };
    match msg_type {
        MsgType::Hello => match payload {
            [role] if *role <= 1 => Ok(Msg::Hello { server: *role == 1 }),
            [_] => Err(bad("role byte out of range")),
            _ => Err(bad("expected exactly one role byte")),
        },
        MsgType::Open => {
            if payload.len() != 17 {
                return Err(bad("expected 17 bytes"));
            }
            let kind = SessionKind::from_u8(payload[0]).ok_or_else(|| bad("unknown kind"))?;
            let codec = codec_from_byte(payload[1]).ok_or_else(|| bad("unknown codec"))?;
            let source = codec_from_byte(payload[2]).ok_or_else(|| bad("unknown source codec"))?;
            let priority = Priority::from_u8(payload[3]).ok_or_else(|| bad("unknown priority"))?;
            if payload[4] > 1 {
                return Err(bad("resilient flag out of range"));
            }
            if payload[16] > 1 {
                return Err(bad("resume flag out of range"));
            }
            let (w, h) = (le_u32(&payload[8..12]), le_u32(&payload[12..16]));
            let resolution = parse_resolution(w, h).ok_or_else(|| bad("invalid resolution"))?;
            Ok(Msg::Open {
                spec: SessionSpec {
                    kind,
                    codec,
                    source,
                    resolution,
                    qscale: le_u16(&payload[6..8]).max(1),
                    b_frames: payload[5],
                    resilient: payload[4] == 1,
                },
                priority,
                resume: payload[16] == 1,
            })
        }
        MsgType::OpenOk => match payload.len() {
            8 => Ok(Msg::OpenOk {
                session_id: le_u32(&payload[0..4]),
                heartbeat_ms: le_u32(&payload[4..8]),
            }),
            _ => Err(bad("expected 8 bytes")),
        },
        MsgType::Frame => {
            if payload.len() < 8 {
                return Err(bad("missing dimensions"));
            }
            let (w, h) = (le_u32(&payload[0..4]), le_u32(&payload[4..8]));
            let res = parse_resolution(w, h).ok_or_else(|| bad("invalid dimensions"))?;
            let (w, h) = (res.width(), res.height());
            let (luma, chroma) = (w * h, (w / 2) * (h / 2));
            if payload.len() != 8 + luma + 2 * chroma {
                return Err(bad("payload size does not match dimensions"));
            }
            let mut frame = FramePool::global().take(w, h);
            let body = &payload[8..];
            frame.y_mut().data_mut().copy_from_slice(&body[..luma]);
            frame
                .cb_mut()
                .data_mut()
                .copy_from_slice(&body[luma..luma + chroma]);
            frame
                .cr_mut()
                .data_mut()
                .copy_from_slice(&body[luma + chroma..]);
            Ok(Msg::Frame(frame))
        }
        MsgType::Packet => {
            if payload.len() < 5 {
                return Err(bad("missing kind/index"));
            }
            let kind = kind_from_byte(payload[0]).ok_or_else(|| bad("unknown picture kind"))?;
            let mut data = BufferPool::global().take(payload.len() - 5);
            data.extend_from_slice(&payload[5..]);
            Ok(Msg::Packet(Packet {
                kind,
                display_index: le_u32(&payload[1..5]),
                data,
            }))
        }
        MsgType::Flush => match payload.len() {
            0 => Ok(Msg::Flush),
            _ => Err(bad("expected empty payload")),
        },
        MsgType::Done => {
            if payload.len() != 40 {
                return Err(bad("expected 40 bytes"));
            }
            Ok(Msg::Done(DoneStats {
                completed: le_u64(&payload[0..8]),
                discarded: le_u64(&payload[8..16]),
                corrupt_dropped: le_u64(&payload[16..24]),
                p50_ns: le_u64(&payload[24..32]),
                p99_ns: le_u64(&payload[32..40]),
            }))
        }
        MsgType::Close => match payload.len() {
            0 => Ok(Msg::Close),
            _ => Err(bad("expected empty payload")),
        },
        MsgType::Error => {
            let (&code, detail) = payload.split_first().ok_or_else(|| bad("missing code"))?;
            let code = ErrorCode::from_u8(code).ok_or_else(|| bad("unknown error code"))?;
            let detail = std::str::from_utf8(detail)
                .map_err(|_| bad("detail is not UTF-8"))?
                .to_string();
            Ok(Msg::Error { code, detail })
        }
        MsgType::Ping => match payload.len() {
            0 => Ok(Msg::Ping),
            _ => Err(bad("expected empty payload")),
        },
        MsgType::Pong => match payload.len() {
            0 => Ok(Msg::Pong),
            _ => Err(bad("expected empty payload")),
        },
        MsgType::Resume => match payload.len() {
            12 => Ok(Msg::Resume {
                session_id: le_u32(&payload[0..4]),
                outputs_received: le_u64(&payload[4..12]),
            }),
            _ => Err(bad("expected 12 bytes")),
        },
        MsgType::ResumeOk => match payload.len() {
            8 => Ok(Msg::ResumeOk {
                inputs_received: le_u64(payload),
            }),
            _ => Err(bad("expected 8 bytes")),
        },
        MsgType::AckOut => match payload.len() {
            8 => Ok(Msg::AckOut {
                outputs_received: le_u64(payload),
            }),
            _ => Err(bad("expected 8 bytes")),
        },
        MsgType::AckIn => match payload.len() {
            8 => Ok(Msg::AckIn {
                inputs_received: le_u64(payload),
            }),
            _ => Err(bad("expected 8 bytes")),
        },
    }
}

fn parse_resolution(w: u32, h: u32) -> Option<Resolution> {
    let even = |v: u32| v > 0 && v <= MAX_DIMENSION && v.is_multiple_of(2);
    if even(w) && even(h) {
        Some(Resolution::new(w, h))
    } else {
        None
    }
}

/// Decodes one complete message from the front of `buf`, returning it
/// with its sequence number and the bytes consumed (header + payload +
/// trailer). This is the slice-oriented entry the fuzz harness drives;
/// socket readers use [`MsgReader`](crate::reader) instead.
///
/// # Errors
///
/// Any [`WireError`]; a partial frame is [`WireError::Truncated`].
pub fn decode(buf: &[u8]) -> Result<(Msg, u32, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            need: HEADER_LEN,
            have: buf.len(),
        });
    }
    let mut h = [0u8; HEADER_LEN];
    h.copy_from_slice(&buf[..HEADER_LEN]);
    let header = parse_header(&h)?;
    let total = frame_len(&header);
    if buf.len() < total {
        return Err(WireError::Truncated {
            need: total,
            have: buf.len(),
        });
    }
    let payload_end = HEADER_LEN + header.len as usize;
    if header.len > 0 {
        check_trailer(&buf[HEADER_LEN..payload_end], &buf[payload_end..total])?;
    }
    let msg = decode_payload(header.msg_type, &buf[HEADER_LEN..payload_end])?;
    Ok((msg, header.seq, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &Msg) -> Msg {
        let mut buf = Vec::new();
        encode(msg, 7, &mut buf);
        let (decoded, seq, used) = decode(&buf).expect("round trip");
        assert_eq!(seq, 7);
        assert_eq!(used, buf.len());
        decoded
    }

    #[test]
    fn every_message_type_round_trips() {
        match round_trip(&Msg::Hello { server: true }) {
            Msg::Hello { server: true } => {}
            other => panic!("{other:?}"),
        }
        let spec = SessionSpec::transcode(CodecId::Mpeg2, CodecId::H264, Resolution::new(96, 80))
            .with_qscale(9)
            .with_b_frames(1);
        match round_trip(&Msg::Open {
            spec,
            priority: Priority::Live,
            resume: true,
        }) {
            Msg::Open {
                spec: s,
                priority: Priority::Live,
                resume: true,
            } => assert_eq!(s, spec),
            other => panic!("{other:?}"),
        }
        match round_trip(&Msg::OpenOk {
            session_id: 42,
            heartbeat_ms: 1_000,
        }) {
            Msg::OpenOk {
                session_id: 42,
                heartbeat_ms: 1_000,
            } => {}
            other => panic!("{other:?}"),
        }
        let mut frame = Frame::new(32, 16);
        for (i, b) in frame.y_mut().data_mut().iter_mut().enumerate() {
            *b = i as u8;
        }
        match round_trip(&Msg::Frame(frame.clone())) {
            Msg::Frame(f) => assert_eq!(f, frame),
            other => panic!("{other:?}"),
        }
        let pkt = Packet {
            kind: PacketKind::B,
            display_index: 3,
            data: vec![1, 2, 3, 4],
        };
        match round_trip(&Msg::Packet(pkt.clone())) {
            Msg::Packet(p) => {
                assert_eq!(p.data, pkt.data);
                assert_eq!(p.display_index, 3);
                assert_eq!(p.kind, PacketKind::B);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(round_trip(&Msg::Flush), Msg::Flush));
        assert!(matches!(round_trip(&Msg::Close), Msg::Close));
        assert!(matches!(round_trip(&Msg::Ping), Msg::Ping));
        assert!(matches!(round_trip(&Msg::Pong), Msg::Pong));
        let stats = DoneStats {
            completed: 10,
            discarded: 1,
            corrupt_dropped: 0,
            p50_ns: 1_000,
            p99_ns: 9_000,
        };
        match round_trip(&Msg::Done(stats)) {
            Msg::Done(s) => assert_eq!(s, stats),
            other => panic!("{other:?}"),
        }
        match round_trip(&Msg::Error {
            code: ErrorCode::Rejected,
            detail: "fleet p99 over threshold".into(),
        }) {
            Msg::Error {
                code: ErrorCode::Rejected,
                detail,
            } => assert!(detail.contains("p99")),
            other => panic!("{other:?}"),
        }
        match round_trip(&Msg::Resume {
            session_id: 9,
            outputs_received: 1 << 40,
        }) {
            Msg::Resume {
                session_id: 9,
                outputs_received,
            } => assert_eq!(outputs_received, 1 << 40),
            other => panic!("{other:?}"),
        }
        match round_trip(&Msg::ResumeOk {
            inputs_received: 77,
        }) {
            Msg::ResumeOk {
                inputs_received: 77,
            } => {}
            other => panic!("{other:?}"),
        }
        match round_trip(&Msg::AckOut {
            outputs_received: 5,
        }) {
            Msg::AckOut {
                outputs_received: 5,
            } => {}
            other => panic!("{other:?}"),
        }
        match round_trip(&Msg::AckIn { inputs_received: 6 }) {
            Msg::AckIn { inputs_received: 6 } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_headers_return_typed_errors() {
        let mut buf = Vec::new();
        encode(&Msg::Flush, 0, &mut buf);

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(decode(&bad), Err(WireError::BadMagic(_))));

        let mut bad = buf.clone();
        bad[2] = 9;
        assert!(matches!(decode(&bad), Err(WireError::BadVersion(9))));

        // An unknown type is still checksummed, so flip the type byte
        // and re-stamp the checksum to isolate the type check.
        let mut bad = buf.clone();
        bad[3] = 200;
        let sum = fnv1a(&bad[0..12]);
        bad[12..16].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode(&bad), Err(WireError::UnknownType(200))));

        let mut bad = buf.clone();
        bad[13] ^= 0xff;
        assert!(matches!(decode(&bad), Err(WireError::BadChecksum { .. })));

        let mut bad = buf.clone();
        bad[4..8].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let sum = fnv1a(&bad[0..12]);
        bad[12..16].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode(&bad), Err(WireError::Oversized { .. })));

        assert!(matches!(
            decode(&buf[..HEADER_LEN - 4]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn any_single_bit_garble_is_detected() {
        // The chaos layer's `garble` fault flips exactly one bit at an
        // arbitrary offset. Between the header checksum and the payload
        // trailer, every such flip must surface as a typed error (or, if
        // it lands in the diagnostic seq field, still fail the header
        // checksum) — never as a silently different message.
        let pkt = Packet {
            kind: PacketKind::P,
            display_index: 11,
            data: (0..64u8).collect(),
        };
        let mut clean = Vec::new();
        encode(&Msg::Packet(pkt), 3, &mut clean);
        for bit in 0..clean.len() * 8 {
            let mut garbled = clean.clone();
            garbled[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode(&garbled).is_err(),
                "flip of bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn payload_trailer_guards_body_corruption() {
        let mut buf = Vec::new();
        encode(
            &Msg::OpenOk {
                session_id: 1,
                heartbeat_ms: 250,
            },
            0,
            &mut buf,
        );
        assert_eq!(buf.len(), HEADER_LEN + 8 + TRAILER_LEN);
        // Corrupt one payload byte: header still parses, trailer trips.
        buf[HEADER_LEN] ^= 0x10;
        assert!(matches!(
            decode(&buf),
            Err(WireError::BadPayloadChecksum { .. })
        ));
        // Empty-payload messages carry no trailer.
        let mut ping = Vec::new();
        encode(&Msg::Ping, 0, &mut ping);
        assert_eq!(ping.len(), HEADER_LEN);
    }

    #[test]
    fn frame_payload_must_match_its_dimensions() {
        let mut buf = Vec::new();
        encode(&Msg::Frame(Frame::new(32, 16)), 0, &mut buf);
        let restamp = |buf: &mut Vec<u8>| {
            let end = buf.len() - TRAILER_LEN;
            let sum = fnv1a(&buf[HEADER_LEN..end]);
            let at = buf.len() - TRAILER_LEN;
            buf[at..].copy_from_slice(&sum.to_le_bytes());
        };
        // Flip a dimension without fixing the payload size (re-stamping
        // the trailer to isolate the dimension check).
        buf[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&64u32.to_le_bytes());
        restamp(&mut buf);
        assert!(matches!(decode(&buf), Err(WireError::BadPayload { .. })));
        // Odd dimensions are rejected before any Frame is constructed.
        buf[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&33u32.to_le_bytes());
        restamp(&mut buf);
        assert!(matches!(decode(&buf), Err(WireError::BadPayload { .. })));
    }

    #[test]
    fn trailing_bytes_are_not_consumed() {
        let mut buf = Vec::new();
        encode(&Msg::Flush, 1, &mut buf);
        let first = buf.len();
        encode(&Msg::Close, 2, &mut buf);
        let (msg, seq, used) = decode(&buf).expect("first");
        assert!(matches!(msg, Msg::Flush));
        assert_eq!((seq, used), (1, first));
        let (msg, seq, _) = decode(&buf[used..]).expect("second");
        assert!(matches!(msg, Msg::Close));
        assert_eq!(seq, 2);
    }
}
