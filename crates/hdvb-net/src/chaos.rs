//! Seeded chaos campaigns with byte-identity verdicts.
//!
//! A campaign boots a loopback [`NetServer`], runs one *fault-free*
//! reference session, then replays the identical input stream through
//! [`RetryClient`]s whose sockets inject a seeded [`NetFaultPlan`]
//! (drops, truncations, stalls, bit garbles). The verdict is binary:
//! every faulted trial's output must be **byte-identical** to the
//! reference — same packets, same frames, same order — or the campaign
//! fails. Recovery cost (reconnects, replayed inputs, detection and
//! recovery latency histograms) is reported alongside, serialised as
//! the `hdvb-chaos/v1` JSON document (`BENCH_chaos.json`).
//!
//! Everything is deterministic given the config: the fault plan is
//! re-parsed per trial so each trial starts with a fresh message clock,
//! the input frames come from the seeded synthetic sequences, and
//! backoff jitter derives from the per-trial retry seed. Only the
//! latency histograms carry wall-clock noise, and nothing gates on
//! them.

use crate::retry::{RetryClient, RetryPolicy, RetryStats};
use crate::server::{NetConfig, NetServer, NetStats};
use crate::{NetError, NetFaultPlan};
use hdvb_core::{CodecId, Priority, SessionInput, SessionSpec};
use hdvb_frame::Resolution;
use hdvb_seq::{Sequence, SequenceId};
use std::sync::Arc;
use std::time::Duration;

/// One chaos campaign's shape.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Codec for the encode session under test.
    pub codec: CodecId,
    /// Synthetic input sequence.
    pub sequence: SequenceId,
    /// Input resolution.
    pub resolution: Resolution,
    /// Frames streamed per run.
    pub frames: u32,
    /// Scheduling class of every session.
    pub priority: Priority,
    /// The fault plan spec (the `HDVB_NET_FAULTS` grammar). Re-parsed
    /// for every trial so each starts with a fresh message clock.
    pub plan: String,
    /// Reconnect budget and backoff shape; `seed` is XORed with the
    /// trial index so trials jitter differently but reproducibly.
    pub policy: RetryPolicy,
    /// Server heartbeat interval (dead peers reaped at twice this).
    pub heartbeat: Duration,
    /// Faulted runs to execute against the shared reference.
    pub trials: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            codec: CodecId::Mpeg2,
            sequence: SequenceId::BlueSky,
            resolution: Resolution::new(176, 144),
            frames: 24,
            priority: Priority::Batch,
            plan: String::new(),
            policy: RetryPolicy::default(),
            heartbeat: Duration::from_millis(200),
            trials: 1,
        }
    }
}

/// What one run (reference or trial) produced, reduced to the parts
/// that must match byte for byte.
#[derive(Clone, Debug, Default)]
struct RunDigest {
    packets: usize,
    frames: usize,
    completed: u64,
    digest: u64,
}

/// One faulted trial's verdict and recovery accounting.
#[derive(Clone, Debug)]
pub struct ChaosTrial {
    /// Output matched the reference byte for byte.
    pub identical: bool,
    /// FNV-1a digest over the output stream, in order.
    pub digest: u64,
    /// Output packets received.
    pub packets: usize,
    /// Output frames received.
    pub frames: usize,
    /// Inputs the server reported completed.
    pub completed: u64,
    /// Client-side recovery accounting.
    pub retry: RetryStats,
    /// Fault rules that fired during the trial.
    pub faults_fired: usize,
    /// Fault rules in the plan.
    pub faults_total: usize,
    /// The error that ended the trial, if it did not complete.
    pub error: Option<String>,
}

/// A finished campaign: the reference, every trial, and the server's
/// fleet counters at shutdown.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// The campaign configuration echoed back.
    pub config: ChaosConfig,
    /// Reference (fault-free) output shape and digest.
    reference: RunDigest,
    /// Every faulted trial, in execution order.
    pub trials: Vec<ChaosTrial>,
    /// Server fleet counters after shutdown.
    pub server: NetStats,
}

impl ChaosReport {
    /// True when every trial completed and matched the reference.
    pub fn all_identical(&self) -> bool {
        !self.trials.is_empty() && self.trials.iter().all(|t| t.identical && t.error.is_none())
    }

    /// Total successful reconnects across trials.
    pub fn total_reconnects(&self) -> u64 {
        self.trials.iter().map(|t| t.retry.reconnects).sum()
    }

    /// Total inputs replayed after resumes across trials.
    pub fn total_replayed_inputs(&self) -> u64 {
        self.trials.iter().map(|t| t.retry.replayed_inputs).sum()
    }

    /// The `hdvb-chaos/v1` JSON document (`BENCH_chaos.json`).
    pub fn json(&self) -> String {
        let runs: Vec<String> = self
            .trials
            .iter()
            .enumerate()
            .map(|(i, t)| {
                format!(
                    concat!(
                        "{{\"trial\":{},\"identical\":{},\"digest\":\"{:016x}\",",
                        "\"packets\":{},\"frames\":{},\"completed\":{},",
                        "\"reconnects\":{},\"attempts\":{},\"replayed_inputs\":{},",
                        "\"faults_fired\":{},\"faults_total\":{},",
                        "\"detect_ns\":{},\"recover_ns\":{},\"error\":{}}}"
                    ),
                    i,
                    t.identical,
                    t.digest,
                    t.packets,
                    t.frames,
                    t.completed,
                    t.retry.reconnects,
                    t.retry.attempts,
                    t.retry.replayed_inputs,
                    t.faults_fired,
                    t.faults_total,
                    t.retry.detect.json_summary(),
                    t.retry.recover.json_summary(),
                    match &t.error {
                        Some(e) => hdvb_trace::json::escape(e),
                        None => "null".to_string(),
                    },
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"schema\":\"hdvb-chaos/v1\",\"plan\":{},",
                "\"codec\":\"{}\",\"sequence\":\"{}\",\"resolution\":\"{}x{}\",",
                "\"frames\":{},\"trials\":{},\"heartbeat_ms\":{},",
                "\"identical\":{},",
                "\"reference\":{{\"packets\":{},\"frames\":{},\"completed\":{},",
                "\"digest\":\"{:016x}\"}},",
                "\"server\":{{\"connections\":{},\"disconnects\":{},\"timeouts\":{},",
                "\"resumes\":{},\"replayed\":{},\"parked\":{},\"expired\":{},",
                "\"wire_errors\":{},\"pings\":{}}},",
                "\"runs\":[{}]}}\n"
            ),
            hdvb_trace::json::escape(&self.config.plan),
            self.config.codec.name(),
            self.config.sequence.name(),
            self.config.resolution.width(),
            self.config.resolution.height(),
            self.config.frames,
            self.trials.len(),
            self.config.heartbeat.as_millis(),
            self.all_identical(),
            self.reference.packets,
            self.reference.frames,
            self.reference.completed,
            self.reference.digest,
            self.server.connections,
            self.server.disconnects,
            self.server.timeouts,
            self.server.resumes,
            self.server.replayed,
            self.server.parked,
            self.server.expired,
            self.server.wire_errors,
            self.server.pings,
            runs.join(","),
        )
    }
}

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv64(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// Runs one session to completion and reduces its output to a digest.
/// `plan: None` is the fault-free reference path.
fn run_one(
    addr: std::net::SocketAddr,
    cfg: &ChaosConfig,
    plan: Option<Arc<NetFaultPlan>>,
    trial: u32,
) -> Result<(RunDigest, RetryStats), NetError> {
    let mut policy = cfg.policy.clone();
    policy.seed ^= u64::from(trial).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut client = RetryClient::with_faults(addr, policy, plan)?;
    let spec = SessionSpec::encode(cfg.codec, cfg.resolution);
    client.open(spec, cfg.priority)?;
    let seq = Sequence::new(cfg.sequence, cfg.resolution);
    for i in 0..cfg.frames {
        client.send(SessionInput::Frame(seq.frame(i)))?;
    }
    let (result, stats) = client.finish()?;
    let mut h = FNV64_OFFSET;
    for p in &result.packets {
        h = fnv64(h, &[p.kind as u8]);
        h = fnv64(h, &p.display_index.to_le_bytes());
        h = fnv64(h, &(p.data.len() as u64).to_le_bytes());
        h = fnv64(h, &p.data);
    }
    for f in &result.frames {
        h = fnv64(h, &(f.width() as u64).to_le_bytes());
        h = fnv64(h, &(f.height() as u64).to_le_bytes());
        h = fnv64(h, f.y().data());
        h = fnv64(h, f.cb().data());
        h = fnv64(h, f.cr().data());
    }
    let digest = RunDigest {
        packets: result.packets.len(),
        frames: result.frames.len(),
        completed: result.stats.completed,
        digest: h,
    };
    result.recycle();
    Ok((digest, stats))
}

/// Runs a full campaign: boots a loopback server, takes the fault-free
/// reference, executes every faulted trial, and returns the report.
/// Trials that die (budget exhausted, fatal server error) are recorded
/// with their error rather than aborting the campaign.
///
/// # Errors
///
/// A malformed fault plan, a bind failure, or a failed *reference* run
/// — without a reference there is nothing to compare against.
pub fn run_campaign(cfg: &ChaosConfig) -> Result<ChaosReport, NetError> {
    NetFaultPlan::parse(&cfg.plan).map_err(NetError::Protocol)?;
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            heartbeat: cfg.heartbeat,
            ..NetConfig::default()
        },
    )?;
    let addr = server.local_addr();

    let (reference, _) = run_one(addr, cfg, None, u32::MAX)?;

    let mut trials = Vec::with_capacity(cfg.trials as usize);
    for t in 0..cfg.trials {
        // A fresh plan per trial: the message clock and fired flags
        // start at zero, so every trial sees the same faults.
        let plan = Arc::new(NetFaultPlan::parse(&cfg.plan).map_err(NetError::Protocol)?);
        let trial = match run_one(addr, cfg, Some(Arc::clone(&plan)), t) {
            Ok((digest, retry)) => ChaosTrial {
                identical: digest.digest == reference.digest
                    && digest.packets == reference.packets
                    && digest.frames == reference.frames,
                digest: digest.digest,
                packets: digest.packets,
                frames: digest.frames,
                completed: digest.completed,
                retry,
                faults_fired: plan.fired(),
                faults_total: plan.total(),
                error: None,
            },
            Err(e) => ChaosTrial {
                identical: false,
                digest: 0,
                packets: 0,
                frames: 0,
                completed: 0,
                retry: RetryStats::default(),
                faults_fired: plan.fired(),
                faults_total: plan.total(),
                error: Some(e.to_string()),
            },
        };
        trials.push(trial);
    }

    let stats = server.stats();
    server.shutdown();
    Ok(ChaosReport {
        config: cfg.clone(),
        reference,
        trials,
        server: stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole acceptance criterion end to end: a plan injecting
    /// three disconnects (two drops, one truncation) plus a stall and a
    /// bit garble still yields byte-identical output, and the JSON
    /// document is strict JSON carrying the verdict.
    #[test]
    fn faulted_campaign_is_byte_identical_and_reports_json() {
        let cfg = ChaosConfig {
            frames: 12,
            resolution: Resolution::new(96, 80),
            // Each sever is spaced past the previous outage's recovery
            // traffic (HELLO + RESUME + replay), so the three severing
            // rules produce three distinct disconnect/resume cycles and
            // the garbled message a fourth.
            plan: "drop@4,stall@6:20,truncate@12:13,garble@16,drop@20,seed=11".into(),
            heartbeat: Duration::from_millis(150),
            trials: 2,
            ..ChaosConfig::default()
        };
        let report = run_campaign(&cfg).expect("campaign");
        for (i, t) in report.trials.iter().enumerate() {
            assert_eq!(t.error, None, "trial {i}");
            assert!(t.identical, "trial {i} output diverged from reference");
            assert_eq!(t.faults_fired, t.faults_total, "trial {i} faults");
            assert!(t.retry.reconnects >= 3, "trial {i}: {:?}", t.retry);
        }
        assert!(report.all_identical());
        assert!(report.total_reconnects() >= 6);
        assert!(report.server.resumes >= 6);

        let doc = hdvb_trace::json::parse(&report.json()).expect("strict json");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("hdvb-chaos/v1")
        );
        assert_eq!(
            doc.get("identical"),
            Some(&hdvb_trace::json::Value::Bool(true))
        );
        let runs = doc.get("runs").and_then(|v| v.as_array()).expect("runs");
        assert_eq!(runs.len(), 2);
        for r in runs {
            assert!(r.get("detect_ns").and_then(|v| v.get("count")).is_some());
            assert!(r.get("recover_ns").and_then(|v| v.get("count")).is_some());
        }
    }

    /// A malformed plan is rejected before any socket is opened.
    #[test]
    fn bad_plan_is_a_typed_error() {
        let cfg = ChaosConfig {
            plan: "explode@2".into(),
            ..ChaosConfig::default()
        };
        match run_campaign(&cfg) {
            Err(NetError::Protocol(d)) => assert!(d.contains("explode"), "{d}"),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }
}
