//! Deterministic golden wire vectors.
//!
//! [`golden_vectors`] regenerates, byte for byte, the vectors checked in
//! under `tests/corpus/wire/`. The repo's `wire_robustness` test asserts
//! the files still match this generator — so the committed bytes cannot
//! drift from the code that documents them — and replays each one
//! through [`wire::decode`](crate::wire::decode), asserting the `ok--`
//! vectors parse completely and the `err--` vectors fail with a typed
//! [`WireError`](crate::wire::WireError) (never a panic).

use crate::wire::{self, encode_header, fnv1a, DoneStats, Msg, MsgType, HEADER_LEN};
use hdvb_core::{CodecId, Packet, PacketKind, Priority, SessionSpec};
use hdvb_frame::{Frame, Resolution};

/// One named wire vector and whether it should decode.
pub struct GoldenWire {
    /// File stem: `ok--*` decodes fully, `err--*` returns a typed error.
    pub name: &'static str,
    /// Whether every framed message in `bytes` decodes.
    pub valid: bool,
    /// The exact bytes committed under `tests/corpus/wire/`.
    pub bytes: Vec<u8>,
}

fn enc(msg: &Msg, seq: u32) -> Vec<u8> {
    let mut out = Vec::new();
    wire::encode(msg, seq, &mut out);
    out
}

/// Restamps the header checksum after deliberate field tampering, so the
/// tampered field itself (not the checksum) is what the decoder rejects.
fn restamp(frame: &mut [u8]) {
    let sum = fnv1a(&frame[0..12]);
    frame[12..16].copy_from_slice(&sum.to_le_bytes());
}

/// Restamps the payload trailer after deliberate payload tampering, so
/// the tampered field itself (not the payload checksum) is what the
/// decoder rejects.
fn restamp_payload(frame: &mut [u8]) {
    let payload_end = frame.len() - wire::TRAILER_LEN;
    let sum = fnv1a(&frame[HEADER_LEN..payload_end]);
    frame[payload_end..].copy_from_slice(&sum.to_le_bytes());
}

fn sample_frame() -> Frame {
    let mut f = Frame::new(16, 16);
    for (i, b) in f.y_mut().data_mut().iter_mut().enumerate() {
        *b = (i * 7) as u8;
    }
    for (i, b) in f.cb_mut().data_mut().iter_mut().enumerate() {
        *b = (i * 11) as u8;
    }
    for (i, b) in f.cr_mut().data_mut().iter_mut().enumerate() {
        *b = (i * 13) as u8;
    }
    f
}

fn sample_packet() -> Packet {
    Packet {
        data: (0..48u8).map(|i| i.wrapping_mul(5)).collect(),
        kind: PacketKind::P,
        display_index: 3,
    }
}

/// Builds all golden wire vectors, valid and malformed.
#[allow(clippy::vec_init_then_push)] // a long literal catalogue reads best as pushes
pub fn golden_vectors() -> Vec<GoldenWire> {
    let spec = SessionSpec::transcode(CodecId::Mpeg2, CodecId::H264, Resolution::new(176, 144))
        .with_qscale(7);
    let mut v = Vec::new();

    v.push(GoldenWire {
        name: "ok--hello-client",
        valid: true,
        bytes: enc(&Msg::Hello { server: false }, 0),
    });
    v.push(GoldenWire {
        name: "ok--open-transcode-live",
        valid: true,
        bytes: enc(
            &Msg::Open {
                spec,
                priority: Priority::Live,
                resume: false,
            },
            1,
        ),
    });
    v.push(GoldenWire {
        name: "ok--open-resumable",
        valid: true,
        bytes: enc(
            &Msg::Open {
                spec,
                priority: Priority::Batch,
                resume: true,
            },
            1,
        ),
    });
    v.push(GoldenWire {
        name: "ok--frame-16x16",
        valid: true,
        bytes: enc(&Msg::Frame(sample_frame()), 2),
    });
    v.push(GoldenWire {
        name: "ok--packet-p",
        valid: true,
        bytes: enc(&Msg::Packet(sample_packet()), 3),
    });
    v.push(GoldenWire {
        name: "ok--done-stats",
        valid: true,
        bytes: enc(
            &Msg::Done(DoneStats {
                completed: 250,
                discarded: 3,
                corrupt_dropped: 1,
                p50_ns: 4_200_000,
                p99_ns: 19_700_000,
            }),
            4,
        ),
    });
    // A whole session transcript in one buffer: every control message
    // framed back to back.
    let mut stream = enc(&Msg::Hello { server: false }, 0);
    stream.extend(enc(
        &Msg::Open {
            spec,
            priority: Priority::Batch,
            resume: false,
        },
        1,
    ));
    stream.extend(enc(&Msg::Packet(sample_packet()), 2));
    stream.extend(enc(&Msg::Flush, 3));
    stream.extend(enc(&Msg::Close, 4));
    v.push(GoldenWire {
        name: "ok--session-transcript",
        valid: true,
        bytes: stream,
    });
    // The resilience-layer message set: heartbeats, cumulative acks,
    // and the resume handshake, back to back.
    let mut resil = enc(&Msg::Ping, 0);
    resil.extend(enc(&Msg::Pong, 1));
    resil.extend(enc(
        &Msg::Resume {
            session_id: 42,
            outputs_received: 117,
        },
        2,
    ));
    resil.extend(enc(
        &Msg::ResumeOk {
            inputs_received: 98,
        },
        3,
    ));
    resil.extend(enc(
        &Msg::AckOut {
            outputs_received: 120,
        },
        4,
    ));
    resil.extend(enc(
        &Msg::AckIn {
            inputs_received: 104,
        },
        5,
    ));
    resil.extend(enc(
        &Msg::OpenOk {
            session_id: 42,
            heartbeat_ms: 30_000,
        },
        6,
    ));
    v.push(GoldenWire {
        name: "ok--resilience-control",
        valid: true,
        bytes: resil,
    });

    let mut bad_magic = enc(&Msg::Flush, 9);
    bad_magic[0] = b'X';
    v.push(GoldenWire {
        name: "err--bad-magic",
        valid: false,
        bytes: bad_magic,
    });

    let mut bad_version = enc(&Msg::Flush, 9);
    bad_version[2] = 0xFF;
    restamp(&mut bad_version);
    v.push(GoldenWire {
        name: "err--bad-version",
        valid: false,
        bytes: bad_version,
    });

    let mut unknown_type = enc(&Msg::Flush, 9);
    unknown_type[3] = 0x7E;
    restamp(&mut unknown_type);
    v.push(GoldenWire {
        name: "err--unknown-type",
        valid: false,
        bytes: unknown_type,
    });

    let mut bad_checksum = enc(&Msg::Close, 9);
    bad_checksum[12] ^= 0xA5;
    v.push(GoldenWire {
        name: "err--bad-checksum",
        valid: false,
        bytes: bad_checksum,
    });

    let mut oversized = enc(&Msg::Flush, 9);
    oversized[4..8].copy_from_slice(&(wire::MAX_PAYLOAD + 1).to_le_bytes());
    restamp(&mut oversized);
    v.push(GoldenWire {
        name: "err--oversized-length",
        valid: false,
        bytes: oversized,
    });

    let mut truncated = enc(&Msg::Packet(sample_packet()), 9);
    truncated.truncate(HEADER_LEN + 5);
    v.push(GoldenWire {
        name: "err--truncated-packet",
        valid: false,
        bytes: truncated,
    });

    // OPEN whose codec byte is not a registered codec: header and
    // payload trailer are pristine, the codec byte is what the decoder
    // must reject.
    let mut bad_codec = enc(
        &Msg::Open {
            spec,
            priority: Priority::Live,
            resume: false,
        },
        9,
    );
    bad_codec[HEADER_LEN + 1] = 9;
    restamp_payload(&mut bad_codec);
    v.push(GoldenWire {
        name: "err--open-unknown-codec",
        valid: false,
        bytes: bad_codec,
    });

    // A flipped payload bit with an unrepaired trailer: the payload
    // checksum is what fires.
    let mut corrupt_payload = enc(&Msg::Packet(sample_packet()), 9);
    corrupt_payload[HEADER_LEN + 7] ^= 0x01;
    v.push(GoldenWire {
        name: "err--payload-bit-flip",
        valid: false,
        bytes: corrupt_payload,
    });

    // FRAME declaring 16x16 but carrying too few plane bytes. The
    // header length is rewritten to match the short payload, and both
    // checksums are restamped, so the *dimension check* fires.
    let short_payload: Vec<u8> = {
        let full = enc(&Msg::Frame(sample_frame()), 9);
        full[HEADER_LEN..HEADER_LEN + 8 + 10].to_vec()
    };
    let mut dim_mismatch = encode_header(MsgType::Frame, short_payload.len() as u32, 9).to_vec();
    let trailer = fnv1a(&short_payload);
    dim_mismatch.extend(short_payload);
    dim_mismatch.extend(trailer.to_le_bytes());
    v.push(GoldenWire {
        name: "err--frame-dim-mismatch",
        valid: false,
        bytes: dim_mismatch,
    });

    // OPEN with a priority byte outside the two classes.
    let mut bad_priority = enc(
        &Msg::Open {
            spec,
            priority: Priority::Live,
            resume: false,
        },
        9,
    );
    bad_priority[HEADER_LEN + 3] = 7;
    restamp_payload(&mut bad_priority);
    v.push(GoldenWire {
        name: "err--open-bad-priority",
        valid: false,
        bytes: bad_priority,
    });

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(mut buf: &[u8]) -> Result<usize, wire::WireError> {
        let mut n = 0;
        while !buf.is_empty() {
            let (_msg, _seq, used) = wire::decode(buf)?;
            buf = &buf[used..];
            n += 1;
        }
        Ok(n)
    }

    #[test]
    fn vectors_decode_as_tagged() {
        let vectors = golden_vectors();
        assert!(vectors.len() >= 10, "only {} golden vectors", vectors.len());
        for g in &vectors {
            let outcome = decode_all(&g.bytes);
            assert_eq!(
                outcome.is_ok(),
                g.valid,
                "{}: expected valid={}, got {outcome:?}",
                g.name,
                g.valid
            );
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = golden_vectors();
        let b = golden_vectors();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.bytes, y.bytes, "{} not reproducible", x.name);
        }
    }
}
