//! The TCP front end for the HD-VideoBench serve layer.
//!
//! `hdvb-serve` answers "how many concurrent codec sessions can this
//! machine sustain" for in-process callers. Real video infrastructure
//! is fed over sockets, and the network edge is where three policy
//! questions live that no in-process benchmark can ask:
//!
//! - **Wire robustness.** [`wire`] is a versioned, length-prefixed
//!   binary protocol (HELLO/OPEN/FRAME/PACKET/FLUSH/DONE/CLOSE/ERROR)
//!   with checksummed headers. Decoding never panics: every malformed
//!   byte stream maps to a typed [`WireError`], fuzzed from the
//!   `hdvb-fuzz` mutators and pinned by golden vectors.
//! - **Admission control.** [`SloPolicy`] rejects an OPEN when the
//!   fleet's rolling p99 would violate the latency SLO — and rejects
//!   batch traffic at a tighter threshold than live, so throughput work
//!   is shed *before* the live tail breaches. [`TokenBucket`] shapes
//!   each connection to its contracted input rate.
//! - **Saturation.** [`run_load_curve`] sweeps concurrent TCP client
//!   fleets against a loopback [`NetServer`] and emits the
//!   latency-vs-load curve (`hdvb-loadcurve/v1`): offered load,
//!   goodput, per-class p50/p99 and rejection rate — the knee where
//!   admission starts refusing batch is the machine's honest capacity.
//!
//! A loopback TCP transcode is byte-identical to the same session run
//! in-process through [`hdvb_serve::Server`] — the wire moves bytes,
//! never changes them (enforced in `tests/net.rs`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod admission;
pub mod chaos;
mod client;
pub mod faults;
pub mod golden;
mod loadcurve;
mod reader;
mod resume;
mod retry;
mod server;
pub mod wire;

pub use admission::{Rejection, SloPolicy, TokenBucket};
pub use chaos::{run_campaign, ChaosConfig, ChaosReport, ChaosTrial};
pub use client::{ClientResult, NetClient, NetError};
pub use faults::{FaultyStream, NetFaultKind, NetFaultPlan};
pub use loadcurve::{
    loadcurve_json, loadcurve_markdown, run_load_curve, ClassCell, LoadCurveCell, LoadCurveReport,
    LoadCurveSpec,
};
pub use retry::{RetryClient, RetryPolicy, RetryStats};
pub use server::{NetConfig, NetServer, NetStats};
pub use wire::{DoneStats, ErrorCode, Msg, MsgType, WireError};
