//! Admission control and per-session rate limiting.
//!
//! **SLO admission.** The server tracks the fleet's rolling p99 frame
//! latency (a [`RollingHistogram`](hdvb_trace::RollingHistogram) inside
//! `hdvb-serve`). An OPEN is admitted only while that p99 is below the
//! class threshold `θ·SLO`: `θ = 1.0` for live, `θ = batch_headroom`
//! (default 0.7) for batch. Because batch's threshold is strictly
//! tighter, batch traffic is rejected *first* as load rises — the fleet
//! sheds throughput work while the live p99 still has
//! `(1 − batch_headroom)·SLO` of headroom, which is exactly the
//! guarantee the load-curve sweep asserts. Below `min_samples` recorded
//! latencies the controller is warming up and admits everything (an
//! empty histogram says nothing about load).
//!
//! **Token-bucket shaping.** Each connection gets a [`TokenBucket`]:
//! capacity `burst` tokens, refilled at `rate` per second, one token per
//! input. The server *delays* reads that overdraw the bucket (shaping,
//! not policing), so one misbehaving client saturates its own
//! connection instead of the fleet's queues.

use hdvb_core::Priority;
use hdvb_trace::LatencyHistogram;
use std::time::{Duration, Instant};

/// The fleet latency SLO an OPEN is admitted against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloPolicy {
    /// The fleet rolling-p99 target.
    pub p99: Duration,
    /// Admit everything until this many samples are in the window.
    pub min_samples: u64,
    /// Batch threshold as a fraction of the SLO, in `(0, 1]`. Lower ⇒
    /// batch is shed earlier and live keeps more headroom.
    pub batch_headroom: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            p99: Duration::from_millis(250),
            min_samples: 50,
            batch_headroom: 0.7,
        }
    }
}

/// Why an OPEN was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rejection {
    /// The fleet rolling p99 at decision time, ns.
    pub fleet_p99_ns: u64,
    /// The class threshold it exceeded, ns.
    pub threshold_ns: u64,
}

impl Rejection {
    /// The ERROR detail string sent to the client.
    pub fn detail(&self, priority: Priority) -> String {
        format!(
            "fleet p99 {:.1}ms exceeds {} threshold {:.1}ms",
            self.fleet_p99_ns as f64 / 1e6,
            priority.name(),
            self.threshold_ns as f64 / 1e6,
        )
    }
}

impl SloPolicy {
    /// The admission threshold for `priority`, ns.
    pub fn threshold_ns(&self, priority: Priority) -> u64 {
        let slo = self.p99.as_nanos().min(u128::from(u64::MAX)) as u64;
        match priority {
            Priority::Live => slo,
            Priority::Batch => (slo as f64 * self.batch_headroom.clamp(0.0, 1.0)) as u64,
        }
    }

    /// Decides an OPEN against the fleet's rolling latency window.
    ///
    /// # Errors
    ///
    /// [`Rejection`] when the window holds at least `min_samples` and
    /// its p99 exceeds the class threshold.
    pub fn admit(&self, fleet: &LatencyHistogram, priority: Priority) -> Result<(), Rejection> {
        if fleet.count() < self.min_samples {
            return Ok(());
        }
        let p99 = fleet.percentile(0.99);
        let threshold = self.threshold_ns(priority);
        if p99 <= threshold {
            Ok(())
        } else {
            Err(Rejection {
                fleet_p99_ns: p99,
                threshold_ns: threshold,
            })
        }
    }
}

/// A token bucket: `burst` capacity, `rate` tokens/second refill, one
/// token per acquisition. Time is explicit nanoseconds for the core API
/// (deterministic tests); [`acquire`](Self::acquire) wraps it with a
/// wall clock anchored at construction.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_per_ns: f64,
    burst: f64,
    tokens: f64,
    last_ns: u64,
    origin: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate` tokens/second with `burst` capacity
    /// (both floored at one token so a zero-rate config cannot wedge a
    /// connection forever; use no bucket at all to disable limiting).
    pub fn new(rate: f64, burst: f64) -> TokenBucket {
        let burst = burst.max(1.0);
        TokenBucket {
            rate_per_ns: rate.max(1e-9) / 1e9,
            burst,
            tokens: burst,
            last_ns: 0,
            origin: Instant::now(),
        }
    }

    /// Takes one token at `now_ns`, returning how long the caller must
    /// wait before proceeding (0 when a token was available). The token
    /// is always consumed — the bucket goes negative and the debt is
    /// the returned delay, so callers just sleep and continue.
    pub fn acquire_at(&mut self, now_ns: u64) -> Duration {
        let elapsed = now_ns.saturating_sub(self.last_ns);
        self.last_ns = self.last_ns.max(now_ns);
        self.tokens = (self.tokens + elapsed as f64 * self.rate_per_ns).min(self.burst);
        self.tokens -= 1.0;
        if self.tokens >= 0.0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((-self.tokens / self.rate_per_ns) as u64)
        }
    }

    /// Takes one token now, returning the shaping delay.
    pub fn acquire(&mut self) -> Duration {
        let now = self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.acquire_at(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded(p99_ns: u64, samples: u64) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for _ in 0..samples {
            h.record(p99_ns);
        }
        h
    }

    #[test]
    fn warm_up_admits_everything() {
        let slo = SloPolicy::default();
        let fleet = loaded(10_000_000_000, 10); // terrible p99, 10 samples
        assert!(slo.admit(&fleet, Priority::Live).is_ok());
        assert!(slo.admit(&fleet, Priority::Batch).is_ok());
    }

    #[test]
    fn batch_is_rejected_before_live() {
        let slo = SloPolicy {
            p99: Duration::from_millis(100),
            min_samples: 10,
            batch_headroom: 0.7,
        };
        // p99 ≈ 80ms: inside the live SLO, over the 70ms batch line.
        let fleet = loaded(75_000_000, 100);
        let p99 = fleet.percentile(0.99);
        assert!(p99 > slo.threshold_ns(Priority::Batch) && p99 <= slo.threshold_ns(Priority::Live));
        assert!(slo.admit(&fleet, Priority::Live).is_ok());
        let rej = slo.admit(&fleet, Priority::Batch).unwrap_err();
        assert_eq!(rej.threshold_ns, 70_000_000);
        assert!(rej.detail(Priority::Batch).contains("batch"));
    }

    #[test]
    fn both_classes_rejected_over_the_slo() {
        let slo = SloPolicy {
            p99: Duration::from_millis(50),
            min_samples: 10,
            batch_headroom: 0.7,
        };
        let fleet = loaded(400_000_000, 100);
        assert!(slo.admit(&fleet, Priority::Live).is_err());
        assert!(slo.admit(&fleet, Priority::Batch).is_err());
    }

    #[test]
    fn bucket_admits_burst_then_shapes_to_rate() {
        // 10 tokens/s, burst 5.
        let mut b = TokenBucket::new(10.0, 5.0);
        for _ in 0..5 {
            assert_eq!(b.acquire_at(0), Duration::ZERO);
        }
        // Sixth token at t=0 owes one refill interval (100ms).
        let wait = b.acquire_at(0);
        assert!((wait.as_millis() as i64 - 100).abs() <= 1, "wait {wait:?}");
        // After sleeping the debt plus another interval, one token is
        // free again.
        let t = 200_000_000;
        assert_eq!(b.acquire_at(t), Duration::ZERO);
        // Steady state: acquiring at exactly the refill rate never
        // waits.
        for i in 1..=20u64 {
            assert_eq!(b.acquire_at(t + i * 100_000_000), Duration::ZERO);
        }
    }

    #[test]
    fn bucket_never_exceeds_burst_after_idle() {
        let mut b = TokenBucket::new(100.0, 3.0);
        for _ in 0..3 {
            b.acquire_at(0);
        }
        // A long idle refills to burst, not beyond.
        let t = 10_000_000_000;
        for _ in 0..3 {
            assert_eq!(b.acquire_at(t), Duration::ZERO);
        }
        assert!(b.acquire_at(t) > Duration::ZERO);
    }
}
