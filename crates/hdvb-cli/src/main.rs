//! `hdvb` — the HD-VideoBench command-line front end.
//!
//! Plays the role MPlayer/MEncoder play in the original benchmark
//! (paper Table IV): a single driver that selects a codec, runs encode
//! or decode with video output disabled, and reports benchmark numbers.

mod args;
mod commands;

use std::process::ExitCode;

const USAGE: &str = "\
hdvb — HD-VideoBench: a benchmark for HD digital video applications

USAGE:
    hdvb <COMMAND> [OPTIONS]

COMMANDS:
    list-codecs                     the benchmark applications (paper Table II)
    list-sequences                  the input sequences (paper Table III)
    generate                        render a synthetic sequence to .y4m
    encode                          encode a sequence (or .y4m) to an .hvb stream
    decode                          decode an .hvb stream (optionally to .y4m)
    psnr                            PSNR between a .y4m file and its reference
    bench                           encode+decode throughput for one configuration
    kernels                         per-kernel ns/call at every supported SIMD tier
    table5                          reproduce Table V (rate-distortion comparison)
    figure1                         reproduce Figure 1 (decode/encode fps, scalar+SIMD)
    profile                         traced encode+decode with per-stage attribution
    fuzz                            structure-aware differential fuzzing of the decoders
    serve                           run one streaming encode/transcode session
                                    (--bind <addr> serves sessions over TCP instead)
    connect                         TCP client for a serve --bind server
    serve-bench                     open-loop serving load test with latency SLO report
    serve-load                      TCP latency-vs-load sweep with SLO admission
                                    (writes BENCH_loadcurve.json)
    pools                           frame/bitstream pool efficiency diagnostic
    ladder                          ABR transcode ladder: decode once, encode per rung
                                    (writes BENCH_ladder.json)
    screen                          screen-content workload per codec
                                    (writes BENCH_screen.json)
    chaos                           seeded fault campaign: inject disconnects,
                                    truncations, stalls and bit flips, verify
                                    byte-identical recovery, write BENCH_chaos.json

COMMON OPTIONS:
    --codec <mpeg2|mpeg4|h264>      codec under test
    --sequence <name>               blue_sky | pedestrian_area | riverbed | rush_hour
    --resolution <r>                576p25 | 720p25 | 1088p25 | <W>x<H>   [default: 576p25]
    --frames <n>                    frames to process                     [default: 100]
    --qscale <q>                    MPEG quantiser scale (H.264 QP via Eq. 1) [default: 5]
    --simd <scalar|sse2|avx2|auto>  kernel tier (auto = detect best)      [default: auto]
    --json                          also write BENCH_kernels.json / BENCH_figure1.json
                                    (bench, kernels and figure1 commands)
    --b-frames <n>                  B pictures between anchors            [default: 2]
    -i, --input <file>              input file (.y4m for encode, .hvb for decode)
    -o, --output <file>             output file
    --scale <d>                     divide benchmark resolutions by d (quick runs)
    --threads <n|auto>              worker threads                        [default: auto]
                                    table5/figure1 fan independent grid cells over
                                    the pool (table5 numbers identical to
                                    --threads 1; figure1 fps are wall-clock, so
                                    use --threads 1 for reference timings);
                                    bench/encode use GOP-parallel encoding
    --trace <out.json>              write a chrome://tracing trace (Perfetto-loadable)
                                    and print the per-stage summary on exit
                                    (encode, decode, bench, table5, figure1, profile)
    --cell-timeout <secs|off|auto>  table5/figure1: per-cell wall-clock budget;
                                    overruns report as timed-out instead of
                                    stalling the sweep (auto derives the budget
                                    from resolution and frames)  [default: auto]
    --max-retries <n>               table5/figure1: extra attempts for a failed
                                    or panicked cell                      [default: 2]
    --journal <path>                table5/figure1: append every finished cell to
                                    this checkpoint journal as the sweep runs
    --resume                        table5/figure1: load --journal first and skip
                                    cells it already records as completed
    --seconds <n>                   fuzz: mutation budget in seconds      [default: 60]
    --seed <n>                      fuzz: PRNG seed (also salts sweep retry
                                    backoff jitter)                       [default: 1]
    --roundtrips <n>                fuzz: encoder round-trip oracle cases [default: 16]
    --corpus <dir>                  fuzz: replay this corpus first and persist any
                                    minimised failure reproducers into it
    --write-golden <dir>            fuzz: regenerate the golden corruption vectors
                                    into <dir> and exit
    --resilient                     decode/serve: drop corrupt packets with a warning
                                    instead of aborting the stream
    --sessions <n>                  serve-bench: concurrent sessions      [default: 8]
    --fps <n>                       serve-bench: offered per-session rate [default: 30]
    --duration <secs>               serve-bench: schedule length          [default: 5]
    --mode <m>                      serve-bench: encode|decode|transcode  [default: encode]
    --queue-cap <n>                 serve/serve-bench: per-session input queue
                                    capacity                              [default: 8]
    --queue-policy <p>              serve/serve-bench: block | drop-oldest (what a
                                    full session queue does)              [default: block]
                                    (serve-bench --seed also seeds arrival jitter;
                                    same seed, same admission order; serve-bench
                                    --resolution defaults to 288x160)
    --bind <addr>                   serve: listen for TCP wire-protocol sessions on
                                    this address (e.g. 127.0.0.1:4800) for --seconds,
                                    then print fleet stats and exit
    --addr <host:port>              connect: the serve --bind server to dial
    --priority <live|batch>         connect: scheduling class        [default: batch]
    --slo-p99 <ms>                  serve --bind / serve-load: reject OPENs when the
                                    fleet rolling p99 exceeds this SLO
    --slo-min-samples <n>           admission warm-up grace           [default: 50]
    --batch-headroom <f>            batch admission threshold as a fraction of the
                                    SLO; batch sheds first            [default: 0.7]
    --rate <n>                      serve --bind / serve-load: per-connection token
                                    bucket, inputs/second (burst = one second)
                                    (serve-load --sessions takes a comma list,
                                    e.g. 1,2,4,8 — the sweep axis)
    --faults <plan>                 chaos: the fault plan (HDVB_NET_FAULTS grammar),
                                    e.g. \"drop@4,truncate@12:13,garble@16,seed=7\"
    --trials <n>                    chaos: faulted runs to execute      [default: 1]
    --retries <n>                   connect/chaos: reconnect budget     [default: 16]
                                    (connect opens resumable sessions and recovers
                                    from disconnects byte-identically; --seed salts
                                    the backoff jitter)
    --heartbeat-ms <ms>             serve --bind / chaos: PING interval; silent peers
                                    are reaped at twice this; 0 disables
                                    (serve default 30000, chaos default 200)
    --rungs <WxH,...>               ladder: explicit rung resolutions (default:
                                    full, 2/3, 1/2 and 1/4 of the source)
    --switch <n>                    ladder: segment length in frames — the rung
                                    switching granularity; must be a multiple of
                                    the GOP length                    [default: 4 GOPs]
                                    (ladder --sequence also accepts \"screen\";
                                    ladder/screen --seed seeds the screen content)

ENVIRONMENT:
    HDVB_SIMD                       force a kernel tier (scalar|sse2|avx2|auto)
    HDVB_FAULTS                     deterministic fault injection for sweeps, e.g.
                                    \"panic@2x1,stall@4:2000x1,seed=7\" (see DESIGN.md)
    HDVB_NET_DEBUG                  serve --bind / serve-load: log every admission
                                    decision (fleet p99 vs class threshold) to stderr
    HDVB_NET_FAULTS                 deterministic wire fault injection for TCP
                                    clients and serve --bind, e.g.
                                    \"drop@4,truncate@9:11,garble@13,stall@17:40,seed=7\"
                                    (indices count outgoing data messages; see DESIGN.md)

EXAMPLES:
    hdvb encode --codec h264 --sequence blue_sky --resolution 720p25 -o out.hvb
    hdvb decode -i out.hvb --simd scalar -o out.y4m
    hdvb psnr -i out.y4m --sequence blue_sky
    hdvb table5 --frames 24 --scale 2 --threads 4
    hdvb table5 --frames 24 --journal sweep.journal     # checkpoint as it runs
    hdvb table5 --frames 24 --journal sweep.journal --resume   # heal a killed run
    hdvb figure1 --frames 24 --scale 2 --threads 4 --json
    hdvb kernels --json
    hdvb fuzz --seconds 60 --seed 1 --corpus tests/corpus
    hdvb profile --codec h264 --sequence rush_hour --frames 8 --trace trace.json
    hdvb serve --codec h264 --sequence rush_hour --frames 24 -o out.hvb
    hdvb serve -i out.hvb --codec mpeg2 --resilient -o transcoded.hvb
    hdvb serve-bench --sessions 64 --fps 30 --duration 5
    hdvb serve-bench --codec h264 --queue-policy drop-oldest --seed 7
    hdvb serve --bind 127.0.0.1:4800 --seconds 30 --slo-p99 250 &
    hdvb connect --addr 127.0.0.1:4800 --codec mpeg2 --sequence blue_sky \\
         --frames 24 --priority live -o out.hvb
    hdvb serve-load --sessions 1,2,4,8 --fps 30 --duration 2 --slo-p99 50
    hdvb pools --codec h264
    hdvb ladder --codec h264 --sequence screen --resolution 288x160 --frames 24
    hdvb ladder -i out.hvb --rungs 720x576,360x288 --switch 12
    hdvb screen --resolution 288x160 --frames 24 --seed 7
    hdvb chaos --faults \"drop@4,truncate@12:13,garble@16,drop@20,seed=7\" \\
         --frames 24 --trials 2 --heartbeat-ms 200
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if command == "--help" || command == "-h" || command == "help" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let parsed = match args::Parsed::parse(&argv[1..]) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        "list-codecs" => commands::list_codecs(),
        "list-sequences" => commands::list_sequences(),
        "generate" => commands::generate(&parsed),
        "encode" => commands::encode(&parsed),
        "decode" => commands::decode(&parsed),
        "psnr" => commands::psnr(&parsed),
        "bench" => commands::bench(&parsed),
        "kernels" => commands::kernels(&parsed),
        "table5" => commands::table5(&parsed),
        "figure1" => commands::figure1(&parsed),
        "profile" => commands::profile(&parsed),
        "fuzz" => commands::fuzz(&parsed),
        "serve" => commands::serve(&parsed),
        "connect" => commands::connect(&parsed),
        "serve-bench" => commands::serve_bench(&parsed),
        "serve-load" => commands::serve_load(&parsed),
        "pools" => commands::pools(&parsed),
        "ladder" => commands::ladder(&parsed),
        "screen" => commands::screen(&parsed),
        "chaos" => commands::chaos(&parsed),
        other => {
            eprintln!("error: unknown command {other:?}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
