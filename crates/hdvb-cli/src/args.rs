//! Tiny hand-rolled option parser (no external dependencies, like the
//! rest of the workspace).

use hdvb_core::CodecId;
use hdvb_dsp::SimdLevel;
use hdvb_frame::Resolution;
use hdvb_seq::SequenceId;
use std::collections::HashMap;

/// Parsed `--key value` options.
pub struct Parsed {
    values: HashMap<String, String>,
}

impl Parsed {
    /// Options that take no value (presence means `true`).
    const FLAGS: [&'static str; 3] = ["json", "resume", "resilient"];

    pub fn parse(args: &[String]) -> Result<Parsed, String> {
        let mut values = HashMap::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let key = match arg.as_str() {
                "-i" => "input".to_string(),
                "-o" => "output".to_string(),
                s if s.starts_with("--") => s[2..].to_string(),
                other => return Err(format!("unexpected argument {other:?}")),
            };
            if Self::FLAGS.contains(&key.as_str()) {
                values.insert(key, "true".to_string());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("option --{key} needs a value"))?;
            values.insert(key, value.clone());
        }
        Ok(Parsed { values })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    pub fn codec(&self) -> Result<CodecId, String> {
        let name = self.get("codec").ok_or("missing --codec")?;
        CodecId::from_name(name).ok_or_else(|| format!("unknown codec {name:?}"))
    }

    pub fn sequence(&self) -> Result<SequenceId, String> {
        let name = self.get("sequence").ok_or("missing --sequence")?;
        SequenceId::from_name(name).ok_or_else(|| format!("unknown sequence {name:?}"))
    }

    /// The raw `--sequence` value, for commands that accept generators
    /// beyond the four catalog clips (e.g. `ladder`'s `screen` source).
    pub fn sequence_name(&self) -> Option<&str> {
        self.get("sequence")
    }

    pub fn resolution(&self) -> Result<Resolution, String> {
        parse_resolution(self.get("resolution").unwrap_or("576p25"))
    }

    /// `--resolution` when explicitly given (commands with a
    /// command-specific default, like `serve-bench`).
    pub fn resolution_opt(&self) -> Result<Option<Resolution>, String> {
        self.get("resolution").map(parse_resolution).transpose()
    }

    pub fn frames(&self) -> Result<u32, String> {
        match self.get("frames") {
            None => Ok(100),
            Some(v) => v
                .parse::<u32>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("bad --frames {v:?}")),
        }
    }

    pub fn qscale(&self) -> Result<u16, String> {
        match self.get("qscale") {
            None => Ok(5),
            Some(v) => v
                .parse::<u16>()
                .ok()
                .filter(|&q| (1..=62).contains(&q))
                .ok_or_else(|| format!("bad --qscale {v:?} (1..=62)")),
        }
    }

    pub fn simd(&self) -> Result<SimdLevel, String> {
        match self.get("simd") {
            // Default honours the HDVB_SIMD env override, then runtime
            // CPU detection.
            None => Ok(SimdLevel::preferred()),
            Some(v) => SimdLevel::parse(v)
                .ok_or_else(|| format!("bad --simd {v:?} (scalar|sse2|avx2|auto)")),
        }
    }

    /// Whether `--json` was passed (machine-readable `BENCH_*.json`
    /// output for `bench`, `kernels` and `figure1`).
    pub fn json(&self) -> bool {
        self.get("json") == Some("true")
    }

    pub fn b_frames(&self) -> Result<u8, String> {
        match self.get("b-frames") {
            None => Ok(2),
            Some(v) => v
                .parse::<u8>()
                .ok()
                .filter(|&b| b <= 4)
                .ok_or_else(|| format!("bad --b-frames {v:?} (0..=4)")),
        }
    }

    pub fn scale(&self) -> Result<u32, String> {
        match self.get("scale") {
            None => Ok(1),
            Some(v) => v
                .parse::<u32>()
                .ok()
                .filter(|&s| s >= 1)
                .ok_or_else(|| format!("bad --scale {v:?}")),
        }
    }

    /// Worker threads for the parallel runner; `0` (or `auto`, the
    /// default) means the machine's available parallelism.
    pub fn threads(&self) -> Result<usize, String> {
        match self.get("threads") {
            None | Some("auto") => Ok(0),
            Some(v) => v
                .parse::<usize>()
                .ok()
                .filter(|&n| (1..=512).contains(&n))
                .ok_or_else(|| format!("bad --threads {v:?} (1..=512 or auto)")),
        }
    }

    pub fn input(&self) -> Option<&str> {
        self.get("input")
    }

    /// `--seconds <n>`: wall-clock budget for the `fuzz` mutation loop.
    pub fn seconds(&self) -> Result<u64, String> {
        match self.get("seconds") {
            None => Ok(60),
            Some(v) => v
                .parse::<u64>()
                .ok()
                .filter(|&s| (1..=86_400).contains(&s))
                .ok_or_else(|| format!("bad --seconds {v:?} (1..=86400)")),
        }
    }

    /// `--seed <n>`: deterministic PRNG seed for the `fuzz` command.
    pub fn seed(&self) -> Result<u64, String> {
        match self.get("seed") {
            None => Ok(1),
            Some(v) => v.parse::<u64>().map_err(|_| format!("bad --seed {v:?}")),
        }
    }

    /// `--rungs WxH,WxH,...`: explicit ladder rung resolutions, highest
    /// first by convention. `None` means derive the standard ladder
    /// from the source geometry.
    pub fn rungs(&self) -> Result<Option<Vec<Resolution>>, String> {
        match self.get("rungs") {
            None => Ok(None),
            Some(v) => {
                let rungs: Vec<Resolution> = v
                    .split(',')
                    .map(|t| parse_resolution(t.trim()))
                    .collect::<Result<_, _>>()?;
                if rungs.is_empty() || rungs.len() > 8 {
                    return Err(format!("bad --rungs {v:?} (1..=8 resolutions)"));
                }
                Ok(Some(rungs))
            }
        }
    }

    /// `--switch N`: ladder segment length in frames (the switching
    /// granularity; must be a multiple of the GOP length). `None`
    /// means the command's GOP-derived default.
    pub fn switch_interval(&self) -> Result<Option<u32>, String> {
        match self.get("switch") {
            None => Ok(None),
            Some(v) => v
                .parse::<u32>()
                .ok()
                .filter(|&n| (1..=100_000).contains(&n))
                .map(Some)
                .ok_or_else(|| format!("bad --switch {v:?}")),
        }
    }

    /// `--corpus <dir>`: fuzz corpus directory (replayed, failures
    /// persisted).
    pub fn corpus(&self) -> Option<&str> {
        self.get("corpus")
    }

    /// `--write-golden <dir>`: regenerate the checked-in golden vectors
    /// into a directory and exit.
    pub fn write_golden(&self) -> Option<&str> {
        self.get("write-golden")
    }

    /// `--trace <out.json>`: enable the profiling subsystem for the run
    /// and write a chrome://tracing / Perfetto-loadable trace there.
    pub fn trace(&self) -> Option<&str> {
        self.get("trace")
    }

    pub fn output(&self) -> Option<&str> {
        self.get("output")
    }

    /// `--cell-timeout <secs>`: per-cell wall-clock budget for the
    /// fault-tolerant sweeps. `auto` (the default) derives the budget
    /// from resolution and frame count; `0` or `off` disables it.
    pub fn cell_timeout(&self) -> Result<hdvb_core::CellTimeout, String> {
        match self.get("cell-timeout") {
            None | Some("auto") => Ok(hdvb_core::CellTimeout::Auto),
            Some("0") | Some("off") => Ok(hdvb_core::CellTimeout::Off),
            Some(v) => v
                .parse::<u64>()
                .ok()
                .filter(|&s| s >= 1)
                .map(|s| hdvb_core::CellTimeout::Fixed(std::time::Duration::from_secs(s)))
                .ok_or_else(|| format!("bad --cell-timeout {v:?} (seconds, off or auto)")),
        }
    }

    /// `--max-retries <n>`: extra attempts for a failed or panicked
    /// sweep cell (timeouts are never retried within a run).
    pub fn max_retries(&self) -> Result<u32, String> {
        match self.get("max-retries") {
            None => Ok(2),
            Some(v) => v
                .parse::<u32>()
                .ok()
                .filter(|&n| n <= 10)
                .ok_or_else(|| format!("bad --max-retries {v:?} (0..=10)")),
        }
    }

    /// `--journal <path>`: append-only sweep journal for
    /// checkpoint/resume of `table5` and `figure1` runs.
    pub fn journal(&self) -> Option<&str> {
        self.get("journal")
    }

    /// `--resume`: load the `--journal` file before running and skip
    /// every cell it already records as completed.
    pub fn resume(&self) -> bool {
        self.get("resume") == Some("true")
    }

    /// `--roundtrips <n>`: encoder round-trip cases for the `fuzz`
    /// command's encoder-side oracle (`0` disables it).
    pub fn roundtrips(&self) -> Result<u64, String> {
        match self.get("roundtrips") {
            None => Ok(16),
            Some(v) => v
                .parse::<u64>()
                .ok()
                .filter(|&n| n <= 1_000_000)
                .ok_or_else(|| format!("bad --roundtrips {v:?} (0..=1000000)")),
        }
    }

    /// `--resilient`: decode/serve keep going past corrupt packets,
    /// dropping them with a warning instead of aborting.
    pub fn resilient(&self) -> bool {
        self.get("resilient") == Some("true")
    }

    /// `--codec` when explicitly given (`serve-bench` runs all three
    /// codecs when it is absent).
    pub fn codec_opt(&self) -> Result<Option<CodecId>, String> {
        match self.get("codec") {
            None => Ok(None),
            Some(name) => CodecId::from_name(name)
                .map(Some)
                .ok_or_else(|| format!("unknown codec {name:?}")),
        }
    }

    /// `--sessions <n>`: concurrent serve-bench sessions.
    pub fn sessions(&self) -> Result<u32, String> {
        match self.get("sessions") {
            None => Ok(8),
            Some(v) => v
                .parse::<u32>()
                .ok()
                .filter(|&n| (1..=4096).contains(&n))
                .ok_or_else(|| format!("bad --sessions {v:?} (1..=4096)")),
        }
    }

    /// `--fps <n>`: offered per-session input rate for `serve-bench`.
    pub fn fps(&self) -> Result<u32, String> {
        match self.get("fps") {
            None => Ok(30),
            Some(v) => v
                .parse::<u32>()
                .ok()
                .filter(|&n| (1..=100_000).contains(&n))
                .ok_or_else(|| format!("bad --fps {v:?} (1..=100000)")),
        }
    }

    /// `--duration <secs>`: serve-bench schedule length (fractional
    /// seconds allowed).
    pub fn duration(&self) -> Result<std::time::Duration, String> {
        match self.get("duration") {
            None => Ok(std::time::Duration::from_secs(5)),
            Some(v) => v
                .parse::<f64>()
                .ok()
                .filter(|&s| s > 0.0 && s <= 86_400.0)
                .map(std::time::Duration::from_secs_f64)
                .ok_or_else(|| format!("bad --duration {v:?} (seconds, 0 < s <= 86400)")),
        }
    }

    /// `--queue-cap <n>`: per-session input queue capacity.
    pub fn queue_cap(&self) -> Result<usize, String> {
        match self.get("queue-cap") {
            None => Ok(8),
            Some(v) => v
                .parse::<usize>()
                .ok()
                .filter(|&n| (1..=65_536).contains(&n))
                .ok_or_else(|| format!("bad --queue-cap {v:?} (1..=65536)")),
        }
    }

    /// `--queue-policy <block|drop-oldest>`: session backpressure
    /// policy.
    pub fn queue_policy(&self) -> Result<hdvb_serve::OverflowPolicy, String> {
        match self.get("queue-policy") {
            None => Ok(hdvb_serve::OverflowPolicy::Block),
            Some(v) => hdvb_serve::OverflowPolicy::parse(v)
                .ok_or_else(|| format!("bad --queue-policy {v:?} (block|drop-oldest)")),
        }
    }

    /// `--mode <encode|decode|transcode>`: serve-bench workload
    /// direction.
    pub fn serve_mode(&self) -> Result<hdvb_serve::ServeMode, String> {
        match self.get("mode") {
            None => Ok(hdvb_serve::ServeMode::Encode),
            Some(v) => hdvb_serve::ServeMode::parse(v)
                .ok_or_else(|| format!("bad --mode {v:?} (encode|decode|transcode)")),
        }
    }

    /// `--bind <addr>`: `serve` listens for TCP sessions here instead
    /// of running one local session.
    pub fn bind(&self) -> Option<&str> {
        self.get("bind")
    }

    /// `--addr <host:port>`: the server a `connect` client dials.
    pub fn addr(&self) -> Result<&str, String> {
        self.get("addr").ok_or_else(|| "missing --addr".to_string())
    }

    /// `--priority <live|batch>`: scheduling class for `connect`.
    pub fn priority(&self) -> Result<hdvb_core::Priority, String> {
        match self.get("priority") {
            None => Ok(hdvb_core::Priority::Batch),
            Some(v) => hdvb_core::Priority::from_name(v)
                .ok_or_else(|| format!("bad --priority {v:?} (live|batch)")),
        }
    }

    /// `--slo-p99 <ms>`: enables SLO admission control on a TCP serve.
    pub fn slo_p99(&self) -> Result<Option<std::time::Duration>, String> {
        match self.get("slo-p99") {
            None => Ok(None),
            Some(v) => v
                .parse::<f64>()
                .ok()
                .filter(|&ms| ms > 0.0 && ms <= 600_000.0)
                .map(|ms| Some(std::time::Duration::from_secs_f64(ms / 1e3)))
                .ok_or_else(|| format!("bad --slo-p99 {v:?} (milliseconds)")),
        }
    }

    /// `--slo-min-samples <n>`: rolling-window warm-up grace.
    pub fn slo_min_samples(&self) -> Result<u64, String> {
        match self.get("slo-min-samples") {
            None => Ok(50),
            Some(v) => v
                .parse::<u64>()
                .map_err(|_| format!("bad --slo-min-samples {v:?}")),
        }
    }

    /// `--batch-headroom <f>`: batch admission threshold as a fraction
    /// of the SLO, in `(0, 1]`.
    pub fn batch_headroom(&self) -> Result<f64, String> {
        match self.get("batch-headroom") {
            None => Ok(0.7),
            Some(v) => v
                .parse::<f64>()
                .ok()
                .filter(|&f| f > 0.0 && f <= 1.0)
                .ok_or_else(|| format!("bad --batch-headroom {v:?} (0 < f <= 1)")),
        }
    }

    /// `--rate <n>`: per-connection token-bucket shaping, inputs/s.
    pub fn rate(&self) -> Result<Option<u32>, String> {
        match self.get("rate") {
            None => Ok(None),
            Some(v) => v
                .parse::<u32>()
                .ok()
                .filter(|&n| (1..=1_000_000).contains(&n))
                .map(Some)
                .ok_or_else(|| format!("bad --rate {v:?} (1..=1000000)")),
        }
    }

    /// `--heartbeat-ms <ms>`: PING/PONG interval for TCP serves and
    /// chaos campaigns. `0` disables heartbeats and liveness reaping.
    pub fn heartbeat_ms(&self, default_ms: u64) -> Result<std::time::Duration, String> {
        match self.get("heartbeat-ms") {
            None => Ok(std::time::Duration::from_millis(default_ms)),
            Some(v) => v
                .parse::<u64>()
                .ok()
                .filter(|&ms| ms <= 600_000)
                .map(std::time::Duration::from_millis)
                .ok_or_else(|| format!("bad --heartbeat-ms {v:?} (0..=600000)")),
        }
    }

    /// `--faults <plan>`: a seeded wire fault plan in the
    /// `HDVB_NET_FAULTS` grammar
    /// (`drop@i,truncate@i:b,stall@i:ms,garble@i:bit,seed=n`).
    /// Validated here so a typo fails before any socket opens.
    pub fn faults_spec(&self) -> Result<Option<&str>, String> {
        match self.get("faults") {
            None => Ok(None),
            Some(v) => hdvb_net::NetFaultPlan::parse(v)
                .map(|_| Some(v))
                .map_err(|e| format!("bad --faults {v:?}: {e}")),
        }
    }

    /// `--retries <n>`: reconnect budget for the chaos client.
    pub fn retries(&self) -> Result<u32, String> {
        match self.get("retries") {
            None => Ok(16),
            Some(v) => v
                .parse::<u32>()
                .ok()
                .filter(|&n| n <= 10_000)
                .ok_or_else(|| format!("bad --retries {v:?} (0..=10000)")),
        }
    }

    /// `--trials <n>`: how many faulted runs a chaos campaign executes.
    pub fn trials(&self) -> Result<u32, String> {
        match self.get("trials") {
            None => Ok(1),
            Some(v) => v
                .parse::<u32>()
                .ok()
                .filter(|&n| (1..=64).contains(&n))
                .ok_or_else(|| format!("bad --trials {v:?} (1..=64)")),
        }
    }

    /// `--sessions <a,b,c>`: the serve-load sweep axis (comma-separated
    /// session counts).
    pub fn sessions_list(&self) -> Result<Vec<u32>, String> {
        match self.get("sessions") {
            None => Ok(vec![1, 2, 4, 8]),
            Some(v) => v
                .split(',')
                .map(|t| {
                    t.trim()
                        .parse::<u32>()
                        .ok()
                        .filter(|&n| (1..=4096).contains(&n))
                        .ok_or_else(|| {
                            format!("bad --sessions {v:?} (comma-separated, each 1..=4096)")
                        })
                })
                .collect(),
        }
    }

    pub fn part(&self) -> Result<&str, String> {
        let p = self.get("part").unwrap_or("all");
        if ["a", "b", "c", "d", "all"].contains(&p) {
            Ok(p)
        } else {
            Err(format!("bad --part {p:?} (a|b|c|d|all)"))
        }
    }
}

/// Parses `"576p25"`, `"720p25"`, `"1088p25"` or `"<W>x<H>"`.
pub fn parse_resolution(s: &str) -> Result<Resolution, String> {
    match s {
        "576p25" | "dvd" => Ok(Resolution::DVD_576),
        "720p25" | "hd720" => Ok(Resolution::HD_720),
        "1088p25" | "1080p25" | "hd1088" => Ok(Resolution::HD_1088),
        custom => {
            let (w, h) = custom
                .split_once('x')
                .ok_or_else(|| format!("bad resolution {custom:?}"))?;
            let w: u32 = w.parse().map_err(|_| format!("bad width in {custom:?}"))?;
            let h: u32 = h.parse().map_err(|_| format!("bad height in {custom:?}"))?;
            if w < 16
                || h < 16
                || !w.is_multiple_of(2)
                || !h.is_multiple_of(2)
                || w > 16384
                || h > 16384
            {
                return Err(format!("unsupported resolution {custom:?}"));
            }
            Ok(Resolution::new(w, h))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(args: &[&str]) -> Parsed {
        Parsed::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parses_named_resolutions() {
        assert_eq!(parse_resolution("576p25").unwrap(), Resolution::DVD_576);
        assert_eq!(parse_resolution("720p25").unwrap(), Resolution::HD_720);
        assert_eq!(parse_resolution("1088p25").unwrap(), Resolution::HD_1088);
        assert_eq!(
            parse_resolution("320x240").unwrap(),
            Resolution::new(320, 240)
        );
        assert!(parse_resolution("bogus").is_err());
        assert!(parse_resolution("15x20").is_err());
    }

    #[test]
    fn defaults() {
        let p = parsed(&[]);
        assert_eq!(p.frames().unwrap(), 100);
        assert_eq!(p.qscale().unwrap(), 5);
        assert_eq!(p.b_frames().unwrap(), 2);
        assert_eq!(p.scale().unwrap(), 1);
        assert_eq!(p.threads().unwrap(), 0);
    }

    #[test]
    fn threads_option() {
        assert_eq!(parsed(&["--threads", "4"]).threads().unwrap(), 4);
        assert_eq!(parsed(&["--threads", "auto"]).threads().unwrap(), 0);
        assert!(parsed(&["--threads", "0"]).threads().is_err());
        assert!(parsed(&["--threads", "lots"]).threads().is_err());
    }

    #[test]
    fn option_values() {
        let p = parsed(&[
            "--codec", "h264", "--frames", "12", "--simd", "scalar", "-o", "out.hvb",
        ]);
        assert_eq!(p.codec().unwrap(), CodecId::H264);
        assert_eq!(p.frames().unwrap(), 12);
        assert_eq!(p.simd().unwrap(), SimdLevel::Scalar);
        assert_eq!(p.output(), Some("out.hvb"));
        assert!(!p.json());
    }

    #[test]
    fn simd_tier_names() {
        assert_eq!(parsed(&["--simd", "sse2"]).simd().unwrap(), SimdLevel::Sse2);
        assert_eq!(parsed(&["--simd", "avx2"]).simd().unwrap(), SimdLevel::Avx2);
        assert_eq!(
            parsed(&["--simd", "auto"]).simd().unwrap(),
            SimdLevel::detect()
        );
        // "simd" stays accepted as the paper-legend spelling for the
        // detected accelerated tier.
        assert_eq!(
            parsed(&["--simd", "simd"]).simd().unwrap(),
            SimdLevel::detect()
        );
        assert!(parsed(&["--simd", "avx512"]).simd().is_err());
    }

    #[test]
    fn json_is_a_bare_flag() {
        let p = parsed(&["--json", "--frames", "3"]);
        assert!(p.json());
        assert_eq!(p.frames().unwrap(), 3);
    }

    #[test]
    fn fault_tolerance_options() {
        let p = parsed(&[]);
        assert_eq!(p.cell_timeout().unwrap(), hdvb_core::CellTimeout::Auto);
        assert_eq!(p.max_retries().unwrap(), 2);
        assert_eq!(p.journal(), None);
        assert!(!p.resume());
        assert_eq!(p.roundtrips().unwrap(), 16);

        let p = parsed(&[
            "--cell-timeout",
            "90",
            "--max-retries",
            "0",
            "--journal",
            "sweep.journal",
            "--resume",
            "--roundtrips",
            "5",
        ]);
        assert_eq!(
            p.cell_timeout().unwrap(),
            hdvb_core::CellTimeout::Fixed(std::time::Duration::from_secs(90))
        );
        assert_eq!(p.max_retries().unwrap(), 0);
        assert_eq!(p.journal(), Some("sweep.journal"));
        assert!(p.resume());
        assert_eq!(p.roundtrips().unwrap(), 5);

        assert_eq!(
            parsed(&["--cell-timeout", "off"]).cell_timeout().unwrap(),
            hdvb_core::CellTimeout::Off
        );
        assert!(parsed(&["--cell-timeout", "soon"]).cell_timeout().is_err());
        assert!(parsed(&["--max-retries", "99"]).max_retries().is_err());
    }

    #[test]
    fn serve_options() {
        let p = parsed(&[]);
        assert_eq!(p.sessions().unwrap(), 8);
        assert_eq!(p.fps().unwrap(), 30);
        assert_eq!(p.duration().unwrap(), std::time::Duration::from_secs(5));
        assert_eq!(p.queue_cap().unwrap(), 8);
        assert_eq!(p.queue_policy().unwrap(), hdvb_serve::OverflowPolicy::Block);
        assert_eq!(p.serve_mode().unwrap(), hdvb_serve::ServeMode::Encode);
        assert_eq!(p.codec_opt().unwrap(), None);
        assert_eq!(p.resolution_opt().unwrap(), None);
        assert!(!p.resilient());

        let p = parsed(&[
            "--sessions",
            "64",
            "--fps",
            "25",
            "--duration",
            "0.5",
            "--queue-cap",
            "4",
            "--queue-policy",
            "drop-oldest",
            "--mode",
            "transcode",
            "--codec",
            "h264",
            "--resilient",
        ]);
        assert_eq!(p.sessions().unwrap(), 64);
        assert_eq!(p.fps().unwrap(), 25);
        assert_eq!(p.duration().unwrap(), std::time::Duration::from_millis(500));
        assert_eq!(p.queue_cap().unwrap(), 4);
        assert_eq!(
            p.queue_policy().unwrap(),
            hdvb_serve::OverflowPolicy::DropOldest
        );
        assert_eq!(p.serve_mode().unwrap(), hdvb_serve::ServeMode::Transcode);
        assert_eq!(p.codec_opt().unwrap(), Some(CodecId::H264));
        assert!(p.resilient());

        assert!(parsed(&["--sessions", "0"]).sessions().is_err());
        assert!(parsed(&["--duration", "-1"]).duration().is_err());
        assert!(parsed(&["--queue-policy", "tail-drop"])
            .queue_policy()
            .is_err());
        assert!(parsed(&["--mode", "replay"]).serve_mode().is_err());
    }

    #[test]
    fn bad_values_are_reported() {
        let p = parsed(&["--codec", "vp9"]);
        assert!(p.codec().is_err());
        let p = parsed(&["--qscale", "0"]);
        assert!(p.qscale().is_err());
        assert!(Parsed::parse(&["--frames".to_string()]).is_err());
        assert!(Parsed::parse(&["stray".to_string()]).is_err());
    }
}
