//! The `hdvb` subcommand implementations.

use crate::args::Parsed;
use hdvb_bench::kernelbench;
use hdvb_core::{
    cpu_model, create_encoder, decode_sequence, encode_sequence, encode_sequence_parallel,
    figure1_markdown, machine_attribution, measure_figure1_row, measure_rd_point, read_stream,
    table5_markdown, write_stream, CodecId, CodingOptions, FaultPlan, Figure1Part, Figure1Row,
    FtSweepReport, Packet, ParallelRunner, StreamHeader, SweepPolicy,
};
use hdvb_dsp::SimdLevel;
use hdvb_frame::{Frame, Resolution, SequencePsnr, VideoFormat, Y4mReader, Y4mWriter};
use hdvb_par::ThreadPool;
use hdvb_seq::{Sequence, SequenceId};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::time::Instant;

type CmdResult = Result<(), String>;

fn options_from(p: &Parsed) -> Result<CodingOptions, String> {
    Ok(CodingOptions::default()
        .with_qscale(p.qscale()?)
        .with_b_frames(p.b_frames()?)
        .with_simd(p.simd()?))
}

/// Arms the profiling subsystem when `--trace <out.json>` was passed.
/// Drop writes the chrome trace and prints the stage summary, so every
/// command exit path (including errors) still produces the artefacts.
struct TraceSession<'a> {
    path: Option<&'a str>,
}

impl<'a> TraceSession<'a> {
    fn start(p: &'a Parsed) -> TraceSession<'a> {
        let path = p.trace();
        if path.is_some() {
            hdvb_trace::reset();
            hdvb_trace::set_enabled(true);
        }
        TraceSession { path }
    }
}

impl Drop for TraceSession<'_> {
    fn drop(&mut self) {
        let Some(path) = self.path else { return };
        hdvb_trace::set_enabled(false);
        let report = hdvb_trace::collect();
        eprintln!();
        eprint!("{}", report.summary_table());
        match report.write_chrome_trace(path) {
            Ok(()) => eprintln!("wrote chrome trace to {path} (open in ui.perfetto.dev)"),
            Err(e) => eprintln!("error: cannot write trace {path}: {e}"),
        }
    }
}

pub fn list_codecs() -> CmdResult {
    println!("codec   paper encoder   paper decoder");
    for c in CodecId::ALL {
        println!(
            "{:<7} {:<15} {}",
            c.name(),
            c.paper_encoder(),
            c.paper_decoder()
        );
    }
    Ok(())
}

pub fn list_sequences() -> CmdResult {
    println!("HD-VideoBench input sequences (paper Table III), 25 fps, 100 frames:");
    for s in SequenceId::ALL {
        println!("  {:<16} {}", s.name(), s.description());
    }
    println!("resolutions: 576p25 (720x576), 720p25 (1280x720), 1088p25 (1920x1088)");
    Ok(())
}

pub fn generate(p: &Parsed) -> CmdResult {
    let seq = Sequence::new(p.sequence()?, p.resolution()?);
    let frames = p.frames()?;
    let path = p.output().ok_or("missing --output for generate")?;
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut writer = Y4mWriter::new(
        BufWriter::new(file),
        seq.resolution(),
        seq.format().frame_rate,
    );
    for i in 0..frames {
        writer
            .write_frame(&seq.frame(i))
            .map_err(|e| format!("write failed: {e}"))?;
    }
    writer
        .into_inner()
        .map_err(|e| format!("flush failed: {e}"))?;
    println!("wrote {frames} frames of {} to {path}", seq.id());
    Ok(())
}

/// Reads every frame of a Y4M file.
fn read_y4m(path: &str) -> Result<(VideoFormat, Vec<Frame>), String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut reader =
        Y4mReader::new(BufReader::new(file)).map_err(|e| format!("bad y4m {path}: {e}"))?;
    let format = VideoFormat {
        resolution: reader.resolution(),
        frame_rate: reader.frame_rate(),
    };
    let mut frames = Vec::new();
    while let Some(f) = reader
        .read_frame()
        .map_err(|e| format!("read failed: {e}"))?
    {
        frames.push(f);
    }
    Ok((format, frames))
}

pub fn encode(p: &Parsed) -> CmdResult {
    let _trace = TraceSession::start(p);
    let codec = p.codec()?;
    let options = options_from(p)?;
    let out_path = p.output().ok_or("missing --output for encode")?;

    let (format, packets, frames, elapsed) = if let Some(input) = p.input() {
        // Encode an external .y4m file, streaming: one reused frame
        // buffer and write-into-caller packet emission, so memory stays
        // flat no matter how long the clip is (the reported fps
        // includes read I/O, which is the honest number for a file
        // transcode).
        let file = File::open(input).map_err(|e| format!("cannot open {input}: {e}"))?;
        let mut reader =
            Y4mReader::new(BufReader::new(file)).map_err(|e| format!("bad y4m {input}: {e}"))?;
        let format = VideoFormat {
            resolution: reader.resolution(),
            frame_rate: reader.frame_rate(),
        };
        let mut enc =
            create_encoder(codec, format.resolution, &options).map_err(|e| e.to_string())?;
        let mut packets: Vec<Packet> = Vec::new();
        let mut frame = Frame::new(format.resolution.width(), format.resolution.height());
        let mut frames_in = 0u32;
        let t0 = Instant::now();
        while reader
            .read_frame_into(&mut frame)
            .map_err(|e| format!("read failed: {e}"))?
        {
            enc.encode_frame_into(&frame, &mut packets)
                .map_err(|e| e.to_string())?;
            frames_in += 1;
        }
        enc.finish_into(&mut packets).map_err(|e| e.to_string())?;
        (format, packets, frames_in, t0.elapsed())
    } else {
        // Encode a synthetic benchmark sequence, GOP-parallel when more
        // than one thread is requested.
        let seq = Sequence::new(p.sequence()?, p.resolution()?);
        let threads = resolve_threads(p)?;
        let result = if threads > 1 {
            let pool = ThreadPool::new(threads);
            let (result, stats) =
                encode_sequence_parallel(codec, seq, p.frames()?, &options, &pool, threads)
                    .map_err(|e| e.to_string())?;
            eprintln!(
                "GOP-parallel encode: {} chunks on {threads} threads, wall {:.2}s, cpu {:.2}s",
                stats.chunks,
                stats.wall.as_secs_f64(),
                stats.cpu.as_secs_f64()
            );
            result
        } else {
            encode_sequence(codec, seq, p.frames()?, &options).map_err(|e| e.to_string())?
        };
        (seq.format(), result.packets, result.frames, result.elapsed)
    };

    let bits: u64 = packets.iter().map(Packet::bits).sum();
    let header = StreamHeader { codec, format };
    let file = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    write_stream(BufWriter::new(file), &header, &packets).map_err(|e| e.to_string())?;
    let fps = f64::from(frames) / elapsed.as_secs_f64().max(1e-9);
    let kbps = bits as f64 * format.frame_rate.as_f64() / f64::from(frames.max(1)) / 1000.0;
    println!(
        "{codec}: encoded {frames} frames in {:.2}s ({fps:.2} fps), {kbps:.0} kbit/s -> {out_path}",
        elapsed.as_secs_f64()
    );
    Ok(())
}

pub fn decode(p: &Parsed) -> CmdResult {
    let _trace = TraceSession::start(p);
    let in_path = p.input().ok_or("missing --input for decode")?;
    let file = File::open(in_path).map_err(|e| format!("cannot open {in_path}: {e}"))?;
    let (header, packets) = read_stream(BufReader::new(file)).map_err(|e| e.to_string())?;
    let simd = p.simd()?;
    let result = if p.resilient() {
        // Drop-and-continue: a corrupt packet costs its frame(s) and a
        // warning, not the stream.
        let t0 = Instant::now();
        let resilient = hdvb_core::decode_sequence_resilient(header.codec, &packets, simd);
        let elapsed = t0.elapsed();
        for (index, err) in &resilient.dropped {
            eprintln!("warning: dropped corrupt packet #{index}: {err}");
        }
        if !resilient.dropped.is_empty() {
            eprintln!(
                "warning: {} of {} packets dropped, {} frames recovered",
                resilient.dropped.len(),
                packets.len(),
                resilient.frames.len()
            );
        }
        hdvb_core::DecodeResult {
            frames: resilient.frames,
            elapsed,
        }
    } else {
        decode_sequence(header.codec, &packets, simd).map_err(|e| e.to_string())?
    };
    println!(
        "{}: decoded {} frames in {:.3}s ({:.2} fps, {})",
        header.codec,
        result.frames.len(),
        result.elapsed.as_secs_f64(),
        result.decode_fps(),
        simd.label(),
    );
    if let Some(out_path) = p.output() {
        let file = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
        let mut writer = Y4mWriter::new(
            BufWriter::new(file),
            header.format.resolution,
            header.format.frame_rate,
        );
        for f in &result.frames {
            writer
                .write_frame(f)
                .map_err(|e| format!("write failed: {e}"))?;
        }
        writer
            .into_inner()
            .map_err(|e| format!("flush failed: {e}"))?;
        println!("wrote {out_path}");
    }
    Ok(())
}

/// PSNR between a decoded `.y4m` (via `--input`) and either a second
/// `.y4m` (via `--output` used as the reference path) or a regenerated
/// synthetic sequence (via `--sequence`).
pub fn psnr(p: &Parsed) -> CmdResult {
    let in_path = p.input().ok_or("missing --input for psnr")?;
    let (format, distorted) = read_y4m(in_path)?;
    let mut acc = SequencePsnr::new();
    if let Some(ref_path) = p.output() {
        let (_, reference) = read_y4m(ref_path)?;
        if reference.len() < distorted.len() {
            return Err(format!(
                "reference has {} frames, distorted has {}",
                reference.len(),
                distorted.len()
            ));
        }
        for (r, d) in reference.iter().zip(&distorted) {
            acc.add(r, d);
        }
    } else {
        let seq = Sequence::new(p.sequence()?, format.resolution);
        for (i, d) in distorted.iter().enumerate() {
            acc.add(&seq.frame(i as u32), d);
        }
    }
    println!(
        "{} frames: Y {:.3} dB  Cb {:.3} dB  Cr {:.3} dB  combined {:.3} dB",
        acc.frames(),
        acc.y_psnr(),
        acc.cb_psnr(),
        acc.cr_psnr(),
        acc.combined_psnr()
    );
    Ok(())
}

/// Resolves `--threads` to a concrete worker count (`0` = machine).
fn resolve_threads(p: &Parsed) -> Result<usize, String> {
    Ok(match p.threads()? {
        0 => ThreadPool::default_threads(),
        n => n,
    })
}

pub fn bench(p: &Parsed) -> CmdResult {
    let _trace = TraceSession::start(p);
    let codec = p.codec()?;
    let seq = Sequence::new(p.sequence()?, p.resolution()?);
    let options = options_from(p)?;
    let frames = p.frames()?;
    let threads = resolve_threads(p)?;
    if threads > 1 {
        // GOP-parallel encode: N concurrent encoder instances on
        // GOP-aligned chunks, spliced into one stream.
        let pool = ThreadPool::new(threads);
        let (enc, stats) = encode_sequence_parallel(codec, seq, frames, &options, &pool, threads)
            .map_err(|e| e.to_string())?;
        let dec = decode_sequence(codec, &enc.packets, options.simd).map_err(|e| e.to_string())?;
        let mut acc = SequencePsnr::new();
        for (i, d) in dec.frames.iter().enumerate() {
            acc.add(&seq.frame(i as u32), d);
        }
        println!(
            "{codec} {} {} {} frames ({}): encode {:.2} fps on {threads} threads \
             ({} chunks, wall {:.2}s, cpu {:.2}s, speedup {:.2}x), decode {:.2} fps, \
             {:.2} dB, {:.0} kbit/s",
            seq.id(),
            seq.resolution().label(),
            frames,
            options.simd.label(),
            enc.encode_fps(),
            stats.chunks,
            stats.wall.as_secs_f64(),
            stats.cpu.as_secs_f64(),
            stats.cpu.as_secs_f64() / stats.wall.as_secs_f64().max(1e-9),
            dec.decode_fps(),
            acc.y_psnr(),
            enc.bitrate_kbps(),
        );
        return bench_json_outputs(p, codec, seq, frames, &options);
    }
    let t = measure_figure1_row(codec, seq, frames, &options).map_err(|e| e.to_string())?;
    let rd = measure_rd_point(codec, seq, frames, &options).map_err(|e| e.to_string())?;
    println!(
        "{codec} {} {} {} frames ({}): encode {:.2} fps, decode {:.2} fps, \
         {:.2} dB (ssim {:.4}), {:.0} kbit/s",
        seq.id(),
        seq.resolution().label(),
        frames,
        options.simd.label(),
        t.encode_fps,
        t.decode_fps,
        rd.psnr_y,
        rd.ssim_y,
        rd.bitrate_kbps,
    );
    bench_json_outputs(p, codec, seq, frames, &options)
}

/// The `bench --json` side outputs: the kernel microbenchmark to
/// `BENCH_kernels.json` and the benched codec's encode/decode fps at
/// every supported tier to `BENCH_figure1.json`.
fn bench_json_outputs(
    p: &Parsed,
    codec: CodecId,
    seq: Sequence,
    frames: u32,
    options: &CodingOptions,
) -> CmdResult {
    if !p.json() {
        return Ok(());
    }
    let krows = kernelbench::run_all();
    write_bench_file(
        "BENCH_kernels.json",
        &kernelbench::kernels_json(&krows, &cpu_model()),
    )?;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"figure1\",\n");
    out.push_str(&format!(
        "  \"cpu\": \"{}\",\n",
        kernelbench::json_escape(&cpu_model())
    ));
    out.push_str(&format!(
        "  \"auto_tier\": \"{}\",\n",
        SimdLevel::detect().tier_name()
    ));
    out.push_str(&format!("  \"frames\": {frames},\n"));
    out.push_str(&format!("  \"sequence\": \"{}\",\n", seq.id().name()));
    out.push_str("  \"rows\": [\n");
    let tiers = SimdLevel::supported_tiers();
    for (i, &tier) in tiers.iter().enumerate() {
        let t = measure_figure1_row(codec, seq, frames, &options.with_simd(tier))
            .map_err(|e| e.to_string())?;
        for (dir, fps) in [("encode", t.encode_fps), ("decode", t.decode_fps)] {
            let last = i + 1 == tiers.len() && dir == "decode";
            out.push_str(&format!(
                "    {{\"resolution\": \"{}\", \"direction\": \"{dir}\", \"tier\": \"{}\", \
                 \"codec\": \"{}\", \"fps\": {fps:.3}}}{}\n",
                seq.resolution().label(),
                tier.tier_name(),
                codec.name(),
                if last { "" } else { "," },
            ));
        }
    }
    out.push_str("  ]\n}\n");
    write_bench_file("BENCH_figure1.json", &out)
}

/// Writes a `BENCH_*.json` trajectory file into the current directory.
fn write_bench_file(path: &str, content: &str) -> CmdResult {
    std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!("wrote {path}");
    Ok(())
}

/// Runs the kernel microbenchmark at every supported tier; `--json`
/// also writes `BENCH_kernels.json`.
pub fn kernels(p: &Parsed) -> CmdResult {
    let tiers: Vec<&str> = SimdLevel::supported_tiers()
        .iter()
        .map(|t| t.tier_name())
        .collect();
    eprintln!("measuring kernels at tiers: {} ...", tiers.join(", "));
    let rows = kernelbench::run_all();
    print!("{}", kernelbench::kernels_table(&rows));
    println!();
    println!("{}", machine_attribution());
    if p.json() {
        write_bench_file(
            "BENCH_kernels.json",
            &kernelbench::kernels_json(&rows, &cpu_model()),
        )?;
    }
    Ok(())
}

/// Renders Figure 1 rows as the `BENCH_figure1.json` document (one
/// object per codec × row, so the file is trivially diffable between
/// runs).
fn figure1_json(rows: &[Figure1Row], frames: u32) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"figure1\",\n");
    out.push_str(&format!(
        "  \"cpu\": \"{}\",\n",
        kernelbench::json_escape(&cpu_model())
    ));
    out.push_str(&format!(
        "  \"auto_tier\": \"{}\",\n",
        SimdLevel::detect().tier_name()
    ));
    out.push_str(&format!("  \"frames\": {frames},\n"));
    out.push_str("  \"rows\": [\n");
    let total = rows.len() * CodecId::ALL.len();
    let mut i = 0;
    for r in rows {
        for (ci, codec) in CodecId::ALL.iter().enumerate() {
            i += 1;
            let comma = if i == total { "" } else { "," };
            // Failed/timed-out cells carry NaN; JSON has no NaN, so
            // they serialise as null.
            let fps = if r.fps[ci].is_finite() {
                format!("{:.3}", r.fps[ci])
            } else {
                "null".to_string()
            };
            out.push_str(&format!(
                "    {{\"resolution\": \"{}\", \"direction\": \"{}\", \"tier\": \"{}\", \
                 \"codec\": \"{}\", \"fps\": {fps}}}{comma}\n",
                r.resolution.label(),
                if r.decode { "decode" } else { "encode" },
                r.tier.tier_name(),
                codec.name(),
            ));
        }
    }
    out.push_str("  ]\n}\n");
    out
}

fn benchmark_resolutions(scale: u32) -> Vec<Resolution> {
    Resolution::ALL
        .iter()
        .map(|r| if scale == 1 { *r } else { r.scaled_down(scale) })
        .collect()
}

/// Builds the fault-tolerance policy shared by `table5` and `figure1`
/// from the CLI flags plus the `HDVB_FAULTS` injection env var, and
/// resolves the journal/resume paths (`--resume` implies `--journal`).
fn ft_setup(p: &Parsed) -> Result<(SweepPolicy, Option<&std::path::Path>, bool), String> {
    let faults = FaultPlan::from_env().map_err(|e| format!("bad HDVB_FAULTS: {e}"))?;
    let policy = SweepPolicy {
        max_retries: p.max_retries()?,
        cell_timeout: p.cell_timeout()?,
        seed: p.seed()?,
        faults,
        ..SweepPolicy::default()
    };
    let journal = p.journal().map(std::path::Path::new);
    let resume = p.resume();
    if resume && journal.is_none() {
        return Err("--resume requires --journal <path>".to_string());
    }
    Ok((policy, journal, resume))
}

/// Prints the fault-tolerance outcome of a sweep: the per-cell failure
/// table (stdout, it is part of the result) when anything went wrong,
/// and the execution summary (stderr).
fn report_ft(report: &FtSweepReport) {
    if !report.all_ok() || report.restored() > 0 || report.journal_bad_lines > 0 {
        println!();
        print!("{}", report.failure_summary());
    }
    eprintln!("{}", report.execution.summary());
}

pub fn table5(p: &Parsed) -> CmdResult {
    let _trace = TraceSession::start(p);
    let options = options_from(p)?;
    let frames = p.frames()?;
    let scale = p.scale()?;
    let runner = ParallelRunner::new(p.threads()?);
    let resolutions = benchmark_resolutions(scale);
    let (policy, journal, resume) = ft_setup(p)?;
    eprintln!(
        "measuring {} rate-distortion cells on {} thread(s) ...",
        resolutions.len() * SequenceId::ALL.len() * CodecId::ALL.len(),
        runner.threads()
    );
    let (rows, report) = runner
        .table5_rows_ft(
            &resolutions,
            frames,
            &options,
            &policy,
            journal,
            resume.then_some(journal).flatten(),
        )
        .map_err(|e| e.to_string())?;
    println!(
        "# Table V — rate-distortion comparison ({frames} frames, qscale {}, scale 1/{scale})",
        options.mpeg_qscale
    );
    println!();
    print!("{}", table5_markdown(&rows));
    report_ft(&report);
    Ok(())
}

pub fn figure1(p: &Parsed) -> CmdResult {
    let _trace = TraceSession::start(p);
    let options = options_from(p)?;
    let frames = p.frames()?;
    let scale = p.scale()?;
    let part = Figure1Part::from_name(p.part()?).expect("part already validated");
    let runner = ParallelRunner::new(p.threads()?);
    let resolutions = benchmark_resolutions(scale);
    eprintln!(
        "measuring figure 1 ({:?}) on {} thread(s) ...",
        part,
        runner.threads()
    );
    if runner.threads() > 1 {
        eprintln!(
            "note: fps columns are wall-clock; concurrent cells contend, \
             use --threads 1 for reference timings"
        );
    }
    let (policy, journal, resume) = ft_setup(p)?;
    let (rows, report) = runner
        .figure1_rows_ft(
            &resolutions,
            frames,
            &options,
            part,
            &policy,
            journal,
            resume.then_some(journal).flatten(),
        )
        .map_err(|e| e.to_string())?;
    println!("# Figure 1 — HD-VideoBench performance ({frames} frames, scale 1/{scale})");
    println!();
    print!("{}", figure1_markdown(&rows));
    println!("{}", machine_attribution());
    report_ft(&report);
    if p.json() {
        write_bench_file("BENCH_figure1.json", &figure1_json(&rows, frames))?;
    }
    Ok(())
}

/// `hdvb profile`: traced encode + decode of one configuration with the
/// profiling subsystem forced on, printing the per-stage attribution
/// summary (the paper's codec-phase breakdown). `--trace <out.json>`
/// additionally writes the chrome://tracing file.
pub fn profile(p: &Parsed) -> CmdResult {
    let codec = p.codec()?;
    let seq = Sequence::new(p.sequence()?, p.resolution()?);
    let options = options_from(p)?;
    let frames = p.frames()?;
    eprintln!(
        "profiling {codec} {} {} {frames} frames ({}) ...",
        seq.id(),
        seq.resolution().label(),
        options.simd.label()
    );
    hdvb_trace::reset();
    hdvb_trace::set_enabled(true);
    let t = measure_figure1_row(codec, seq, frames, &options);
    hdvb_trace::set_enabled(false);
    let report = hdvb_trace::collect();
    let t = t.map_err(|e| e.to_string())?;
    println!(
        "# hdvb profile — {codec} {} {} ({frames} frames, {})",
        seq.id(),
        seq.resolution().label(),
        options.simd.label()
    );
    println!();
    print!("{}", report.summary_table());
    println!();
    println!(
        "encode {:.2} fps, decode {:.2} fps",
        t.encode_fps, t.decode_fps
    );
    if let Some(path) = p.trace() {
        report
            .write_chrome_trace(path)
            .map_err(|e| format!("cannot write trace {path}: {e}"))?;
        println!("wrote chrome trace to {path} (open in ui.perfetto.dev)");
    }
    Ok(())
}

pub fn fuzz(p: &Parsed) -> CmdResult {
    if let Some(dir) = p.write_golden() {
        let dir = std::path::Path::new(dir);
        let vectors = hdvb_fuzz::golden_vectors();
        let count = vectors.len();
        for g in vectors {
            let stem = g.file_name();
            let stem = stem.trim_end_matches(".hvb");
            hdvb_fuzz::save_entry(dir, stem, &g.data)
                .map_err(|e| format!("cannot write golden vector {stem}: {e}"))?;
        }
        println!("wrote {count} golden vectors to {}", dir.display());
        return Ok(());
    }
    let threads = match p.threads()? {
        0 => ThreadPool::default_threads(),
        n => n,
    };
    let config = hdvb_fuzz::FuzzConfig {
        seconds: p.seconds()?,
        seed: p.seed()?,
        corpus_dir: p.corpus().map(std::path::PathBuf::from),
        threads,
        max_execs: None,
        roundtrips: p.roundtrips()?,
    };
    println!(
        "fuzzing: {}s budget, seed {}, differential over {:?} x serial/pool({threads})",
        config.seconds,
        config.seed,
        SimdLevel::supported_tiers()
    );
    // The oracle catches decoder panics with catch_unwind; silence the
    // default hook so an expected-caught panic does not spray backtraces
    // over the progress output. Restored before reporting.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = hdvb_fuzz::run_fuzz(&config);
    std::panic::set_hook(hook);
    let report = result.map_err(|e| format!("fuzz run failed: {e}"))?;
    println!(
        "ran {} encoder round trips, replayed {} entries, executed {} mutants in {:.1}s",
        report.roundtrips,
        report.replayed,
        report.executions,
        report.elapsed.as_secs_f64()
    );
    println!(
        "corpus grew to {} entries covering {} unique outcome signatures",
        report.corpus_entries, report.unique_signatures
    );
    if report.failures.is_empty() {
        println!("no panics, no cross-tier divergences");
        return Ok(());
    }
    for f in &report.failures {
        println!(
            "FAILURE {} ({} bytes): {}{}",
            f.name,
            f.data.len(),
            f.reason,
            f.saved_to
                .as_ref()
                .map(|p| format!(" [saved to {}]", p.display()))
                .unwrap_or_default()
        );
    }
    Err(format!(
        "{} failure(s) found — reproducers above",
        report.failures.len()
    ))
}

/// Formats ns as a human latency figure.
fn fmt_latency(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}us", ns as f64 / 1e3)
    }
}

/// `serve`: run one streaming session through the service layer. With
/// no `--input`, encodes a synthetic sequence (bit-identical to
/// `encode --threads 1`); with `--input <in.hvb>`, transcodes the
/// stream to `--codec` (`--resilient` drops corrupt source packets).
pub fn serve(p: &Parsed) -> CmdResult {
    use hdvb_core::{CodecSession, SessionInput};
    use hdvb_serve::{Server, ServerConfig};

    if let Some(bind) = p.bind() {
        return serve_tcp(p, bind);
    }
    let _trace = TraceSession::start(p);
    let options = options_from(p)?;
    let out_path = p.output().ok_or("missing --output for serve")?;
    let server = Server::new(ServerConfig {
        threads: p.threads()?,
        queue_capacity: p.queue_cap()?,
        policy: p.queue_policy()?,
        ..ServerConfig::default()
    });

    let (header, result, submitted) = if let Some(in_path) = p.input() {
        // Transcode: decode the container's codec, re-encode to the
        // target codec.
        let target = p.codec()?;
        let file = File::open(in_path).map_err(|e| format!("cannot open {in_path}: {e}"))?;
        let (header, packets) = read_stream(BufReader::new(file)).map_err(|e| e.to_string())?;
        let mut session =
            CodecSession::transcoder(header.codec, target, header.format.resolution, &options)
                .map_err(|e| e.to_string())?;
        if p.resilient() {
            session = session.with_resilience();
        }
        let handle = server.open(session, true);
        let submitted = packets.len() as u64;
        for packet in packets {
            if handle.submit(SessionInput::Packet(packet.data)).is_err() {
                break;
            }
        }
        handle.finish();
        let result = handle.wait();
        let header = StreamHeader {
            codec: target,
            format: header.format,
        };
        (header, result, submitted)
    } else {
        // Encode a synthetic sequence, one frame at a time.
        let codec = p.codec()?;
        let seq = Sequence::new(p.sequence()?, p.resolution()?);
        let frames = p.frames()?;
        let session =
            CodecSession::encoder(codec, seq.resolution(), &options).map_err(|e| e.to_string())?;
        let handle = server.open(session, true);
        for i in 0..frames {
            if handle.submit(SessionInput::Frame(seq.frame(i))).is_err() {
                break;
            }
        }
        handle.finish();
        let result = handle.wait();
        let header = StreamHeader {
            codec,
            format: seq.format(),
        };
        (header, result, u64::from(frames))
    };
    server.drain();

    if let Some(e) = &result.error {
        return Err(format!(
            "session failed after {} inputs: {e}",
            result.completed
        ));
    }
    if result.corrupt_dropped > 0 {
        eprintln!(
            "warning: dropped {} corrupt packets (--resilient)",
            result.corrupt_dropped
        );
    }
    let file = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    write_stream(BufWriter::new(file), &header, &result.packets).map_err(|e| e.to_string())?;
    println!(
        "{}: served {} of {submitted} inputs, {} packets out, p50 {} p99 {} -> {out_path}",
        header.codec,
        result.completed,
        result.packets.len(),
        fmt_latency(result.metrics.latency.percentile(0.50)),
        fmt_latency(result.metrics.latency.percentile(0.99)),
    );
    Ok(())
}

/// `serve --bind`: the TCP front end. Listens for wire-protocol
/// sessions for `--seconds`, then prints the fleet summary and shuts
/// down. `--slo-p99` arms admission control; `--rate` arms
/// per-connection token-bucket shaping.
fn serve_tcp(p: &Parsed, bind: &str) -> CmdResult {
    use hdvb_net::{NetConfig, NetServer, SloPolicy};
    use hdvb_serve::{PoolsReport, ServerConfig};
    use std::io::Write as _;

    let slo = p.slo_p99()?.map(|p99| {
        Ok::<_, String>(SloPolicy {
            p99,
            min_samples: p.slo_min_samples()?,
            batch_headroom: p.batch_headroom()?,
        })
    });
    let slo = match slo {
        Some(r) => Some(r?),
        None => None,
    };
    let pools_before = PoolsReport::snapshot();
    let server = NetServer::bind(
        bind,
        NetConfig {
            server: ServerConfig {
                threads: p.threads()?,
                queue_capacity: p.queue_cap()?,
                policy: p.queue_policy()?,
                ..ServerConfig::default()
            },
            slo,
            rate_limit: p.rate()?,
            simd: p.simd()?,
            heartbeat: p.heartbeat_ms(30_000)?,
            faults: hdvb_net::NetFaultPlan::from_env()
                .map_err(|e| format!("bad HDVB_NET_FAULTS: {e}"))?,
            ..NetConfig::default()
        },
    )
    .map_err(|e| format!("cannot bind {bind}: {e}"))?;
    println!("hdvb-net: listening on {}", server.local_addr());
    std::io::stdout().flush().ok();
    std::thread::sleep(std::time::Duration::from_secs(p.seconds()?));
    let stats = server.stats();
    server.shutdown();
    let pools = PoolsReport::snapshot().delta_since(&pools_before);
    println!(
        "hdvb-net: {} connections, {} disconnects, {} wire errors",
        stats.connections, stats.disconnects, stats.wire_errors,
    );
    for pr in hdvb_core::Priority::ALL {
        let i = pr.index();
        println!(
            "  {:<5} admitted {} rejected {} completed {} p50 {} p99 {}",
            pr.name(),
            stats.admitted[i],
            stats.rejected[i],
            stats.completed[i],
            fmt_latency(stats.latency[i].percentile(0.50)),
            fmt_latency(stats.latency[i].percentile(0.99)),
        );
    }
    println!(
        "  pools: frame hit {:.0}% ({}/{} takes), buffer hit {:.0}% ({}/{} takes)",
        pools.frame.hit_rate() * 100.0,
        pools.frame.hits,
        pools.frame.takes,
        pools.buffer.hit_rate() * 100.0,
        pools.buffer.hits,
        pools.buffer.takes,
    );
    Ok(())
}

/// `connect`: a TCP client for a `serve --bind` server. Without
/// `--input`, encodes a synthetic sequence remotely; with
/// `--input <in.hvb>`, transcodes the stream to `--codec`. The output
/// container is byte-identical to the same session served in-process.
///
/// The client is retry-enabled: sessions open resumable, disconnects
/// reconnect with capped seeded backoff (`--retries` bounds the
/// budget), and recovery is byte-identical to an uninterrupted run —
/// including under an `HDVB_NET_FAULTS` plan.
pub fn connect(p: &Parsed) -> CmdResult {
    use hdvb_core::{SessionInput, SessionSpec};
    use hdvb_net::{RetryClient, RetryPolicy};

    let addr = p.addr()?;
    let priority = p.priority()?;
    let out_path = p.output();
    let policy = RetryPolicy {
        max_reconnects: p.retries()?,
        seed: p.seed()?,
        ..RetryPolicy::default()
    };
    let mut client =
        RetryClient::new(addr, policy).map_err(|e| format!("cannot connect to {addr}: {e}"))?;

    let (header, result, retry, submitted) = if let Some(in_path) = p.input() {
        let target = p.codec()?;
        let file = File::open(in_path).map_err(|e| format!("cannot open {in_path}: {e}"))?;
        let (header, packets) = read_stream(BufReader::new(file)).map_err(|e| e.to_string())?;
        let mut spec = SessionSpec::transcode(header.codec, target, header.format.resolution)
            .with_qscale(p.qscale()?)
            .with_b_frames(p.b_frames()?);
        if p.resilient() {
            spec = spec.with_resilience();
        }
        client
            .open(spec, priority)
            .map_err(|e| format!("open refused: {e}"))?;
        let submitted = packets.len() as u64;
        for packet in packets {
            client
                .send_packet(packet)
                .map_err(|e| format!("send failed: {e}"))?;
        }
        let (result, retry) = client
            .finish()
            .map_err(|e| format!("session failed: {e}"))?;
        let header = StreamHeader {
            codec: target,
            format: header.format,
        };
        (header, result, retry, submitted)
    } else {
        let codec = p.codec()?;
        let seq = Sequence::new(p.sequence()?, p.resolution()?);
        let frames = p.frames()?;
        let spec = SessionSpec::encode(codec, seq.resolution())
            .with_qscale(p.qscale()?)
            .with_b_frames(p.b_frames()?);
        client
            .open(spec, priority)
            .map_err(|e| format!("open refused: {e}"))?;
        for i in 0..frames {
            client
                .send(SessionInput::Frame(seq.frame(i)))
                .map_err(|e| format!("send failed: {e}"))?;
        }
        let (result, retry) = client
            .finish()
            .map_err(|e| format!("session failed: {e}"))?;
        let header = StreamHeader {
            codec,
            format: seq.format(),
        };
        (header, result, retry, u64::from(frames))
    };

    if let Some(out_path) = out_path {
        let file = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
        write_stream(BufWriter::new(file), &header, &result.packets).map_err(|e| e.to_string())?;
    }
    let recovered = if retry.reconnects > 0 {
        format!(
            ", recovered from {} disconnects ({} inputs replayed)",
            retry.reconnects, retry.replayed_inputs,
        )
    } else {
        String::new()
    };
    println!(
        "{}: {} served {} of {submitted} inputs, {} packets back, p50 {} p99 {}{recovered}{}",
        header.codec,
        priority.name(),
        result.stats.completed,
        result.packets.len(),
        fmt_latency(result.stats.p50_ns),
        fmt_latency(result.stats.p99_ns),
        out_path.map(|o| format!(" -> {o}")).unwrap_or_default(),
    );
    Ok(())
}

/// `serve-load`: sweeps TCP client fleets against loopback servers with
/// SLO admission on, printing the latency-vs-load saturation table and
/// writing `BENCH_loadcurve.json`.
pub fn serve_load(p: &Parsed) -> CmdResult {
    use hdvb_net::{loadcurve_json, loadcurve_markdown, run_load_curve, LoadCurveSpec, SloPolicy};

    let defaults = LoadCurveSpec::default();
    let slo = SloPolicy {
        p99: p.slo_p99()?.unwrap_or(defaults.slo.p99),
        min_samples: p.slo_min_samples()?,
        batch_headroom: p.batch_headroom()?,
    };
    let spec = LoadCurveSpec {
        codec: p.codec_opt()?.unwrap_or(CodecId::Mpeg2),
        mode: p.serve_mode()?,
        session_counts: p.sessions_list()?,
        fps: p.fps()?,
        duration: p.duration()?,
        resolution: p
            .resolution_opt()?
            .unwrap_or_else(|| Resolution::new(288, 160)),
        qscale: p.qscale()?,
        b_frames: p.b_frames()?,
        queue_capacity: p.queue_cap()?,
        threads: p.threads()?,
        slo,
        rate_limit: p.rate()?,
        seed: p.seed()?,
    };
    eprintln!(
        "serve-load: {} {} sweeping sessions {:?} @ {} fps for {:.1}s/cell, SLO p99 {:.0}ms",
        spec.codec,
        spec.mode.name(),
        spec.session_counts,
        spec.fps,
        spec.duration.as_secs_f64(),
        spec.slo.p99.as_secs_f64() * 1e3,
    );
    let report = run_load_curve(&spec)?;
    println!();
    print!("{}", loadcurve_markdown(&report));
    write_bench_file("BENCH_loadcurve.json", &loadcurve_json(&report))?;
    Ok(())
}

/// `pools`: a pool-efficiency diagnostic. Serves the same small encode
/// workload twice against the global frame/bitstream pools and reports
/// each pass's take/hit/return counters — the cold pass misses while
/// the pools fill, the warm pass should run near 100% hits. A warm hit
/// rate that drifts down is a buffer leaking out of the recycle loop.
pub fn pools(p: &Parsed) -> CmdResult {
    use hdvb_core::{CodecSession, SessionInput};
    use hdvb_serve::{json_pools, PoolsReport, Server, ServerConfig};

    let codec = p.codec_opt()?.unwrap_or(CodecId::Mpeg2);
    let resolution = p
        .resolution_opt()?
        .unwrap_or_else(|| Resolution::new(288, 160));
    let options = options_from(p)?;
    let seq = Sequence::new(SequenceId::BlueSky, resolution);
    let frames = 24u32;

    let mut passes = Vec::new();
    for _pass in 0..2 {
        let before = PoolsReport::snapshot();
        let server = Server::new(ServerConfig {
            threads: p.threads()?,
            ..ServerConfig::default()
        });
        let session =
            CodecSession::encoder(codec, resolution, &options).map_err(|e| e.to_string())?;
        let handle = server.open(session, false);
        for i in 0..frames {
            let mut frame =
                hdvb_frame::FramePool::global().take(resolution.width(), resolution.height());
            frame.copy_from(&seq.frame(i));
            if handle.submit(SessionInput::Frame(frame)).is_err() {
                break;
            }
        }
        handle.finish();
        let result = handle.wait();
        server.drain();
        if let Some(e) = &result.error {
            return Err(format!("pool-check session failed: {e}"));
        }
        passes.push(PoolsReport::snapshot().delta_since(&before));
    }

    println!(
        "pool efficiency — {codec} encode, {} frames of {}x{} per pass",
        frames,
        resolution.width(),
        resolution.height(),
    );
    println!("| pass | frame takes | frame hits | frame hit% | buffer takes | buffer hits | buffer hit% |");
    println!("|------|------------:|-----------:|-----------:|-------------:|------------:|------------:|");
    for (i, d) in passes.iter().enumerate() {
        println!(
            "| {} | {} | {} | {:.0} | {} | {} | {:.0} |",
            if i == 0 { "cold" } else { "warm" },
            d.frame.takes,
            d.frame.hits,
            d.frame.hit_rate() * 100.0,
            d.buffer.takes,
            d.buffer.hits,
            d.buffer.hit_rate() * 100.0,
        );
    }
    if p.json() {
        println!(
            "{{\"schema\":\"hdvb-pools/v1\",\"cold\":{},\"warm\":{}}}",
            json_pools(&passes[0]),
            json_pools(&passes[1]),
        );
    }
    Ok(())
}

/// `serve-bench`: open-loop load generation against the service layer,
/// reporting fleet-wide latency SLOs and writing `BENCH_serve.json`.
pub fn serve_bench(p: &Parsed) -> CmdResult {
    use hdvb_serve::{run_serve_bench, serve_json, serve_markdown, LoadSpec};

    let codecs: Vec<CodecId> = match p.codec_opt()? {
        Some(c) => vec![c],
        None => CodecId::ALL.to_vec(),
    };
    // Load tests default to a small frame so the offered rate, not the
    // per-frame cost, is the variable under study; pass --resolution to
    // stress full-size frames.
    let resolution = p
        .resolution_opt()?
        .unwrap_or_else(|| Resolution::new(288, 160));
    let mut runs = Vec::new();
    for codec in codecs {
        let spec = LoadSpec {
            codec,
            mode: p.serve_mode()?,
            sessions: p.sessions()?,
            fps: p.fps()?,
            duration: p.duration()?,
            resolution,
            options: options_from(p)?,
            queue_capacity: p.queue_cap()?,
            policy: p.queue_policy()?,
            seed: p.seed()?,
            threads: p.threads()?,
        };
        eprintln!(
            "serve-bench: {codec} {} x{} sessions @ {} fps for {:.1}s ({}x{}, {} policy, queue {})",
            spec.mode.name(),
            spec.sessions,
            spec.fps,
            spec.duration.as_secs_f64(),
            resolution.width(),
            resolution.height(),
            spec.policy.name(),
            spec.queue_capacity,
        );
        let report = run_serve_bench(&spec)?;
        eprintln!(
            "  completed {}/{} inputs in {:.2}s, dropped {}, {} session errors, clean shutdown",
            report.completed,
            report.offered,
            report.wall.as_secs_f64(),
            report.discarded,
            report.errors,
        );
        runs.push(report);
    }
    println!();
    print!("{}", serve_markdown(&runs));
    write_bench_file("BENCH_serve.json", &serve_json(&runs))?;
    Ok(())
}

/// Synthesizes a mezzanine from raw frames: encode near-lossless
/// (qscale 2), then decode **once** — the decoded frames are what the
/// ladder fans out, and the decode is the "decode once" half of the
/// transcode workload.
fn mezzanine(
    codec: CodecId,
    raw: &[Frame],
    options: &CodingOptions,
) -> Result<(Vec<Frame>, std::time::Duration), String> {
    let res = Resolution::new(raw[0].width() as u32, raw[0].height() as u32);
    let mezz_opts = options.with_qscale(2);
    let mut enc = create_encoder(codec, res, &mezz_opts).map_err(|e| e.to_string())?;
    let mut packets: Vec<Packet> = Vec::new();
    for f in raw {
        packets.extend(enc.encode_frame(f).map_err(|e| e.to_string())?);
    }
    packets.extend(enc.finish().map_err(|e| e.to_string())?);
    let t0 = Instant::now();
    let decoded = decode_sequence(codec, &packets, options.simd).map_err(|e| e.to_string())?;
    Ok((decoded.frames, t0.elapsed()))
}

/// `ladder`: the ABR transcode workload — decode a mezzanine once,
/// then scale + encode one GOP-aligned stream per rung. Writes
/// `BENCH_ladder.json` (schema `hdvb-ladder/v1`).
pub fn ladder(p: &Parsed) -> CmdResult {
    use hdvb_core::{run_ladder, LadderSpec};

    let _trace = TraceSession::start(p);
    let codec = p.codec_opt()?.unwrap_or(CodecId::H264);
    let options = options_from(p)?;
    let frames = p.frames()?;
    let seed = p.seed()?;
    let threads = resolve_threads(p)?;

    // Source mezzanine: an encoded `.hvb` stream (-i), or a synthetic
    // one built from a generator (`--sequence screen` selects the
    // seeded screen-content family).
    let (source_name, fps, source, decode_time) = if let Some(input) = p.input() {
        let file = File::open(input).map_err(|e| format!("cannot open {input}: {e}"))?;
        let (header, packets) = read_stream(BufReader::new(file)).map_err(|e| e.to_string())?;
        let t0 = Instant::now();
        let decoded =
            decode_sequence(header.codec, &packets, options.simd).map_err(|e| e.to_string())?;
        let mut frames_vec = decoded.frames;
        frames_vec.truncate(frames as usize);
        (
            input.to_string(),
            header.format.frame_rate.as_f64(),
            frames_vec,
            t0.elapsed(),
        )
    } else {
        let resolution = p.resolution()?;
        let (name, raw): (String, Vec<Frame>) = match p.sequence_name() {
            Some("screen") => {
                let screen = hdvb_seq::ScreenContent::new(resolution, seed);
                (
                    "screen".into(),
                    (0..frames).map(|i| screen.frame(i)).collect(),
                )
            }
            _ => {
                let id = match p.sequence_name() {
                    None => SequenceId::BlueSky,
                    Some(_) => p.sequence()?,
                };
                let seq = Sequence::new(id, resolution);
                (
                    id.name().into(),
                    (0..frames).map(|i| seq.frame(i)).collect(),
                )
            }
        };
        let (decoded, decode_time) = mezzanine(codec, &raw, &options)?;
        (name, 25.0, decoded, decode_time)
    };
    if source.is_empty() {
        return Err("source stream has no frames".into());
    }
    let src_res = Resolution::new(source[0].width() as u32, source[0].height() as u32);

    let gop = u32::from(options.b_frames) + 1;
    let spec = LadderSpec {
        rungs: match p.rungs()? {
            Some(r) => r,
            None => LadderSpec::standard(codec, src_res, options).rungs,
        },
        switch_interval: p.switch_interval()?.unwrap_or(4 * gop),
        codec,
        options,
    };
    eprintln!(
        "ladder: {codec}, source {source_name} {src_res}, {} frames, {} rungs, switch every {} frames, {threads} threads",
        source.len(),
        spec.rungs.len(),
        spec.switch_interval,
    );

    let runner = ParallelRunner::new(threads);
    let result = run_ladder(&source, &spec, runner.pool()).map_err(|e| e.to_string())?;

    println!(
        "ABR ladder — {codec}, {} source frames, {} segments, decode-once {:.1} ms, fan-out wall {:.1} ms",
        result.frames,
        result.segments.len(),
        decode_time.as_secs_f64() * 1e3,
        result.wall.as_secs_f64() * 1e3,
    );
    println!("| rung | packets | kbit/s | PSNR-Y (dB) | encode ms | scale ms |");
    println!("|------|--------:|-------:|------------:|----------:|---------:|");
    for rung in &result.rungs {
        println!(
            "| {} | {} | {:.0} | {:.2} | {:.1} | {:.1} |",
            rung.resolution,
            rung.packets.len(),
            rung.bitrate_kbps(fps, result.frames),
            rung.psnr_y,
            rung.encode_time.as_secs_f64() * 1e3,
            rung.scale_time.as_secs_f64() * 1e3,
        );
    }

    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"hdvb-ladder/v1\",\n");
    out.push_str(&format!("  \"codec\": \"{}\",\n", codec.name()));
    out.push_str(&format!("  \"source\": \"{source_name}\",\n"));
    out.push_str(&format!("  \"source_resolution\": \"{src_res}\",\n"));
    out.push_str(&format!("  \"frames\": {},\n", result.frames));
    out.push_str(&format!("  \"fps\": {fps},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!(
        "  \"switch_interval\": {},\n",
        spec.switch_interval
    ));
    out.push_str(&format!("  \"segments\": {},\n", result.segments.len()));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"simd\": \"{}\",\n", options.simd.tier_name()));
    out.push_str(&format!("  \"qscale\": {},\n", options.mpeg_qscale));
    out.push_str(&format!("  \"b_frames\": {},\n", options.b_frames));
    out.push_str(&format!(
        "  \"decode_ms\": {:.3},\n  \"wall_ms\": {:.3},\n",
        decode_time.as_secs_f64() * 1e3,
        result.wall.as_secs_f64() * 1e3
    ));
    out.push_str("  \"rungs\": [\n");
    for (i, rung) in result.rungs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"resolution\": \"{}\", \"packets\": {}, \"bits\": {}, \"kbps\": {:.3}, \"psnr_y\": {:.4}, \"encode_ms\": {:.3}, \"scale_ms\": {:.3}, \"segment_starts\": {:?}}}{}\n",
            rung.resolution,
            rung.packets.len(),
            rung.bits,
            rung.bitrate_kbps(fps, result.frames),
            rung.psnr_y,
            rung.encode_time.as_secs_f64() * 1e3,
            rung.scale_time.as_secs_f64() * 1e3,
            rung.segment_starts,
            if i + 1 == result.rungs.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    write_bench_file("BENCH_ladder.json", &out)
}

/// `screen`: the screen-content workload family — encode, decode and
/// measure the seeded desktop clip per codec. Writes
/// `BENCH_screen.json` (schema `hdvb-screen/v1`).
pub fn screen(p: &Parsed) -> CmdResult {
    use hdvb_seq::ScreenContent;

    let _trace = TraceSession::start(p);
    let resolution = p.resolution()?;
    let frames = p.frames()?;
    let seed = p.seed()?;
    let options = options_from(p)?;
    let codecs: Vec<CodecId> = match p.codec_opt()? {
        Some(c) => vec![c],
        None => CodecId::ALL.to_vec(),
    };

    let screen = ScreenContent::new(resolution, seed);
    let source: Vec<Frame> = (0..frames).map(|i| screen.frame(i)).collect();
    let fps = screen.format().frame_rate.as_f64();
    eprintln!(
        "screen: {} codec(s), {resolution}, {frames} frames, seed {seed}",
        codecs.len()
    );

    struct Row {
        codec: CodecId,
        bits: u64,
        encode_fps: f64,
        decode_fps: f64,
        psnr_y: f64,
    }
    let mut rows = Vec::new();
    for &codec in &codecs {
        let mut enc = create_encoder(codec, resolution, &options).map_err(|e| e.to_string())?;
        let mut packets: Vec<Packet> = Vec::new();
        let t0 = Instant::now();
        for f in &source {
            packets.extend(enc.encode_frame(f).map_err(|e| e.to_string())?);
        }
        packets.extend(enc.finish().map_err(|e| e.to_string())?);
        let encode_time = t0.elapsed();
        let decoded = decode_sequence(codec, &packets, options.simd).map_err(|e| e.to_string())?;
        if decoded.frames.len() != source.len() {
            return Err(format!(
                "{codec}: decoded {} of {} frames",
                decoded.frames.len(),
                source.len()
            ));
        }
        let mut acc = SequencePsnr::new();
        for (s, d) in source.iter().zip(&decoded.frames) {
            acc.add(s, d);
        }
        rows.push(Row {
            codec,
            bits: packets.iter().map(Packet::bits).sum(),
            encode_fps: f64::from(frames) / encode_time.as_secs_f64().max(1e-9),
            decode_fps: f64::from(frames) / decoded.elapsed.as_secs_f64().max(1e-9),
            psnr_y: acc.y_psnr(),
        });
    }

    println!("screen content — {resolution}, {frames} frames, seed {seed}");
    println!("| codec | kbit/s | PSNR-Y (dB) | encode fps | decode fps |");
    println!("|-------|-------:|------------:|-----------:|-----------:|");
    for r in &rows {
        println!(
            "| {} | {:.0} | {:.2} | {:.1} | {:.1} |",
            r.codec.name(),
            r.bits as f64 * fps / f64::from(frames) / 1000.0,
            r.psnr_y,
            r.encode_fps,
            r.decode_fps,
        );
    }

    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"hdvb-screen/v1\",\n");
    out.push_str(&format!("  \"resolution\": \"{resolution}\",\n"));
    out.push_str(&format!("  \"frames\": {frames},\n"));
    out.push_str(&format!("  \"fps\": {fps},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"simd\": \"{}\",\n", options.simd.tier_name()));
    out.push_str(&format!("  \"qscale\": {},\n", options.mpeg_qscale));
    out.push_str(&format!("  \"b_frames\": {},\n", options.b_frames));
    out.push_str("  \"codecs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"codec\": \"{}\", \"bits\": {}, \"kbps\": {:.3}, \"psnr_y\": {:.4}, \"encode_fps\": {:.3}, \"decode_fps\": {:.3}}}{}\n",
            r.codec.name(),
            r.bits,
            r.bits as f64 * fps / f64::from(frames) / 1000.0,
            r.psnr_y,
            r.encode_fps,
            r.decode_fps,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    write_bench_file("BENCH_screen.json", &out)
}

/// `chaos`: a seeded fault campaign against a live loopback server.
/// Runs one fault-free reference session, then `--trials` faulted runs
/// through the auto-reconnecting client, verifies each is byte-identical
/// to the reference, and writes recovery metrics to `BENCH_chaos.json`.
/// Exits nonzero if any trial's output diverges.
pub fn chaos(p: &Parsed) -> CmdResult {
    use hdvb_net::{run_campaign, ChaosConfig, RetryPolicy};

    let plan = p
        .faults_spec()?
        .ok_or("chaos needs --faults <plan>, e.g. --faults \"drop@4,truncate@12:13,seed=7\"")?;
    let sequence = match p.sequence_name() {
        None => SequenceId::BlueSky,
        Some(name) => {
            SequenceId::from_name(name).ok_or_else(|| format!("unknown sequence {name:?}"))?
        }
    };
    let cfg = ChaosConfig {
        codec: p.codec_opt()?.unwrap_or(CodecId::Mpeg2),
        sequence,
        resolution: p
            .resolution_opt()?
            .unwrap_or_else(|| Resolution::new(176, 144)),
        frames: p.frames()?,
        priority: p.priority()?,
        plan: plan.to_string(),
        policy: RetryPolicy {
            max_reconnects: p.retries()?,
            seed: p.seed()?,
            ..RetryPolicy::default()
        },
        heartbeat: p.heartbeat_ms(200)?,
        trials: p.trials()?,
    };
    eprintln!(
        "chaos: {} {} {}x{}, {} frames, plan {:?}, {} trial(s), heartbeat {}ms",
        cfg.codec.name(),
        cfg.sequence.name(),
        cfg.resolution.width(),
        cfg.resolution.height(),
        cfg.frames,
        cfg.plan,
        cfg.trials,
        cfg.heartbeat.as_millis(),
    );

    let report = run_campaign(&cfg).map_err(|e| format!("chaos campaign failed: {e}"))?;
    for (i, t) in report.trials.iter().enumerate() {
        println!(
            "  trial {i}: {} — {} reconnects, {} dials, {} inputs replayed, {}/{} faults fired{}",
            if t.identical {
                "byte-identical"
            } else {
                "DIVERGED"
            },
            t.retry.reconnects,
            t.retry.attempts,
            t.retry.replayed_inputs,
            t.faults_fired,
            t.faults_total,
            match &t.error {
                Some(e) => format!(" — error: {e}"),
                None => String::new(),
            },
        );
    }
    let s = &report.server;
    println!(
        "  server: {} connections, {} disconnects, {} resumes, {} outputs replayed, {} parked, {} reaped dead",
        s.connections, s.disconnects, s.resumes, s.replayed, s.parked, s.timeouts,
    );
    write_bench_file("BENCH_chaos.json", &report.json())?;
    if report.all_identical() {
        println!(
            "chaos: all {} trial(s) byte-identical to the fault-free reference",
            report.trials.len()
        );
        Ok(())
    } else {
        Err("chaos: at least one faulted trial diverged from the fault-free reference".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_resolutions_scaling() {
        let full = benchmark_resolutions(1);
        assert_eq!(
            full,
            vec![Resolution::DVD_576, Resolution::HD_720, Resolution::HD_1088]
        );
        let quarter = benchmark_resolutions(4);
        assert_eq!(quarter[0], Resolution::DVD_576.scaled_down(4));
        assert!(quarter[2].width() < 500);
    }
}
