//! End-to-end tests of the `hdvb` binary: the Table IV-style driver
//! commands must work from the command line.

use std::path::PathBuf;
use std::process::Command;

fn hdvb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hdvb"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hdvb-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn help_lists_commands() {
    let out = hdvb().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["encode", "decode", "table5", "figure1", "list-codecs"] {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn unknown_command_fails() {
    let out = hdvb().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn list_commands_run() {
    for cmd in ["list-codecs", "list-sequences"] {
        let out = hdvb().arg(cmd).output().unwrap();
        assert!(out.status.success(), "{cmd}");
        assert!(!out.stdout.is_empty());
    }
}

#[test]
fn encode_decode_generate_pipeline() {
    let stream = tmp("stream.hvb");
    let video = tmp("decoded.y4m");
    let raw = tmp("raw.y4m");

    // Encode a tiny synthetic clip.
    let out = hdvb()
        .args([
            "encode",
            "--codec",
            "mpeg2",
            "--sequence",
            "rush_hour",
            "--resolution",
            "96x80",
            "--frames",
            "5",
            "-o",
        ])
        .arg(&stream)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "encode failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stream.exists());

    // Decode it back to y4m, scalar decoder.
    let out = hdvb()
        .args(["decode", "--simd", "scalar", "-i"])
        .arg(&stream)
        .arg("-o")
        .arg(&video)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "decode failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let decoded = std::fs::read(&video).unwrap();
    assert!(decoded.starts_with(b"YUV4MPEG2"));

    // Generate the raw original too.
    let out = hdvb()
        .args([
            "generate",
            "--sequence",
            "rush_hour",
            "--resolution",
            "96x80",
            "--frames",
            "5",
            "-o",
        ])
        .arg(&raw)
        .output()
        .unwrap();
    assert!(out.status.success());
    // Same frame count (both y4m files have 5 FRAME markers).
    let raw_bytes = std::fs::read(&raw).unwrap();
    let count = |b: &[u8]| b.windows(5).filter(|w| w == b"FRAME").count();
    assert_eq!(count(&decoded), 5);
    assert_eq!(count(&raw_bytes), 5);

    // Re-encode the decoded y4m through a different codec.
    let stream2 = tmp("stream2.hvb");
    let out = hdvb()
        .args(["encode", "--codec", "h264", "-i"])
        .arg(&video)
        .arg("-o")
        .arg(&stream2)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "transcode failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    for f in [stream, video, raw, stream2] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn bench_command_reports_fps() {
    let out = hdvb()
        .args([
            "bench",
            "--codec",
            "mpeg4",
            "--sequence",
            "blue_sky",
            "--resolution",
            "96x80",
            "--frames",
            "4",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("encode"), "{text}");
    assert!(text.contains("fps"), "{text}");
}

#[test]
fn table5_small_run_produces_markdown() {
    let out = hdvb()
        .args(["table5", "--frames", "2", "--scale", "16"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Table V"));
    assert!(text.contains("blue_sky"));
    assert!(text.contains("compression gain"));
}

#[test]
fn decode_rejects_garbage() {
    let bad = tmp("garbage.hvb");
    std::fs::write(&bad, b"this is not a stream").unwrap();
    let out = hdvb().args(["decode", "-i"]).arg(&bad).output().unwrap();
    assert!(!out.status.success());
    let _ = std::fs::remove_file(bad);
}

/// Writes a tiny stream with packet #1's payload replaced by garbage.
fn corrupt_stream(path: &std::path::Path) {
    use hdvb_core::{encode_sequence, write_stream, CodecId, CodingOptions, StreamHeader};
    use hdvb_frame::Resolution;
    use hdvb_seq::{Sequence, SequenceId};
    let seq = Sequence::new(SequenceId::RushHour, Resolution::new(64, 48));
    let mut encoded = encode_sequence(CodecId::Mpeg2, seq, 4, &CodingOptions::default()).unwrap();
    encoded.packets[1].data = vec![0xFF; 40];
    let header = StreamHeader {
        codec: CodecId::Mpeg2,
        format: seq.format(),
    };
    let file = std::fs::File::create(path).unwrap();
    write_stream(std::io::BufWriter::new(file), &header, &encoded.packets).unwrap();
}

#[test]
fn resilient_decode_warns_and_continues_where_strict_aborts() {
    let stream = tmp("corrupt.hvb");
    corrupt_stream(&stream);

    let strict = hdvb().args(["decode", "-i"]).arg(&stream).output().unwrap();
    assert!(!strict.status.success(), "strict decode must abort");

    let resilient = hdvb()
        .args(["decode", "--resilient", "-i"])
        .arg(&stream)
        .output()
        .unwrap();
    assert!(
        resilient.status.success(),
        "{}",
        String::from_utf8_lossy(&resilient.stderr)
    );
    let err = String::from_utf8_lossy(&resilient.stderr);
    assert!(err.contains("dropped corrupt packet"), "{err}");
    let _ = std::fs::remove_file(stream);
}

#[test]
fn serve_single_session_is_bit_identical_to_encode() {
    let batch = tmp("batch.hvb");
    let served = tmp("served.hvb");
    let common = [
        "--codec",
        "h264",
        "--sequence",
        "rush_hour",
        "--resolution",
        "96x80",
        "--frames",
        "6",
    ];
    let out = hdvb()
        .args(["encode"])
        .args(common)
        .args(["--threads", "1", "-o"])
        .arg(&batch)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = hdvb()
        .args(["serve"])
        .args(common)
        .args(["-o"])
        .arg(&served)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&batch).unwrap(),
        std::fs::read(&served).unwrap(),
        "served stream differs from batch encode"
    );

    // And the served stream transcodes through a serve session.
    let transcoded = tmp("transcoded.hvb");
    let out = hdvb()
        .args(["serve", "--codec", "mpeg2", "-i"])
        .arg(&served)
        .args(["-o"])
        .arg(&transcoded)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = hdvb()
        .args(["decode", "-i"])
        .arg(&transcoded)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for f in [batch, served, transcoded] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn serve_bench_reports_slos_and_writes_json() {
    // BENCH_serve.json lands in the working directory, so run in a
    // scratch dir.
    let dir = tmp("serve-bench-dir");
    std::fs::create_dir_all(&dir).unwrap();
    let out = hdvb()
        .current_dir(&dir)
        .args([
            "serve-bench",
            "--codec",
            "mpeg2",
            "--sessions",
            "2",
            "--fps",
            "60",
            "--duration",
            "0.2",
            "--resolution",
            "64x48",
            "--seed",
            "3",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8_lossy(&out.stdout);
    for col in ["p50", "p95", "p99", "q-depth", "mpeg2"] {
        assert!(table.contains(col), "missing {col} in:\n{table}");
    }
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("clean shutdown"), "{err}");
    let json = std::fs::read_to_string(dir.join("BENCH_serve.json")).unwrap();
    assert!(json.contains("\"schema\":\"hdvb-serve-bench/v1\""));
    assert!(json.contains("\"p99\":"));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn ladder_writes_report_and_json() {
    // BENCH_ladder.json lands in the working directory, so run in a
    // scratch dir.
    let dir = tmp("ladder-dir");
    std::fs::create_dir_all(&dir).unwrap();
    let out = hdvb()
        .current_dir(&dir)
        .args([
            "ladder",
            "--codec",
            "mpeg2",
            "--sequence",
            "screen",
            "--resolution",
            "96x64",
            "--frames",
            "12",
            "--switch",
            "6",
            "--seed",
            "7",
            "--threads",
            "1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8_lossy(&out.stdout);
    for col in ["rung", "kbit/s", "PSNR-Y", "96x64", "48x32"] {
        assert!(table.contains(col), "missing {col} in:\n{table}");
    }
    let json = std::fs::read_to_string(dir.join("BENCH_ladder.json")).unwrap();
    for field in [
        "\"schema\": \"hdvb-ladder/v1\"",
        "\"switch_interval\": 6",
        "\"segment_starts\": [0, 6]",
        "\"psnr_y\":",
    ] {
        assert!(json.contains(field), "missing {field} in:\n{json}");
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn ladder_rejects_bad_switch_interval() {
    // 5 is not a multiple of the default GOP length (b_frames 2 -> 3).
    let dir = tmp("ladder-bad-dir");
    std::fs::create_dir_all(&dir).unwrap();
    let out = hdvb()
        .current_dir(&dir)
        .args([
            "ladder",
            "--codec",
            "mpeg2",
            "--resolution",
            "96x64",
            "--frames",
            "6",
            "--switch",
            "5",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("multiple of the GOP"), "{err}");
    assert!(
        !dir.join("BENCH_ladder.json").exists(),
        "failed run must not leave a BENCH file"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn ladder_accepts_explicit_rungs() {
    let dir = tmp("ladder-rungs-dir");
    std::fs::create_dir_all(&dir).unwrap();
    let out = hdvb()
        .current_dir(&dir)
        .args([
            "ladder",
            "--codec",
            "mpeg2",
            "--resolution",
            "96x64",
            "--frames",
            "6",
            "--switch",
            "6",
            "--rungs",
            "96x64,48x32",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(dir.join("BENCH_ladder.json")).unwrap();
    assert!(json.contains("\"resolution\": \"96x64\""), "{json}");
    assert!(json.contains("\"resolution\": \"48x32\""), "{json}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn screen_writes_report_and_json_for_all_codecs() {
    let dir = tmp("screen-dir");
    std::fs::create_dir_all(&dir).unwrap();
    let out = hdvb()
        .current_dir(&dir)
        .args([
            "screen",
            "--resolution",
            "96x64",
            "--frames",
            "6",
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8_lossy(&out.stdout);
    for col in ["codec", "kbit/s", "PSNR-Y", "mpeg2", "mpeg4", "h264"] {
        assert!(table.contains(col), "missing {col} in:\n{table}");
    }
    let json = std::fs::read_to_string(dir.join("BENCH_screen.json")).unwrap();
    for field in [
        "\"schema\": \"hdvb-screen/v1\"",
        "\"seed\": 7",
        "\"codec\": \"mpeg2\"",
        "\"codec\": \"h264\"",
        "\"decode_fps\":",
    ] {
        assert!(json.contains(field), "missing {field} in:\n{json}");
    }
    let _ = std::fs::remove_dir_all(dir);
}
