//! Structure-aware bitstream fuzzing and a differential conformance
//! harness for the HD-VideoBench codecs.
//!
//! Three layers, all first-party and deterministic:
//!
//! * **Mutators** ([`mutate`], [`Mutator`]) — blind byte-level damage plus
//!   container/packet-aware corruption that targets header fields, entropy
//!   payloads and stream ordering independently.
//! * **Oracle** ([`differential_check`], [`EntryOutcome`]) — every entry
//!   is decoded under each supported SIMD tier, serially and on a thread
//!   pool, and the outcomes must match exactly: same frames bit-for-bit,
//!   or the same typed [`CorruptKind`](hdvb_bits::CorruptKind) at the same
//!   bit offset. Panics are caught and always count as failures.
//! * **Loop** ([`run_fuzz`], [`FuzzConfig`]) — a coverage-proxy scheduler
//!   keyed on decoder-reported parse positions grows a live corpus from
//!   deterministic seeds, minimises any reproducer it finds and persists
//!   it for check-in as a golden vector ([`golden_vectors`]).
//! * **Round trips** ([`roundtrip_check`]) — the encoder-side oracle:
//!   random frame content, resolutions and coding options are pushed
//!   through the full encode→decode round trip, asserting byte-identical
//!   streams and bit-identical reconstructions across every SIMD tier
//!   and across worker threads.
//!
//! # Example
//!
//! ```
//! use hdvb_fuzz::{run_fuzz, FuzzConfig};
//!
//! let report = run_fuzz(&FuzzConfig {
//!     seconds: 1,
//!     seed: 1,
//!     max_execs: Some(5),
//!     threads: 0,
//!     corpus_dir: None,
//!     roundtrips: 2,
//! })?;
//! assert!(report.failures.is_empty());
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod corpus;
mod mutate;
mod oracle;
mod rng;
mod roundtrip;
mod run;

pub use corpus::{
    golden_vectors, load_corpus, save_entry, seed_entries, seed_stream, Expectation, GoldenVector,
};
pub use mutate::{mutate, Mutator};
pub use oracle::{decode_entry, differential_check, Divergence, EntryOutcome, PacketOutcome};
pub use rng::FuzzRng;
pub use roundtrip::{generate_case, roundtrip_check, RoundtripCase};
pub use run::{minimize, run_fuzz, Failure, FuzzConfig, FuzzReport};

/// Renders a caught panic payload as text (shared by the oracles).
pub(crate) fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
