//! The differential conformance oracle.
//!
//! A corpus entry is decoded under every supported SIMD tier — and,
//! optionally, again on a thread pool — and the *outcomes* are compared.
//! The codecs' parse paths are tier-independent by construction (SIMD only
//! accelerates pixel math), so a malformed packet must fail with the same
//! [`CorruptKind`] at the same bit offset everywhere, and a well-formed one
//! must reconstruct bit-identical frames. Any disagreement is a bug in the
//! dispatch layer, not in the input.

use hdvb_core::{create_decoder, read_stream, BenchError, CodecId, CorruptKind};
use hdvb_dsp::SimdLevel;
use hdvb_frame::Frame;
use hdvb_par::ThreadPool;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What decoding one packet of an entry produced.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PacketOutcome {
    /// The packet decoded; it emitted this many display frames.
    Frames(u32),
    /// The decoder rejected the packet with a typed corruption error.
    Corrupt {
        /// Bit offset the parse stopped at.
        offset: u64,
        /// Classification of the corruption.
        kind: CorruptKind,
    },
    /// A non-corruption error (should not happen on the decode path).
    OtherError(String),
    /// The decoder panicked — always a bug, never acceptable.
    Panic(String),
}

/// The complete observable behaviour of one corpus entry under one
/// execution configuration.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct EntryOutcome {
    /// Set when the container itself was rejected (no packets reached a
    /// codec).
    pub container_error: Option<String>,
    /// Codec named by the container header, when it parsed.
    pub codec: Option<CodecId>,
    /// Per-packet outcomes in stream order. Decoding stops after a panic
    /// (the decoder's state is no longer trustworthy).
    pub packets: Vec<PacketOutcome>,
    /// Total display frames recovered.
    pub frame_count: u32,
    /// FNV-1a hash over every recovered frame's planes, in order.
    pub frame_hash: u64,
}

impl EntryOutcome {
    /// True when any packet made the decoder panic.
    pub fn has_panic(&self) -> bool {
        self.packets
            .iter()
            .any(|p| matches!(p, PacketOutcome::Panic(_)))
    }

    /// Coverage-proxy signature for the corpus scheduler: the codec, each
    /// packet's outcome class and — for corruption — the decoder-reported
    /// parse position bucketed to 64-bit granularity. Two entries that
    /// fail the same way at the same place count as the same coverage.
    pub fn signature(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.container_error.is_some() as u64);
        h.write_u64(self.codec.map_or(0, |c| c as u64 + 1));
        for p in &self.packets {
            match p {
                PacketOutcome::Frames(n) => {
                    h.write_u64(1);
                    h.write_u64(u64::from(*n));
                }
                PacketOutcome::Corrupt { offset, kind } => {
                    h.write_u64(2);
                    h.write_u64(*kind as u64);
                    h.write_u64(offset / 64);
                }
                PacketOutcome::OtherError(_) => h.write_u64(3),
                PacketOutcome::Panic(_) => h.write_u64(4),
            }
        }
        h.finish()
    }
}

/// Minimal FNV-1a, kept local so outcomes hash identically across runs
/// and processes (unlike `DefaultHasher`, which is randomly keyed).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01B3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_frames(hasher: &mut Fnv, frames: &[Frame]) {
    for f in frames {
        hasher.write(f.y().data());
        hasher.write(f.cb().data());
        hasher.write(f.cr().data());
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Decodes one corpus entry under `simd`, capturing every packet's
/// outcome; panics are caught and recorded rather than propagated.
pub fn decode_entry(data: &[u8], simd: SimdLevel) -> EntryOutcome {
    let (header, packets) = match read_stream(data) {
        Ok(x) => x,
        Err(e) => {
            return EntryOutcome {
                container_error: Some(e.to_string()),
                codec: None,
                packets: Vec::new(),
                frame_count: 0,
                frame_hash: Fnv::new().finish(),
            }
        }
    };
    let mut dec = create_decoder(header.codec, simd);
    let mut outcomes = Vec::with_capacity(packets.len());
    let mut hasher = Fnv::new();
    let mut frame_count = 0u32;
    for p in &packets {
        let result = catch_unwind(AssertUnwindSafe(|| dec.decode_packet(&p.data)));
        match result {
            Ok(Ok(frames)) => {
                frame_count += frames.len() as u32;
                hash_frames(&mut hasher, &frames);
                outcomes.push(PacketOutcome::Frames(frames.len() as u32));
            }
            Ok(Err(BenchError::Corrupt { offset, kind, .. })) => {
                outcomes.push(PacketOutcome::Corrupt { offset, kind });
            }
            Ok(Err(e)) => outcomes.push(PacketOutcome::OtherError(e.to_string())),
            Err(payload) => {
                outcomes.push(PacketOutcome::Panic(panic_message(payload)));
                // A panicking decoder has broken its own invariants; the
                // remaining packets would measure undefined state.
                break;
            }
        }
    }
    if !outcomes
        .iter()
        .any(|o| matches!(o, PacketOutcome::Panic(_)))
    {
        if let Ok(tail) = catch_unwind(AssertUnwindSafe(|| dec.finish())) {
            frame_count += tail.len() as u32;
            hash_frames(&mut hasher, &tail);
        } else {
            outcomes.push(PacketOutcome::Panic("panic in decoder flush".into()));
        }
    }
    EntryOutcome {
        container_error: None,
        codec: Some(header.codec),
        packets: outcomes,
        frame_count,
        frame_hash: hasher.finish(),
    }
}

/// Two execution configurations disagreed about the same input.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Reference configuration (always the serial scalar decode).
    pub baseline: String,
    /// The configuration that disagreed.
    pub against: String,
    /// `Debug` rendering of the baseline outcome.
    pub baseline_outcome: String,
    /// `Debug` rendering of the diverging outcome.
    pub against_outcome: String,
}

/// Decodes `data` under every supported SIMD tier serially and — when a
/// pool is supplied — again with the tiers fanned out across worker
/// threads, asserting all outcomes identical.
///
/// # Errors
///
/// Returns the first [`Divergence`] found. A panic inside a decoder is
/// *not* a divergence (it reproduces on every tier); it is reported
/// through the returned outcome's [`EntryOutcome::has_panic`].
pub fn differential_check(
    data: &[u8],
    pool: Option<&ThreadPool>,
) -> Result<EntryOutcome, Box<Divergence>> {
    let tiers = SimdLevel::supported_tiers();
    let baseline = decode_entry(data, tiers[0]);
    for &tier in &tiers[1..] {
        let outcome = decode_entry(data, tier);
        if outcome != baseline {
            return Err(Box::new(Divergence {
                baseline: format!("serial/{:?}", tiers[0]),
                against: format!("serial/{tier:?}"),
                baseline_outcome: format!("{baseline:?}"),
                against_outcome: format!("{outcome:?}"),
            }));
        }
    }
    if let Some(pool) = pool {
        let data_owned = data.to_vec();
        let pooled = pool
            .par_map(tiers.clone(), move |tier| decode_entry(&data_owned, tier))
            .map_err(|p| {
                Box::new(Divergence {
                    baseline: format!("serial/{:?}", tiers[0]),
                    against: format!("pool/task-{}", p.index),
                    baseline_outcome: format!("{baseline:?}"),
                    against_outcome: format!("worker panicked: {}", p.message),
                })
            })?;
        for (tier, outcome) in tiers.iter().zip(pooled) {
            if outcome != baseline {
                return Err(Box::new(Divergence {
                    baseline: format!("serial/{:?}", tiers[0]),
                    against: format!("pool/{tier:?}"),
                    baseline_outcome: format!("{baseline:?}"),
                    against_outcome: format!("{outcome:?}"),
                }));
            }
        }
    }
    Ok(baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn garbage_is_a_container_error_not_a_panic() {
        let out = decode_entry(&[0u8; 64], SimdLevel::Scalar);
        assert!(out.container_error.is_some());
        assert!(!out.has_panic());
    }

    #[test]
    fn signatures_are_stable_and_distinguish_outcomes() {
        let a = decode_entry(&[0u8; 64], SimdLevel::Scalar);
        let b = decode_entry(&[0u8; 64], SimdLevel::Scalar);
        assert_eq!(a.signature(), b.signature());
        let c = decode_entry(b"HVB1 not really a stream....", SimdLevel::Scalar);
        // Same class (container error) collapses to the same signature.
        assert_eq!(a.signature(), c.signature());
    }
}
