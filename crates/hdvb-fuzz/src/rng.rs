//! A tiny deterministic generator for the fuzzing loop.
//!
//! The harness needs *replayable* randomness — the same seed must produce
//! the same mutation schedule on every machine — so it carries its own
//! splitmix64 core (the same construction the `third_party/rand` stand-in
//! uses) instead of depending on an external RNG.

/// Deterministic splitmix64 generator.
#[derive(Clone, Debug)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        FuzzRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Returns `true` with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// One random byte.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() & 0xFF) as u8
    }

    /// Derives an independent stream (for splitting work deterministically).
    pub fn fork(&mut self) -> FuzzRng {
        FuzzRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = FuzzRng::new(42);
        let mut b = FuzzRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = FuzzRng::new(7);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[r.below(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
