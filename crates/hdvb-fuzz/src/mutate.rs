//! Corpus mutators: blind byte-level corruption plus structure-aware
//! mutations that understand the HVB1 container and the codecs' shared
//! packet header layout.
//!
//! Byte-level mutators treat an entry as an opaque buffer — they shake the
//! container framing itself. Structure-aware mutators parse the container
//! first ([`hdvb_core::read_stream`]) and then corrupt one *packet*
//! independently, which is what actually reaches the codec parsers: header
//! fields (magic, frame type, dimensions, quantiser) live in the first few
//! bytes of a packet, so targeting that region versus the VLC/motion-vector
//! payload exercises different decoder stages.

use crate::rng::FuzzRng;
use hdvb_core::{read_stream, write_stream, Packet, PacketKind, StreamHeader};

/// The region of a packet every codec uses for its fixed header: 16-bit
/// magic, 2-bit frame type, 32-bit display index and the Exp-Golomb
/// dimension/quantiser fields all land within the first ten bytes.
const PACKET_HEADER_BYTES: usize = 10;

/// Which mutation produced an entry (for reports and corpus file names).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mutator {
    /// Flip a single bit anywhere in the container.
    BitFlip,
    /// Overwrite a byte with a random value.
    ByteSet,
    /// Truncate the container at a random point.
    Truncate,
    /// Duplicate a random span in place.
    DuplicateSpan,
    /// Copy a span from another corpus entry.
    Splice,
    /// Flip bits inside one packet's header region.
    PacketHeaderBits,
    /// Flip bits inside one packet's entropy-coded payload.
    PacketPayloadBits,
    /// Truncate one packet's data.
    PacketTruncate,
    /// Replace one packet's data with nothing.
    PacketEmpty,
    /// Duplicate one packet in the stream.
    PacketDuplicate,
    /// Drop one packet from the stream.
    PacketDrop,
    /// Swap two packets (reorders anchors and B pictures).
    PacketSwap,
    /// Rewrite a packet's container-level kind byte.
    KindFlip,
}

impl Mutator {
    /// Every mutator, used by the scheduler's uniform pick.
    pub const ALL: [Mutator; 13] = [
        Mutator::BitFlip,
        Mutator::ByteSet,
        Mutator::Truncate,
        Mutator::DuplicateSpan,
        Mutator::Splice,
        Mutator::PacketHeaderBits,
        Mutator::PacketPayloadBits,
        Mutator::PacketTruncate,
        Mutator::PacketEmpty,
        Mutator::PacketDuplicate,
        Mutator::PacketDrop,
        Mutator::PacketSwap,
        Mutator::KindFlip,
    ];

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Mutator::BitFlip => "bit-flip",
            Mutator::ByteSet => "byte-set",
            Mutator::Truncate => "truncate",
            Mutator::DuplicateSpan => "duplicate-span",
            Mutator::Splice => "splice",
            Mutator::PacketHeaderBits => "packet-header-bits",
            Mutator::PacketPayloadBits => "packet-payload-bits",
            Mutator::PacketTruncate => "packet-truncate",
            Mutator::PacketEmpty => "packet-empty",
            Mutator::PacketDuplicate => "packet-duplicate",
            Mutator::PacketDrop => "packet-drop",
            Mutator::PacketSwap => "packet-swap",
            Mutator::KindFlip => "kind-flip",
        }
    }

    /// Whether this mutator needs a parseable container to operate on.
    pub fn is_structural(self) -> bool {
        !matches!(
            self,
            Mutator::BitFlip
                | Mutator::ByteSet
                | Mutator::Truncate
                | Mutator::DuplicateSpan
                | Mutator::Splice
        )
    }
}

fn flip_bits(data: &mut [u8], lo: usize, hi: usize, flips: usize, rng: &mut FuzzRng) {
    if hi <= lo {
        return;
    }
    for _ in 0..flips {
        let byte = lo + rng.below(hi - lo);
        data[byte] ^= 1 << rng.below(8);
    }
}

fn rewrite(header: &StreamHeader, packets: &[Packet]) -> Vec<u8> {
    let mut out = Vec::new();
    write_stream(&mut out, header, packets).expect("in-memory container write cannot fail");
    out
}

/// Applies `mutator` to `data`, returning the mutated entry.
///
/// Structure-aware mutators fall back to a byte-level bit flip when the
/// entry no longer parses as a container (mutants of mutants routinely
/// break the framing) or when the stream has no packets to target.
pub fn mutate(data: &[u8], mutator: Mutator, other: &[u8], rng: &mut FuzzRng) -> Vec<u8> {
    if mutator.is_structural() {
        if let Ok((header, packets)) = read_stream(data) {
            if !packets.is_empty() {
                return mutate_structural(&header, packets, mutator, rng);
            }
        }
        return mutate_bytes(data, Mutator::BitFlip, other, rng);
    }
    mutate_bytes(data, mutator, other, rng)
}

fn mutate_bytes(data: &[u8], mutator: Mutator, other: &[u8], rng: &mut FuzzRng) -> Vec<u8> {
    let mut out = data.to_vec();
    if out.is_empty() {
        return vec![rng.byte()];
    }
    match mutator {
        Mutator::BitFlip => {
            let flips = 1 + rng.below(4);
            let len = out.len();
            flip_bits(&mut out, 0, len, flips, rng);
        }
        Mutator::ByteSet => {
            let i = rng.below(out.len());
            out[i] = rng.byte();
        }
        Mutator::Truncate => {
            out.truncate(rng.below(out.len()));
        }
        Mutator::DuplicateSpan => {
            let start = rng.below(out.len());
            let len = 1 + rng.below((out.len() - start).min(64));
            let span = out[start..start + len].to_vec();
            let at = rng.below(out.len());
            out.splice(at..at, span);
        }
        Mutator::Splice => {
            if !other.is_empty() {
                let src = rng.below(other.len());
                let len = 1 + rng.below((other.len() - src).min(64));
                let at = rng.below(out.len());
                let end = (at + len).min(out.len());
                out[at..end].copy_from_slice(&other[src..src + (end - at)]);
            }
        }
        _ => unreachable!("structural mutator routed to mutate_bytes"),
    }
    out
}

fn mutate_structural(
    header: &StreamHeader,
    mut packets: Vec<Packet>,
    mutator: Mutator,
    rng: &mut FuzzRng,
) -> Vec<u8> {
    let pi = rng.below(packets.len());
    match mutator {
        Mutator::PacketHeaderBits => {
            let p = &mut packets[pi];
            let hi = p.data.len().min(PACKET_HEADER_BYTES);
            let flips = 1 + rng.below(3);
            flip_bits(&mut p.data, 0, hi, flips, rng);
        }
        Mutator::PacketPayloadBits => {
            let p = &mut packets[pi];
            let lo = PACKET_HEADER_BYTES.min(p.data.len());
            let hi = p.data.len();
            let flips = 1 + rng.below(8);
            flip_bits(&mut p.data, lo, hi, flips, rng);
        }
        Mutator::PacketTruncate => {
            let p = &mut packets[pi];
            if !p.data.is_empty() {
                let keep = rng.below(p.data.len());
                p.data.truncate(keep);
            }
        }
        Mutator::PacketEmpty => {
            packets[pi].data.clear();
        }
        Mutator::PacketDuplicate => {
            let p = packets[pi].clone();
            packets.insert(pi, p);
        }
        Mutator::PacketDrop => {
            packets.remove(pi);
        }
        Mutator::PacketSwap => {
            let pj = rng.below(packets.len());
            packets.swap(pi, pj);
        }
        Mutator::KindFlip => {
            packets[pi].kind = match rng.below(3) {
                0 => PacketKind::I,
                1 => PacketKind::P,
                _ => PacketKind::B,
            };
        }
        _ => unreachable!("byte-level mutator routed to mutate_structural"),
    }
    rewrite(header, &packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdvb_core::CodecId;
    use hdvb_frame::{Resolution, VideoFormat};

    fn sample_container() -> Vec<u8> {
        let header = StreamHeader {
            codec: CodecId::Mpeg2,
            format: VideoFormat::at_25fps(Resolution::new(48, 32)),
        };
        let packets = vec![
            Packet {
                data: vec![0xAA; 30],
                kind: PacketKind::I,
                display_index: 0,
            },
            Packet {
                data: vec![0xBB; 20],
                kind: PacketKind::P,
                display_index: 1,
            },
        ];
        rewrite(&header, &packets)
    }

    #[test]
    fn every_mutator_produces_output_deterministically() {
        let base = sample_container();
        for m in Mutator::ALL {
            let a = mutate(&base, m, &base, &mut FuzzRng::new(9));
            let b = mutate(&base, m, &base, &mut FuzzRng::new(9));
            assert_eq!(a, b, "{}", m.name());
        }
    }

    #[test]
    fn structural_mutators_keep_container_parseable() {
        let base = sample_container();
        // These rewrite through write_stream, so the framing stays valid
        // (only the packet payloads are corrupt).
        for m in [
            Mutator::PacketHeaderBits,
            Mutator::PacketPayloadBits,
            Mutator::PacketTruncate,
            Mutator::PacketDuplicate,
            Mutator::PacketSwap,
            Mutator::KindFlip,
        ] {
            let out = mutate(&base, m, &base, &mut FuzzRng::new(3));
            assert!(read_stream(&out[..]).is_ok(), "{}", m.name());
        }
    }

    #[test]
    fn structural_mutator_on_garbage_falls_back() {
        let garbage = vec![0u8; 40];
        let out = mutate(
            &garbage,
            Mutator::PacketDrop,
            &garbage,
            &mut FuzzRng::new(1),
        );
        assert_eq!(out.len(), garbage.len()); // bit-flip fallback
        assert_ne!(out, garbage);
    }
}
