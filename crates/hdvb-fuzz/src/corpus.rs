//! Seed streams, golden corruption vectors and on-disk corpus handling.
//!
//! Seeds are tiny valid streams encoded deterministically (scalar SIMD,
//! fixed sequence, fixed frame count), so every fuzz run starts from the
//! same baseline regardless of machine. Golden vectors are *derived*
//! corruptions of those seeds — the reproducers the robustness test suite
//! replays — and regenerating them must produce the checked-in bytes
//! exactly (a test guards this).

use hdvb_bits::BitWriter;
use hdvb_core::{
    encode_sequence, read_stream, write_stream, CodecId, CodingOptions, Packet, PacketKind,
    StreamHeader,
};
use hdvb_dsp::SimdLevel;
use hdvb_frame::{Resolution, VideoFormat};
use hdvb_seq::{Sequence, SequenceId};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Geometry of the seed streams (small enough to fuzz fast, large enough
/// for multi-macroblock rows and real motion).
const SEED_W: u32 = 48;
const SEED_H: u32 = 32;
const SEED_FRAMES: u32 = 4;

/// Per-codec 16-bit packet magics (mirrors each codec's private `MAGIC`).
fn packet_magic(codec: CodecId) -> u32 {
    match codec {
        CodecId::Mpeg2 => 0x4D32,
        CodecId::Mpeg4 => 0x4D34,
        CodecId::H264 => 0x4834,
    }
}

/// What the robustness suite asserts about a golden vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// Some packet must be rejected with `BenchError::Corrupt` — and
    /// nothing may panic.
    MustCorrupt,
    /// The container itself must be rejected before any codec runs.
    ContainerError,
    /// No behavioural promise beyond "never panics, tiers agree".
    NoPanic,
}

impl Expectation {
    /// File-name tag, parsed back by the robustness tests.
    pub fn tag(self) -> &'static str {
        match self {
            Expectation::MustCorrupt => "corrupt",
            Expectation::ContainerError => "container",
            Expectation::NoPanic => "nopanic",
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(tag: &str) -> Option<Expectation> {
        match tag {
            "corrupt" => Some(Expectation::MustCorrupt),
            "container" => Some(Expectation::ContainerError),
            "nopanic" => Some(Expectation::NoPanic),
            _ => None,
        }
    }
}

/// One named, checked-in corruption reproducer.
#[derive(Clone, Debug)]
pub struct GoldenVector {
    /// Short kebab-case identifier.
    pub name: String,
    /// What the test suite asserts about it.
    pub expect: Expectation,
    /// The container bytes.
    pub data: Vec<u8>,
}

impl GoldenVector {
    /// File name used when the vector is checked into `tests/corpus/`.
    pub fn file_name(&self) -> String {
        format!("{}--{}.hvb", self.expect.tag(), self.name)
    }
}

/// Encodes the deterministic seed stream for `codec`.
pub fn seed_stream(codec: CodecId) -> Vec<u8> {
    let seq = Sequence::new(SequenceId::RushHour, Resolution::new(SEED_W, SEED_H));
    let options = CodingOptions::default().with_simd(SimdLevel::Scalar);
    let enc = encode_sequence(codec, seq, SEED_FRAMES, &options)
        .expect("seed encode of a valid tiny sequence cannot fail");
    let header = StreamHeader {
        codec,
        format: VideoFormat::at_25fps(Resolution::new(SEED_W, SEED_H)),
    };
    let mut out = Vec::new();
    write_stream(&mut out, &header, &enc.packets).expect("in-memory write cannot fail");
    out
}

/// All seed streams, one valid container per codec.
pub fn seed_entries() -> Vec<(String, Vec<u8>)> {
    CodecId::ALL
        .iter()
        .map(|&c| (format!("seed-{c}"), seed_stream(c)))
        .collect()
}

fn with_packet0<F: FnOnce(&mut Packet)>(stream: &[u8], f: F) -> Vec<u8> {
    let (header, mut packets) = read_stream(stream).expect("seed stream parses by construction");
    f(&mut packets[0]);
    let mut out = Vec::new();
    write_stream(&mut out, &header, &packets).expect("in-memory write cannot fail");
    out
}

fn crafted_packet(codec: CodecId, build: impl FnOnce(&mut BitWriter)) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.put_bits(packet_magic(codec), 16);
    build(&mut w);
    let header = StreamHeader {
        codec,
        format: VideoFormat::at_25fps(Resolution::new(SEED_W, SEED_H)),
    };
    let packets = [Packet {
        data: w.finish(),
        kind: PacketKind::I,
        display_index: 0,
    }];
    let mut out = Vec::new();
    write_stream(&mut out, &header, &packets).expect("in-memory write cannot fail");
    out
}

/// Generates the full golden-vector set (deterministic; ≥ 25 entries).
///
/// Categories, per codec: truncation at every fixed-header boundary,
/// start-code/magic corruption, reserved frame types, oversized and
/// undersized dimensions, zero-length packets, and payload damage that
/// must at worst drop frames. Plus container-level framing corruption
/// shared across codecs.
pub fn golden_vectors() -> Vec<GoldenVector> {
    let mut v = Vec::new();
    for codec in CodecId::ALL {
        let seed = seed_stream(codec);
        let push = |v: &mut Vec<GoldenVector>, name: &str, expect, data| {
            v.push(GoldenVector {
                name: format!("{codec}-{name}"),
                expect,
                data,
            });
        };
        // Truncations at each fixed-header boundary of packet 0: inside
        // the magic (1), after the magic (2), inside the display index
        // (4), just before the dimension fields (6). All must fail with
        // a typed Truncated error.
        for cut in [0usize, 1, 2, 4, 6] {
            push(
                &mut v,
                &format!("trunc-{cut}"),
                Expectation::MustCorrupt,
                with_packet0(&seed, |p| p.data.truncate(cut)),
            );
        }
        // Flipped start code: the decoder must identify a foreign packet
        // immediately.
        push(
            &mut v,
            "bad-magic",
            Expectation::MustCorrupt,
            with_packet0(&seed, |p| p.data[0] ^= 0xFF),
        );
        // Reserved frame type (bits 16..18 = 0b11).
        push(
            &mut v,
            "bad-frame-type",
            Expectation::MustCorrupt,
            crafted_packet(codec, |w| w.put_bits(3, 2)),
        );
        // Oversized dimensions: within the u32 field but far past the
        // 16384 / 64-Mpixel caps. Must fail *before* any allocation.
        push(
            &mut v,
            "oversized-dims",
            Expectation::MustCorrupt,
            crafted_packet(codec, |w| {
                w.put_bits(0, 2); // I picture
                w.put_bits(0, 32); // display index
                w.put_ue(100_000); // width
                w.put_ue(100_000); // height
            }),
        );
        // Zero dimensions (below the 16-pixel minimum).
        push(
            &mut v,
            "zero-dims",
            Expectation::MustCorrupt,
            crafted_packet(codec, |w| {
                w.put_bits(0, 2);
                w.put_bits(0, 32);
                w.put_ue(0);
                w.put_ue(0);
            }),
        );
        // Odd dimensions: plausible sizes that 4:2:0 chroma subsampling
        // cannot represent. Found by the fuzzer panicking in the output
        // crop; must now be a typed header rejection.
        push(
            &mut v,
            "odd-dims",
            Expectation::MustCorrupt,
            crafted_packet(codec, |w| {
                w.put_bits(0, 2);
                w.put_bits(0, 32);
                w.put_ue(47);
                w.put_ue(32);
            }),
        );
        // Mid-payload truncation and bit damage: the decoder may recover
        // or reject, but must never panic and every tier must agree.
        push(
            &mut v,
            "trunc-half",
            Expectation::NoPanic,
            with_packet0(&seed, |p| {
                let half = p.data.len() / 2;
                p.data.truncate(half);
            }),
        );
        push(
            &mut v,
            "payload-flip",
            Expectation::NoPanic,
            with_packet0(&seed, |p| {
                let mid = p.data.len() / 2;
                p.data[mid] ^= 0x55;
            }),
        );
    }
    // Container-level corruption: rejected before any codec runs.
    let seed = seed_stream(CodecId::Mpeg2);
    let mut bad_magic = seed.clone();
    bad_magic[3] = b'0'; // "HVB1" -> "HVB0"
    v.push(GoldenVector {
        name: "container-bad-magic".into(),
        expect: Expectation::ContainerError,
        data: bad_magic,
    });
    let mut bad_codec = seed.clone();
    bad_codec[4] = 0x7F; // unknown codec id byte
    v.push(GoldenVector {
        name: "container-bad-codec".into(),
        expect: Expectation::ContainerError,
        data: bad_codec,
    });
    v.push(GoldenVector {
        name: "container-trunc-header".into(),
        expect: Expectation::ContainerError,
        data: seed[..9].to_vec(),
    });
    let mut huge_len = seed.clone();
    // Forge the first packet's length field (kind u8 + display u32 follow
    // the 25-byte stream header) to 2^30: must be rejected by the size
    // cap, not allocated.
    huge_len[30..34].copy_from_slice(&(1u32 << 30).to_le_bytes());
    v.push(GoldenVector {
        name: "container-huge-packet-len".into(),
        expect: Expectation::ContainerError,
        data: huge_len,
    });
    v
}

/// Loads every `*.hvb` file from `dir`, sorted by file name for
/// deterministic replay order. A missing directory is an empty corpus.
pub fn load_corpus(dir: &Path) -> io::Result<Vec<(String, Vec<u8>)>> {
    let mut entries = Vec::new();
    let rd = match fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(entries),
        Err(e) => return Err(e),
    };
    for entry in rd {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "hvb") {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("entry")
                .to_string();
            entries.push((name, fs::read(&path)?));
        }
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(entries)
}

/// Writes `data` as `<dir>/<name>.hvb`, creating the directory.
pub fn save_entry(dir: &Path, name: &str, data: &[u8]) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.hvb"));
    fs::write(&path, data)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_streams_are_valid_and_deterministic() {
        for codec in CodecId::ALL {
            let a = seed_stream(codec);
            let b = seed_stream(codec);
            assert_eq!(a, b, "{codec}");
            let (header, packets) = read_stream(&a[..]).unwrap_or_else(|e| {
                panic!("{codec} seed must parse: {e}");
            });
            assert_eq!(header.codec, codec);
            assert_eq!(packets.len() as u32, SEED_FRAMES);
        }
    }

    #[test]
    fn golden_set_is_large_enough_and_uniquely_named() {
        let v = golden_vectors();
        assert!(v.len() >= 25, "only {} vectors", v.len());
        let mut names: Vec<_> = v.iter().map(|g| g.file_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), v.len());
    }

    #[test]
    fn huge_packet_len_vector_targets_the_length_field() {
        let g = golden_vectors()
            .into_iter()
            .find(|g| g.name == "container-huge-packet-len")
            .expect("vector exists");
        // Sanity-check the hand-computed offset: the forged field must
        // make read_stream fail with the size-cap error.
        let err = read_stream(&g.data[..]).expect_err("must be rejected");
        assert!(err.to_string().contains("packet size"), "{err}");
    }
}
