//! The fuzzing loop: coverage-proxy-scheduled mutation, differential
//! checking, failure minimisation and corpus persistence.

use crate::corpus::{golden_vectors, load_corpus, save_entry, seed_entries};
use crate::mutate::{mutate, Mutator};
use crate::oracle::{differential_check, EntryOutcome};
use crate::rng::FuzzRng;
use hdvb_par::ThreadPool;
use std::collections::HashSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Fuzzing-run parameters (the `hdvb fuzz` flags).
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Wall-clock budget for the mutation loop (replay is extra).
    pub seconds: u64,
    /// PRNG seed; equal seeds produce equal mutation schedules.
    pub seed: u64,
    /// Directory of `*.hvb` entries to replay first and to persist
    /// failure reproducers into. `None` = in-memory only.
    pub corpus_dir: Option<PathBuf>,
    /// Worker threads for the pooled leg of the differential oracle;
    /// values below 2 skip the pool axis.
    pub threads: usize,
    /// Optional hard cap on mutation executions (useful for exactly
    /// reproducible runs regardless of machine speed).
    pub max_execs: Option<u64>,
    /// Encoder round-trip cases to run before the mutation loop
    /// ([`crate::roundtrip_check`]); `0` disables the encoder oracle.
    pub roundtrips: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seconds: 60,
            seed: 1,
            corpus_dir: None,
            threads: 4,
            max_execs: None,
            roundtrips: 16,
        }
    }
}

/// One reproducer the run found (already minimised).
#[derive(Clone, Debug)]
pub struct Failure {
    /// Stable name derived from the reproducer's content hash.
    pub name: String,
    /// Minimised input bytes.
    pub data: Vec<u8>,
    /// Human-readable description of what went wrong.
    pub reason: String,
    /// Where the reproducer was persisted, when a corpus dir was given.
    pub saved_to: Option<PathBuf>,
}

/// Summary of a fuzzing run.
#[derive(Debug)]
pub struct FuzzReport {
    /// Mutants executed through the differential oracle.
    pub executions: u64,
    /// Encoder round-trip cases executed through the encoder oracle.
    pub roundtrips: u64,
    /// Entries replayed before mutation (seeds + golden + on-disk corpus).
    pub replayed: usize,
    /// Live corpus size at the end of the run.
    pub corpus_entries: usize,
    /// Distinct coverage-proxy signatures observed.
    pub unique_signatures: usize,
    /// Panics and cross-tier divergences found (empty on a healthy tree).
    pub failures: Vec<Failure>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

struct LiveEntry {
    data: Vec<u8>,
    /// Scheduler energy: 1 + number of new signatures this entry's
    /// mutants have produced. Productive parents are mutated more.
    score: u64,
}

fn fnv64(data: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

fn pick_weighted(entries: &[LiveEntry], rng: &mut FuzzRng) -> usize {
    let total: u64 = entries.iter().map(|e| e.score).sum();
    let mut target = rng.next_u64() % total.max(1);
    for (i, e) in entries.iter().enumerate() {
        if target < e.score {
            return i;
        }
        target -= e.score;
    }
    entries.len() - 1
}

/// Greedily shrinks `data` while `still_fails` holds: repeatedly tries
/// removing chunks (halving the chunk size down to one byte). Bounded,
/// deterministic, and purely byte-level — it does not need the input to
/// stay a parseable container, because the predicate re-runs the full
/// oracle each time.
pub fn minimize(data: &[u8], still_fails: impl Fn(&[u8]) -> bool) -> Vec<u8> {
    let mut best = data.to_vec();
    let mut chunk = (best.len() / 2).max(1);
    while chunk >= 1 {
        let mut offset = 0usize;
        let mut removed_any = false;
        while offset < best.len() {
            let end = (offset + chunk).min(best.len());
            let mut candidate = Vec::with_capacity(best.len() - (end - offset));
            candidate.extend_from_slice(&best[..offset]);
            candidate.extend_from_slice(&best[end..]);
            if !candidate.is_empty() && still_fails(&candidate) {
                best = candidate;
                removed_any = true;
                // Re-test the same offset against the shifted tail.
            } else {
                offset = end;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        chunk /= 2;
    }
    best
}

fn classify(data: &[u8], pool: Option<&ThreadPool>) -> Result<EntryOutcome, String> {
    match differential_check(data, pool) {
        Ok(outcome) if outcome.has_panic() => Err(format!(
            "decoder panic: {:?}",
            outcome
                .packets
                .iter()
                .find(|p| matches!(p, crate::oracle::PacketOutcome::Panic(_)))
        )),
        Ok(outcome) => Ok(outcome),
        Err(d) => Err(format!(
            "divergence between {} and {}: {} vs {}",
            d.baseline, d.against, d.baseline_outcome, d.against_outcome
        )),
    }
}

/// Runs the fuzzing loop described by `config`.
///
/// Replays the built-in seeds, the golden vectors and every entry of the
/// on-disk corpus first, then mutates until the time/execution budget is
/// exhausted. Reproducers for any panic or divergence are minimised and —
/// when a corpus directory is configured — persisted as
/// `failure--<hash>.hvb`.
///
/// # Errors
///
/// Only I/O errors from corpus loading/persistence; decoder misbehaviour
/// is reported through [`FuzzReport::failures`].
pub fn run_fuzz(config: &FuzzConfig) -> std::io::Result<FuzzReport> {
    let started = Instant::now();
    let mut rng = FuzzRng::new(config.seed);
    let pool = (config.threads >= 2).then(|| ThreadPool::new(config.threads));
    let pool_ref = pool.as_ref();

    let mut replay: Vec<(String, Vec<u8>)> = seed_entries();
    replay.extend(golden_vectors().into_iter().map(|g| (g.name, g.data)));
    if let Some(dir) = &config.corpus_dir {
        replay.extend(load_corpus(dir)?);
    }

    let mut corpus: Vec<LiveEntry> = Vec::new();
    let mut signatures: HashSet<u64> = HashSet::new();
    let mut failures: Vec<Failure> = Vec::new();
    let replayed = replay.len();

    // Encoder-side oracle: seeded round-trip cases through every codec,
    // SIMD tier and the pool. A failure here has no byte-level
    // reproducer to minimise — the `(seed, index)` pair in the reason
    // regenerates the case exactly.
    for index in 0..config.roundtrips {
        if let Err(reason) = crate::roundtrip::roundtrip_check(config.seed, index, pool_ref) {
            failures.push(Failure {
                name: format!("roundtrip--{}-{}", config.seed, index),
                data: Vec::new(),
                reason,
                saved_to: None,
            });
        }
    }

    let mut record_failure = |data: Vec<u8>, reason: String, origin: &str| {
        let minimized = minimize(&data, |candidate| classify(candidate, pool_ref).is_err());
        let name = format!("failure--{:016x}", fnv64(&minimized));
        let saved_to = match &config.corpus_dir {
            Some(dir) => save_entry(dir, &name, &minimized).ok(),
            None => None,
        };
        failures.push(Failure {
            name,
            data: minimized,
            reason: format!("{reason} (origin: {origin})"),
            saved_to,
        });
    };

    for (name, data) in replay {
        match classify(&data, pool_ref) {
            Ok(outcome) => {
                signatures.insert(outcome.signature());
                corpus.push(LiveEntry { data, score: 1 });
            }
            Err(reason) => record_failure(data, reason, &name),
        }
    }

    let deadline = started + Duration::from_secs(config.seconds);
    let mut executions = 0u64;
    while Instant::now() < deadline {
        if let Some(cap) = config.max_execs {
            if executions >= cap {
                break;
            }
        }
        if corpus.is_empty() {
            break; // every seed failed; nothing sensible to mutate
        }
        let parent = pick_weighted(&corpus, &mut rng);
        let other = rng.below(corpus.len());
        let mutator = Mutator::ALL[rng.below(Mutator::ALL.len())];
        let mutant = {
            let other_data: &[u8] = &corpus[other].data;
            mutate(&corpus[parent].data, mutator, other_data, &mut rng)
        };
        executions += 1;
        match classify(&mutant, pool_ref) {
            Ok(outcome) => {
                if signatures.insert(outcome.signature()) {
                    corpus[parent].score += 1;
                    corpus.push(LiveEntry {
                        data: mutant,
                        score: 1,
                    });
                }
            }
            Err(reason) => record_failure(mutant, reason, mutator.name()),
        }
    }

    Ok(FuzzReport {
        executions,
        roundtrips: config.roundtrips,
        replayed,
        corpus_entries: corpus.len(),
        unique_signatures: signatures.len(),
        failures,
        elapsed: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimize_shrinks_while_preserving_predicate() {
        // Predicate: contains the byte 0x7E somewhere.
        let mut data = vec![0u8; 200];
        data[137] = 0x7E;
        let out = minimize(&data, |d| d.contains(&0x7E));
        assert_eq!(out, vec![0x7E]);
    }

    #[test]
    fn short_deterministic_run_is_clean_and_repeatable() {
        let config = FuzzConfig {
            seconds: 600, // effectively unlimited; max_execs is the cap
            seed: 7,
            corpus_dir: None,
            threads: 0,
            max_execs: Some(40),
            roundtrips: 3,
        };
        let a = run_fuzz(&config).expect("fuzz run performs no I/O here");
        let b = run_fuzz(&config).expect("fuzz run performs no I/O here");
        assert!(a.failures.is_empty(), "{:?}", a.failures);
        assert_eq!(a.executions, 40);
        assert_eq!(a.unique_signatures, b.unique_signatures);
        assert_eq!(a.corpus_entries, b.corpus_entries);
        assert!(a.unique_signatures > 3, "mutations found no new behaviour");
    }
}
