//! The encoder round-trip differential oracle.
//!
//! The decode oracle ([`crate::oracle`]) fuzzes *bitstreams*; this
//! module fuzzes the **encoder input space**: random frame content at
//! random (macroblock-aligned) resolutions under random coding
//! options, pushed through the full encode→decode round trip of every
//! codec. Two invariants are checked, both across every supported SIMD
//! tier and — when a pool is supplied — across worker threads:
//!
//! 1. **Encode determinism**: every tier emits a byte-identical packet
//!    stream (the kernel tiers are bit-exact by contract; a divergence
//!    here is a dispatch-layer bug, not an input property).
//! 2. **Reconstruction agreement**: decoding that stream under every
//!    tier reconstructs bit-identical frames, and the decoded frame
//!    count equals the encoded frame count.
//!
//! Cases are generated from a seeded [`FuzzRng`], so a failing case is
//! reproduced by its `(seed, index)` pair alone — the failure report
//! names both.

use crate::rng::FuzzRng;
use hdvb_core::{create_decoder, create_encoder, CodecId, CodingOptions, Packet};
use hdvb_dsp::SimdLevel;
use hdvb_frame::Frame;
use hdvb_par::ThreadPool;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One generated round-trip case: random frames plus random options.
#[derive(Clone, Debug)]
pub struct RoundtripCase {
    /// Codec under test.
    pub codec: CodecId,
    /// Frame width (multiple of 16).
    pub width: usize,
    /// Frame height (multiple of 16).
    pub height: usize,
    /// The random input frames.
    pub frames: Vec<Frame>,
    /// Randomised coding options (`simd` is overridden per tier).
    pub options: CodingOptions,
}

/// Generates case `index` of the stream seeded by `seed`. The mapping
/// is pure: the same `(seed, index)` always yields the same case.
pub fn generate_case(seed: u64, index: u64) -> RoundtripCase {
    // A per-case stream: cases are independent of how many ran before.
    let mut rng = FuzzRng::new(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let codec = CodecId::ALL[rng.below(CodecId::ALL.len())];
    let width = 16 * (1 + rng.below(5)); // 16..=80
    let height = 16 * (1 + rng.below(5));
    let n_frames = 1 + rng.below(5); // 1..=5
    let mut frames = Vec::with_capacity(n_frames);
    // Mix of content classes so the encoder sees flat, structured and
    // noisy macroblocks (pure noise defeats prediction entirely and
    // would leave intra/inter decision paths untested).
    let style = rng.below(3);
    for fi in 0..n_frames {
        let mut frame = Frame::new(width, height);
        let (y, cb, cr) = frame.planes_mut();
        for plane in [y, cb, cr] {
            let w = plane.width();
            for (i, px) in plane.data_mut().iter_mut().enumerate() {
                *px = match style {
                    // Flat with sparse impulses.
                    0 => {
                        if rng.below(32) == 0 {
                            (rng.next_u64() & 0xFF) as u8
                        } else {
                            128
                        }
                    }
                    // Moving gradient (temporal motion for P/B frames).
                    1 => ((i % w + i / w + fi * 3) & 0xFF) as u8,
                    // Full-range noise.
                    _ => (rng.next_u64() & 0xFF) as u8,
                };
            }
        }
        frames.push(frame);
    }
    let options = CodingOptions {
        mpeg_qscale: 1 + rng.below(10) as u16,
        b_frames: rng.below(4) as u8,
        search_range: [8u16, 16, 24][rng.below(3)],
        intra_period: if rng.below(2) == 0 {
            None
        } else {
            Some(1 + rng.below(4) as u32)
        },
        simd: SimdLevel::Scalar,
        h264_refs: 1 + rng.below(3) as u8,
        h264_qp_offset: -5,
    };
    RoundtripCase {
        codec,
        width,
        height,
        frames,
        options,
    }
}

/// Encodes the case's frames under `simd`, returning the packet bytes.
fn encode_under(case: &RoundtripCase, simd: SimdLevel) -> Result<Vec<Packet>, String> {
    let run = || -> Result<Vec<Packet>, String> {
        let resolution = hdvb_frame::Resolution::new(case.width as u32, case.height as u32);
        let options = case.options.with_simd(simd);
        let mut enc =
            create_encoder(case.codec, resolution, &options).map_err(|e| e.to_string())?;
        let mut packets = Vec::new();
        for frame in &case.frames {
            packets.extend(enc.encode_frame(frame).map_err(|e| e.to_string())?);
        }
        packets.extend(enc.finish().map_err(|e| e.to_string())?);
        Ok(packets)
    };
    catch_unwind(AssertUnwindSafe(run))
        .unwrap_or_else(|p| Err(format!("encoder panic: {}", crate::panic_text(p))))
}

/// Decodes `packets` under `simd`, returning `(frame_count, hash)`.
fn decode_under(
    codec: CodecId,
    packets: &[Packet],
    simd: SimdLevel,
) -> Result<(usize, u64), String> {
    let run = || -> Result<(usize, u64), String> {
        let mut dec = create_decoder(codec, simd);
        let mut count = 0usize;
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        let mut absorb = |frames: &[Frame]| {
            count += frames.len();
            for f in frames {
                for bytes in [f.y().data(), f.cb().data(), f.cr().data()] {
                    for &b in bytes {
                        hash ^= u64::from(b);
                        hash = hash.wrapping_mul(0x100_0000_01B3);
                    }
                }
            }
        };
        for p in packets {
            absorb(&dec.decode_packet(&p.data).map_err(|e| e.to_string())?);
        }
        absorb(&dec.finish());
        Ok((count, hash))
    };
    catch_unwind(AssertUnwindSafe(run))
        .unwrap_or_else(|p| Err(format!("decoder panic: {}", crate::panic_text(p))))
}

/// Runs one full round-trip check: encode under every tier (streams
/// must be byte-identical), decode under every tier serially and — when
/// a pool is given — on worker threads (reconstructions must be
/// bit-identical and complete).
///
/// # Errors
///
/// A human-readable description naming the `(seed, index)` reproducer.
pub fn roundtrip_check(seed: u64, index: u64, pool: Option<&ThreadPool>) -> Result<(), String> {
    let case = generate_case(seed, index);
    let ctx = format!(
        "roundtrip seed={seed} index={index}: {} {}x{} frames={} q={} b={} sr={} ip={:?}",
        case.codec,
        case.width,
        case.height,
        case.frames.len(),
        case.options.mpeg_qscale,
        case.options.b_frames,
        case.options.search_range,
        case.options.intra_period,
    );
    let tiers = SimdLevel::supported_tiers();

    // Invariant 1: every tier encodes the same bytes.
    let baseline = encode_under(&case, tiers[0]).map_err(|e| format!("{ctx}: {e}"))?;
    for &tier in &tiers[1..] {
        let packets = encode_under(&case, tier).map_err(|e| format!("{ctx}: {e}"))?;
        let same = packets.len() == baseline.len()
            && packets.iter().zip(&baseline).all(|(a, b)| a.data == b.data);
        if !same {
            return Err(format!(
                "{ctx}: encoder divergence between {:?} and {tier:?} ({} vs {} packets)",
                tiers[0],
                baseline.len(),
                packets.len()
            ));
        }
    }

    // Invariant 2: every tier reconstructs identical frames, all of them.
    let (count0, hash0) =
        decode_under(case.codec, &baseline, tiers[0]).map_err(|e| format!("{ctx}: {e}"))?;
    if count0 != case.frames.len() {
        return Err(format!(
            "{ctx}: decoded {count0} of {} frames",
            case.frames.len()
        ));
    }
    for &tier in &tiers[1..] {
        let (count, hash) =
            decode_under(case.codec, &baseline, tier).map_err(|e| format!("{ctx}: {e}"))?;
        if (count, hash) != (count0, hash0) {
            return Err(format!(
                "{ctx}: reconstruction divergence between {:?} and {tier:?}",
                tiers[0]
            ));
        }
    }
    if let Some(pool) = pool {
        // The thread-count axis: the same decodes fanned across worker
        // threads must agree with the serial baseline.
        let results = pool.par_map(tiers.clone(), |tier| {
            decode_under(case.codec, &baseline, tier)
        });
        let results =
            results.map_err(|p| format!("{ctx}: pooled decode panicked: {}", p.message))?;
        for (tier, r) in tiers.iter().zip(results) {
            let (count, hash) = r.map_err(|e| format!("{ctx}: pool/{tier:?}: {e}"))?;
            if (count, hash) != (count0, hash0) {
                return Err(format!(
                    "{ctx}: pooled reconstruction divergence on {tier:?}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_reproducible() {
        let a = generate_case(3, 5);
        let b = generate_case(3, 5);
        assert_eq!(a.codec, b.codec);
        assert_eq!(a.width, b.width);
        assert_eq!(a.frames.len(), b.frames.len());
        assert_eq!(a.frames[0].y().data(), b.frames[0].y().data());
        let c = generate_case(3, 6);
        // Different index, different case (width, codec or content).
        let same_everything = a.codec == c.codec
            && a.width == c.width
            && a.height == c.height
            && a.frames.len() == c.frames.len()
            && a.frames[0].y().data() == c.frames[0].y().data();
        assert!(!same_everything);
    }

    #[test]
    fn roundtrips_are_clean_serial_and_pooled() {
        let pool = ThreadPool::new(3);
        for index in 0..6 {
            roundtrip_check(11, index, Some(&pool)).unwrap();
        }
    }
}
