use crate::{blue_sky, pedestrian, riverbed, rush_hour};
use hdvb_frame::{Frame, FrameRate, Resolution, VideoFormat};
use std::fmt;

/// Number of frames per sequence in the benchmark (paper Table III).
pub const FRAME_COUNT: u32 = 100;

/// The four HD-VideoBench test sequences (paper Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SequenceId {
    /// Tops of two trees against a blue sky; camera rotation.
    BlueSky,
    /// Pedestrian area with large movers close to a static camera.
    PedestrianArea,
    /// Riverbed seen through water; very hard to code.
    Riverbed,
    /// Munich rush hour; many slowly moving cars, fixed camera.
    RushHour,
}

impl SequenceId {
    /// All four sequences, in the paper's table order.
    pub const ALL: [SequenceId; 4] = [
        SequenceId::BlueSky,
        SequenceId::PedestrianArea,
        SequenceId::Riverbed,
        SequenceId::RushHour,
    ];

    /// Snake-case name used in file names and reports
    /// (e.g. `"blue_sky"`).
    pub fn name(self) -> &'static str {
        match self {
            SequenceId::BlueSky => "blue_sky",
            SequenceId::PedestrianArea => "pedestrian_area",
            SequenceId::Riverbed => "riverbed",
            SequenceId::RushHour => "rush_hour",
        }
    }

    /// The paper's description of the sequence (Table III).
    pub fn description(self) -> &'static str {
        match self {
            SequenceId::BlueSky => {
                "top of two trees against blue sky; high contrast, small colour \
                 differences in the sky, many details, camera rotation"
            }
            SequenceId::PedestrianArea => {
                "shot of a pedestrian area; low camera position, people pass very \
                 close to the camera, high depth of field, static camera"
            }
            SequenceId::Riverbed => "riverbed seen through the water; very hard to code",
            SequenceId::RushHour => {
                "rush hour in Munich; many cars moving slowly, high depth of \
                 focus, fixed camera"
            }
        }
    }

    /// Parses a sequence from its snake-case name.
    pub fn from_name(name: &str) -> Option<SequenceId> {
        SequenceId::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for SequenceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A renderable test sequence: a [`SequenceId`] at a concrete resolution.
///
/// Frames are pure functions of the index, so a `Sequence` is `Copy` and
/// never buffers pixel data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Sequence {
    id: SequenceId,
    resolution: Resolution,
}

impl Sequence {
    /// Creates a sequence at the given resolution.
    pub fn new(id: SequenceId, resolution: Resolution) -> Self {
        Sequence { id, resolution }
    }

    /// Which of the four clips this is.
    pub fn id(&self) -> SequenceId {
        self.id
    }

    /// The sequence's resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// The raw video format (always 25 fps, 4:2:0 progressive).
    pub fn format(&self) -> VideoFormat {
        VideoFormat {
            resolution: self.resolution,
            frame_rate: FrameRate::FPS_25,
        }
    }

    /// Renders frame `index` (0-based; the benchmark uses
    /// `0..`[`FRAME_COUNT`]).
    pub fn frame(&self, index: u32) -> Frame {
        match self.id {
            SequenceId::BlueSky => blue_sky::render(self.resolution, index),
            SequenceId::PedestrianArea => pedestrian::render(self.resolution, index),
            SequenceId::Riverbed => riverbed::render(self.resolution, index),
            SequenceId::RushHour => rush_hour::render(self.resolution, index),
        }
    }

    /// Iterator over the standard 100 frames.
    pub fn frames(&self) -> impl Iterator<Item = Frame> + '_ {
        (0..FRAME_COUNT).map(move |i| self.frame(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for id in SequenceId::ALL {
            assert_eq!(SequenceId::from_name(id.name()), Some(id));
        }
        assert_eq!(SequenceId::from_name("nope"), None);
    }

    #[test]
    fn all_sequences_render_at_all_test_resolutions() {
        for id in SequenceId::ALL {
            for res in [Resolution::new(64, 48), Resolution::new(96, 80)] {
                let seq = Sequence::new(id, res);
                let f = seq.frame(0);
                assert_eq!(f.width(), res.width());
                assert_eq!(f.height(), res.height());
            }
        }
    }

    #[test]
    fn sequences_have_distinct_content() {
        let res = Resolution::new(96, 64);
        let frames: Vec<Frame> = SequenceId::ALL
            .iter()
            .map(|&id| Sequence::new(id, res).frame(0))
            .collect();
        for i in 0..frames.len() {
            for j in i + 1..frames.len() {
                assert_ne!(frames[i], frames[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn every_sequence_has_motion() {
        let res = Resolution::new(96, 64);
        for id in SequenceId::ALL {
            let seq = Sequence::new(id, res);
            assert!(seq.frame(0).y().sad(seq.frame(3).y()) > 0, "{id} is static");
        }
    }

    #[test]
    fn riverbed_is_the_least_temporally_predictable() {
        // The property that makes it "very hard to code" must hold
        // relative to every other sequence.
        let res = Resolution::new(96, 64);
        let diff = |id: SequenceId| {
            let s = Sequence::new(id, res);
            s.frame(10).y().sad(s.frame(11).y())
        };
        let river = diff(SequenceId::Riverbed);
        for other in [
            SequenceId::BlueSky,
            SequenceId::PedestrianArea,
            SequenceId::RushHour,
        ] {
            assert!(
                river > diff(other),
                "riverbed ({river}) not harder than {other} ({})",
                diff(other)
            );
        }
    }

    #[test]
    fn format_is_25fps() {
        let s = Sequence::new(SequenceId::BlueSky, Resolution::new(64, 64));
        assert_eq!(s.format().frame_rate, FrameRate::FPS_25);
    }

    #[test]
    fn frames_iterator_yields_100() {
        let s = Sequence::new(SequenceId::RushHour, Resolution::new(16, 16));
        assert_eq!(s.frames().count(), 100);
    }
}
