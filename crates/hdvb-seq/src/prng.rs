/// A tiny deterministic PRNG (SplitMix64) used by the sequence
/// generators.
///
/// The generators must be pure functions of `(sequence, frame index)`;
/// SplitMix's stateless `hash` form gives reproducible per-coordinate
/// randomness without carrying state across frames.
///
/// # Example
///
/// ```
/// use hdvb_seq::SplitMix;
///
/// let mut a = SplitMix::new(42);
/// let mut b = SplitMix::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert_eq!(SplitMix::hash(7, 9), SplitMix::hash(7, 9));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        Self::mix(self.state)
    }

    /// A float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A float in `[lo, hi)`.
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Stateless hash of two values — positional randomness.
    pub fn hash(a: u64, b: u64) -> u64 {
        Self::mix(a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_add(0xBF58_476D_1CE4_E5B9))
    }

    /// Stateless hash of three values (e.g. `x`, `y`, `frame`).
    pub fn hash3(a: u64, b: u64, c: u64) -> u64 {
        Self::mix(Self::hash(a, b) ^ c.wrapping_mul(0x94D0_49BB_1331_11EB))
    }

    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix::new(123);
        let mut b = SplitMix::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix::new(1);
        let mut b = SplitMix::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SplitMix::new(7);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn float_mean_is_roughly_half() {
        let mut r = SplitMix::new(99);
        let mean: f64 = (0..4096).map(|_| r.next_f64()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.03, "{mean}");
    }

    #[test]
    fn hash_is_position_sensitive() {
        assert_ne!(SplitMix::hash(1, 2), SplitMix::hash(2, 1));
        assert_ne!(SplitMix::hash3(1, 2, 3), SplitMix::hash3(1, 2, 4));
    }
}
