//! Synthetic input sequences for HD-VideoBench.
//!
//! The original benchmark uses four copyrighted camera sequences from TU
//! München (paper Table III): *blue sky*, *pedestrian area*, *riverbed*
//! and *rush hour*, each 100 frames at 25 fps in three resolutions. This
//! crate substitutes deterministic procedural generators that reproduce
//! the axes the paper selected those sequences for — their motion
//! character and spatial detail:
//!
//! | sequence | paper's description | generator model |
//! |---|---|---|
//! | blue sky | trees against sky, high contrast, camera **rotation** | rotating view of a procedural sky + tree-silhouette world |
//! | pedestrian area | large **close-up movers**, static camera | static textured plaza + large elliptical walkers |
//! | riverbed | water, "**very hard to code**" | temporally decorrelated shimmering noise field |
//! | rush hour | **many slow small movers**, fixed camera, haze | street scene with lanes of slow cars under haze |
//!
//! Every frame is a pure function of `(sequence, resolution, index)`, so
//! any frame can be regenerated at any time without buffering the clip.
//!
//! # Example
//!
//! ```
//! use hdvb_frame::Resolution;
//! use hdvb_seq::{Sequence, SequenceId};
//!
//! let seq = Sequence::new(SequenceId::BlueSky, Resolution::new(96, 64));
//! let f0 = seq.frame(0);
//! let f1 = seq.frame(1);
//! assert_ne!(f0, f1);            // the camera rotates
//! assert_eq!(seq.frame(0), f0);  // but generation is deterministic
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod blue_sky;
mod catalog;
mod noise;
mod paint;
mod pedestrian;
mod prng;
mod riverbed;
mod rush_hour;
mod screen;

pub use catalog::{Sequence, SequenceId, FRAME_COUNT};
pub use noise::ValueNoise;
pub use prng::SplitMix;
pub use screen::ScreenContent;
