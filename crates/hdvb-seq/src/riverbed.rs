//! "Riverbed": a riverbed seen through moving water — the paper flags it
//! as "very hard to code". The difficulty comes from near-total temporal
//! decorrelation: every frame the water refracts differently, so motion
//! compensation finds almost nothing to predict from.

use crate::noise::ValueNoise;
use crate::paint::{fill_with, Ycc};
use crate::SplitMix;
use hdvb_frame::{Frame, Resolution};

pub(crate) fn render(resolution: Resolution, index: u32) -> Frame {
    let w = resolution.width();
    let h = resolution.height();
    let mut frame = Frame::new(w, h);
    let bed = ValueNoise::new(0xBED);
    // A *different* refraction field every frame: temporal decorrelation
    // is the defining property of this sequence.
    let refract_x = ValueNoise::new(0xAA00 + u64::from(index));
    let refract_y = ValueNoise::new(0xBB00 + u64::from(index));
    let sparkle_seed = u64::from(index);

    let s = 1.0 / h as f64;
    fill_with(&mut frame, |px, py| {
        let u = px as f64 * s;
        let v = py as f64 * s;
        // Water refraction warps the sampling position of the static bed
        // by a large, frame-unique displacement.
        let wob = 0.08;
        let du = wob * refract_x.fbm(u * 14.0, v * 14.0, 2);
        let dv = wob * refract_y.fbm(u * 14.0 + 7.0, v * 14.0, 2);
        // Static pebble bed, fine-grained.
        let stones = bed.fbm((u + du) * 45.0, (v + dv) * 45.0, 3);
        let mut luma = 95.0 + 55.0 * stones;
        // Specular sparkle: independent salt noise per frame.
        let hash = SplitMix::hash3(px as u64, py as u64, sparkle_seed);
        if hash.is_multiple_of(97) {
            luma = 235.0;
        } else {
            luma += ((hash >> 32) % 17) as f64 - 8.0; // fine shimmer
        }
        let cb = (132.0 + 8.0 * stones) as u8; // slightly blue water
        let cr = (118.0 - 6.0 * stones) as u8;
        Ycc::new(luma.clamp(8.0, 245.0) as u8, cb, cr)
    });
    frame
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_abs_temporal_diff(r: Resolution, a: u32, b: u32) -> f64 {
        let fa = render(r, a);
        let fb = render(r, b);
        fa.y().sad(fb.y()) as f64 / fa.y().data().len() as f64
    }

    #[test]
    fn frames_are_strongly_decorrelated() {
        let r = Resolution::new(96, 64);
        let d = mean_abs_temporal_diff(r, 5, 6);
        assert!(d > 8.0, "adjacent riverbed frames too similar: {d}");
    }

    #[test]
    fn harder_than_a_static_scene_by_construction() {
        // Same-frame difference is zero; adjacent frames are far apart —
        // the decoder-side property the paper's "very hard to code" rests
        // on.
        let r = Resolution::new(96, 64);
        assert_eq!(mean_abs_temporal_diff(r, 9, 9), 0.0);
        assert!(mean_abs_temporal_diff(r, 9, 10) > 5.0);
    }

    #[test]
    fn spatial_detail_is_high() {
        let f = render(Resolution::new(96, 64), 0);
        // Horizontal gradient energy: fine texture means large
        // neighbour-to-neighbour differences.
        let mut grad = 0u64;
        for y in 0..64 {
            for x in 0..95 {
                grad += u64::from(f.y().get(x, y).abs_diff(f.y().get(x + 1, y)));
            }
        }
        let mean = grad as f64 / (95.0 * 64.0);
        assert!(mean > 6.0, "mean gradient {mean}");
    }

    #[test]
    fn deterministic() {
        let r = Resolution::new(64, 64);
        assert_eq!(render(r, 70), render(r, 70));
    }
}
