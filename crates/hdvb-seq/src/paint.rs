//! Frame-painting helpers shared by the generators.

use hdvb_frame::Frame;

/// A colour in YCbCr (full-range 8-bit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Ycc {
    pub y: u8,
    pub cb: u8,
    pub cr: u8,
}

impl Ycc {
    pub(crate) const fn new(y: u8, cb: u8, cr: u8) -> Self {
        Ycc { y, cb, cr }
    }

    /// The colour with its luma offset by `d`, saturating.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn with_luma_offset(self, d: i32) -> Ycc {
        Ycc {
            y: (i32::from(self.y) + d).clamp(0, 255) as u8,
            ..self
        }
    }
}

/// Fills the whole frame by evaluating `f(x, y) -> Ycc` per luma pixel;
/// chroma is written from the even-coordinate samples (simple 4:2:0
/// siting, adequate for synthetic content).
pub(crate) fn fill_with<F: FnMut(usize, usize) -> Ycc>(frame: &mut Frame, mut f: F) {
    let (w, h) = (frame.width(), frame.height());
    let (yp, cb, cr) = frame.planes_mut();
    for y in 0..h {
        for x in 0..w {
            let c = f(x, y);
            yp.set(x, y, c.y);
            if x % 2 == 0 && y % 2 == 0 {
                cb.set(x / 2, y / 2, c.cb);
                cr.set(x / 2, y / 2, c.cr);
            }
        }
    }
}

/// Paints a filled axis-aligned ellipse; pixels outside the frame are
/// clipped. `shade(dx, dy)` receives normalised offsets in `[-1, 1]` from
/// the centre, letting callers shade the interior.
pub(crate) fn fill_ellipse<F: FnMut(f64, f64) -> Ycc>(
    frame: &mut Frame,
    cx: f64,
    cy: f64,
    rx: f64,
    ry: f64,
    mut shade: F,
) {
    if rx <= 0.0 || ry <= 0.0 {
        return;
    }
    let (w, h) = (frame.width() as i64, frame.height() as i64);
    let x0 = ((cx - rx).floor() as i64).clamp(0, w);
    let x1 = ((cx + rx).ceil() as i64).clamp(0, w);
    let y0 = ((cy - ry).floor() as i64).clamp(0, h);
    let y1 = ((cy + ry).ceil() as i64).clamp(0, h);
    let (yp, cbp, crp) = frame.planes_mut();
    for py in y0..y1 {
        for px in x0..x1 {
            let dx = (px as f64 + 0.5 - cx) / rx;
            let dy = (py as f64 + 0.5 - cy) / ry;
            if dx * dx + dy * dy <= 1.0 {
                let c = shade(dx, dy);
                yp.set(px as usize, py as usize, c.y);
                if px % 2 == 0 && py % 2 == 0 {
                    cbp.set(px as usize / 2, py as usize / 2, c.cb);
                    crp.set(px as usize / 2, py as usize / 2, c.cr);
                }
            }
        }
    }
}

/// Paints a filled rectangle (clipped), shading per pixel.
pub(crate) fn fill_rect<F: FnMut(usize, usize) -> Ycc>(
    frame: &mut Frame,
    x: i64,
    y: i64,
    w: i64,
    h: i64,
    mut shade: F,
) {
    let (fw, fh) = (frame.width() as i64, frame.height() as i64);
    let x0 = x.clamp(0, fw);
    let y0 = y.clamp(0, fh);
    let x1 = (x + w).clamp(0, fw);
    let y1 = (y + h).clamp(0, fh);
    let (yp, cbp, crp) = frame.planes_mut();
    for py in y0..y1 {
        for px in x0..x1 {
            let c = shade((px - x) as usize, (py - y) as usize);
            yp.set(px as usize, py as usize, c.y);
            if px % 2 == 0 && py % 2 == 0 {
                cbp.set(px as usize / 2, py as usize / 2, c.cb);
                crp.set(px as usize / 2, py as usize / 2, c.cr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_with_covers_every_pixel() {
        let mut f = Frame::new(16, 8);
        fill_with(&mut f, |_, _| Ycc::new(9, 10, 11));
        assert!(f.y().data().iter().all(|&v| v == 9));
        assert!(f.cb().data().iter().all(|&v| v == 10));
        assert!(f.cr().data().iter().all(|&v| v == 11));
    }

    #[test]
    fn ellipse_clips_at_borders() {
        let mut f = Frame::new(16, 16);
        f.y_mut().fill(0);
        // Centre outside the frame; must not panic and must paint the
        // visible part.
        fill_ellipse(&mut f, -2.0, 8.0, 6.0, 6.0, |_, _| Ycc::new(200, 128, 128));
        assert!(f.y().get(0, 8) > 0);
        assert_eq!(f.y().get(15, 8), 0);
    }

    #[test]
    fn ellipse_stays_inside_its_bounding_box() {
        let mut f = Frame::new(32, 32);
        f.y_mut().fill(0);
        fill_ellipse(&mut f, 16.0, 16.0, 5.0, 3.0, |_, _| Ycc::new(255, 128, 128));
        assert_eq!(f.y().get(16, 10), 0); // above the ellipse
        assert_eq!(f.y().get(9, 16), 0); // left of the ellipse
        assert_eq!(f.y().get(16, 16), 255); // centre
    }

    #[test]
    fn rect_negative_origin_clips() {
        let mut f = Frame::new(8, 8);
        f.y_mut().fill(0);
        fill_rect(&mut f, -4, -4, 6, 6, |_, _| Ycc::new(50, 128, 128));
        assert_eq!(f.y().get(0, 0), 50);
        assert_eq!(f.y().get(1, 1), 50);
        assert_eq!(f.y().get(2, 2), 0);
    }

    #[test]
    fn luma_offset_saturates() {
        let c = Ycc::new(250, 128, 128);
        assert_eq!(c.with_luma_offset(20).y, 255);
        assert_eq!(c.with_luma_offset(-255).y, 0);
    }
}
