//! "Rush hour": rush-hour traffic in Munich — many cars moving slowly,
//! high depth of focus, fixed camera, summer haze (paper Table III).

use crate::noise::ValueNoise;
use crate::paint::{fill_rect, fill_with, Ycc};
use crate::SplitMix;
use hdvb_frame::{Frame, Resolution};

struct Car {
    /// Lane index (0..LANES); lower lanes are nearer the camera.
    lane: usize,
    /// Fractional position along the road at frame 0.
    phase: f64,
    /// Pixels (at 576-line scale) moved per frame — slow traffic.
    speed: f64,
    /// Body luma/chroma.
    luma: u8,
    cb: u8,
    cr: u8,
}

const LANES: usize = 4;

fn cars() -> Vec<Car> {
    // A deterministic fleet: 18 cars across 4 lanes, alternating
    // direction by lane, speeds 0.4..2.2 px/frame at 576p scale.
    let mut out = Vec::new();
    let mut rng = SplitMix::new(0x0CA5);
    for i in 0..18 {
        let lane = i % LANES;
        let dir = if lane < LANES / 2 { 1.0 } else { -1.0 };
        out.push(Car {
            lane,
            phase: rng.next_f64(),
            speed: dir * rng.next_range(0.4, 2.2),
            luma: 40 + (rng.next_u64() % 170) as u8,
            cb: 112 + (rng.next_u64() % 32) as u8,
            cr: 112 + (rng.next_u64() % 32) as u8,
        });
    }
    out
}

pub(crate) fn render(resolution: Resolution, index: u32) -> Frame {
    let w = resolution.width();
    let h = resolution.height();
    let mut frame = Frame::new(w, h);
    let tex = ValueNoise::new(0x0AD5);
    let scale = h as f64 / 576.0;

    // Static scene: buildings at the top, road below, haze lifting
    // contrast toward the top ("summer haze").
    let road_top = 0.40 * h as f64;
    fill_with(&mut frame, |px, py| {
        let u = px as f64 / h as f64;
        let v = py as f64 / h as f64;
        let haze = ((road_top / h as f64 - v).max(0.0) * 60.0).min(45.0);
        if (py as f64) < road_top {
            // Building band with window detail, washed out by haze.
            let wx = (u * 14.0).fract();
            let wy = (v * 10.0).fract();
            let window = wx > 0.2 && wx < 0.75 && wy > 0.25 && wy < 0.8;
            let base = if window { 88.0 } else { 128.0 };
            let t = 8.0 * tex.fbm(u * 30.0, v * 30.0, 2);
            Ycc::new((base + t + haze).clamp(30.0, 235.0) as u8, 127, 128)
        } else {
            // Asphalt with lane markings.
            let lane_h = (h as f64 - road_top) / LANES as f64;
            let in_lane = ((py as f64 - road_top) / lane_h).fract();
            let dash = ((u * 20.0).fract() < 0.5) && in_lane < 0.06;
            let base = if dash { 190.0 } else { 92.0 };
            let t = 7.0 * tex.fbm(u * 50.0, v * 50.0 + 9.0, 2);
            Ycc::new((base + t).clamp(30.0, 220.0) as u8, 127, 129)
        }
    });

    // The fleet: small rectangles (cars) drifting slowly along lanes.
    let lane_h = (h as f64 - road_top) / LANES as f64;
    for car in cars() {
        let car_w = (46.0 * scale * (1.0 + car.lane as f64 * 0.18)).max(6.0);
        let car_h = (16.0 * scale * (1.0 + car.lane as f64 * 0.18)).max(4.0);
        let span = w as f64 + 2.0 * car_w;
        let pos = (car.phase * span
            + f64::from(index) * car.speed * scale * w as f64 / (720.0 * scale))
            .rem_euclid(span)
            - car_w;
        let cy = road_top + (car.lane as f64 + 0.55) * lane_h;
        let (luma, cb, cr) = (car.luma, car.cb, car.cr);
        fill_rect(
            &mut frame,
            pos as i64,
            (cy - car_h / 2.0) as i64,
            car_w as i64,
            car_h as i64,
            |rx, ry| {
                // Windshield band + body shading.
                let fx = rx as f64 / car_w;
                let glass = fx > 0.55 && fx < 0.75 && (ry as f64) < car_h * 0.5;
                if glass {
                    Ycc::new(60, 130, 122)
                } else {
                    Ycc::new(luma, cb, cr)
                }
            },
        );
    }
    frame
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motion_is_slow_and_local() {
        let r = Resolution::new(144, 96);
        let a = render(r, 20);
        let b = render(r, 21);
        let changed = a
            .y()
            .data()
            .iter()
            .zip(b.y().data())
            .filter(|(x, y)| x != y)
            .count();
        let total = a.y().data().len();
        assert!(changed > 0);
        // Slow small movers: only a modest fraction of pixels change per
        // frame.
        assert!(changed < total / 4, "{changed}/{total}");
    }

    #[test]
    fn many_independent_movers() {
        // Compare frames far apart: multiple disjoint regions must have
        // changed (several cars, not one big object).
        let r = Resolution::new(144, 96);
        let a = render(r, 0);
        let b = render(r, 40);
        // Count connected-ish changed columns as a proxy for mover count.
        let mut regions = 0;
        let mut in_region = false;
        for x in 0..144 {
            let col_changed = (0..96).any(|y| a.y().get(x, y) != b.y().get(x, y));
            if col_changed && !in_region {
                regions += 1;
                in_region = true;
            } else if !col_changed {
                in_region = false;
            }
        }
        assert!(regions >= 3, "only {regions} changed column-regions");
    }

    #[test]
    fn haze_brightens_the_top() {
        let f = render(Resolution::new(96, 96), 0);
        let top_mean: f64 = (0..16)
            .flat_map(|y| (0..96).map(move |x| (x, y)))
            .map(|(x, y)| f64::from(f.y().get(x, y)))
            .sum::<f64>()
            / (96.0 * 16.0);
        let road_mean: f64 = (70..86)
            .flat_map(|y| (0..96).map(move |x| (x, y)))
            .map(|(x, y)| f64::from(f.y().get(x, y)))
            .sum::<f64>()
            / (96.0 * 16.0);
        assert!(top_mean > road_mean, "{top_mean} vs {road_mean}");
    }

    #[test]
    fn deterministic() {
        let r = Resolution::new(64, 64);
        assert_eq!(render(r, 88), render(r, 88));
    }
}
