//! "Screen": synthetic remote-desktop content — text glyphs, 1-pixel
//! chrome, large static regions, a scrolling document and a moving
//! window.
//!
//! The four camera sequences (Table III) characterise natural HD video:
//! smooth gradients, film grain, motion blur. Production transcode
//! traffic is increasingly *screen content*, whose statistics are the
//! opposite — razor-sharp edges, flat runs hundreds of pixels long,
//! repeated glyph shapes, and motion that is pure integer translation
//! (scrolling, window drags). Codecs behave very differently on it
//! (intra prediction and motion search both get much easier, residuals
//! get much harder), which is why it ships as a separate workload family
//! rather than a fifth entry in [`SequenceId`](crate::SequenceId) — the
//! Table-V/Figure-1 sweep grids stay exactly the four paper clips.
//!
//! Every frame is a pure function of `(seed, resolution, index)`: all
//! geometry is integer arithmetic and all "randomness" is positional
//! [`SplitMix`] hashing, so golden frame hashes are stable across
//! platforms and SIMD tiers (`tests/corpus/screen/`).

use crate::paint::{fill_rect, fill_with, Ycc};
use crate::prng::SplitMix;
use crate::FRAME_COUNT;
use hdvb_frame::{Frame, Resolution, VideoFormat};

/// Scrolling speed of the document body, in pixels per frame at scale 1.
const SCROLL_PER_FRAME: u32 = 2;

/// A deterministic screen-content generator.
///
/// ```
/// use hdvb_frame::Resolution;
/// use hdvb_seq::ScreenContent;
///
/// let screen = ScreenContent::new(Resolution::new(288, 160), 1);
/// let a = screen.frame(3);
/// let b = screen.frame(3);
/// assert_eq!(a.y().data(), b.y().data()); // pure function of the index
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ScreenContent {
    resolution: Resolution,
    seed: u64,
}

impl ScreenContent {
    /// Creates a generator for one desktop. The `seed` selects the text,
    /// icon shades and window trajectory.
    pub fn new(resolution: Resolution, seed: u64) -> Self {
        ScreenContent { resolution, seed }
    }

    /// The frame geometry.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// The seed this desktop was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The raw video format (25 fps, matching the camera sequences).
    pub fn format(&self) -> VideoFormat {
        VideoFormat::at_25fps(self.resolution)
    }

    /// Iterator over the standard benchmark clip length
    /// ([`FRAME_COUNT`] frames).
    pub fn frames(&self) -> impl Iterator<Item = Frame> + '_ {
        (0..FRAME_COUNT).map(move |i| self.frame(i))
    }

    /// Renders frame `index`.
    pub fn frame(&self, index: u32) -> Frame {
        let w = self.resolution.width();
        let h = self.resolution.height();
        let seed = self.seed;
        // Integer UI scale: 1 at the 288-line tier, 2 at 576, 4 at 1088,
        // so every resolution shows the same desktop.
        let scale = (h / 272).max(1);
        let s = |v: usize| v * scale;

        let mut frame = Frame::new(w, h);

        // Wallpaper: a flat vertical gradient (large static, slowly
        // varying regions) with a faint 1-px diagonal weave.
        fill_with(&mut frame, |px, py| {
            let base = 52 + (py * 22 / h) as i32;
            let weave = if (px + py) % s(32) == 0 { 4 } else { 0 };
            Ycc::new((base + weave) as u8, 134, 123)
        });

        // Desktop icons down the left edge: static sharp-edged squares
        // with a dark "label" bar, shades keyed off the seed.
        let icon = s(14);
        let gap = s(8);
        for i in 0..5usize {
            let iy = (gap + i * (icon + s(6) + gap)) as i64;
            if iy + (icon + s(6)) as i64 >= (h - s(16)) as i64 {
                break;
            }
            let shade = 120 + (SplitMix::hash(seed, i as u64) % 96) as u8;
            fill_rect(
                &mut frame,
                gap as i64,
                iy,
                icon as i64,
                icon as i64,
                |ix, iyy| {
                    if ix == 0 || iyy == 0 || ix == icon - 1 || iyy == icon - 1 {
                        Ycc::new(20, 128, 128) // 1-px border
                    } else {
                        Ycc::new(shade, 118, 140)
                    }
                },
            );
            fill_rect(
                &mut frame,
                gap as i64,
                iy + (icon + s(2)) as i64,
                icon as i64,
                s(2).max(1) as i64,
                |_, _| Ycc::new(30, 128, 128),
            );
        }

        // The document window: static chrome, scrolling glyph text.
        let doc_x = (gap * 2 + icon) as i64;
        let doc_y = s(10) as i64;
        let doc_w = (w * 11 / 20) as i64;
        let doc_h = (h - s(16)) as i64 - doc_y - s(6) as i64;
        draw_window(&mut frame, doc_x, doc_y, doc_w, doc_h, scale, true);
        let title_h = s(9) as i64;
        let body_x = doc_x + 1;
        let body_y = doc_y + title_h;
        let body_w = doc_w - 2;
        let body_h = doc_h - title_h - 1;
        let scroll = u64::from(index) * u64::from(SCROLL_PER_FRAME) * scale as u64;
        let cell_w = s(6);
        let cell_h = s(10);
        let margin = s(4) as i64;
        fill_rect(&mut frame, body_x, body_y, body_w, body_h, |bx, by| {
            let paper = Ycc::new(236, 128, 128);
            let tx = bx as i64 - margin;
            if tx < 0 || tx >= body_w - 2 * margin {
                return paper;
            }
            let ty = by as u64 + scroll;
            let line = ty / cell_h as u64;
            let gy = (ty % cell_h as u64) as usize / scale;
            let col = (tx as u64) / cell_w as u64;
            let gx = (tx as usize) % cell_w / scale;
            // Ragged right margin and paragraph breaks.
            let line_len = 24 + SplitMix::hash3(seed, line, 0x11E) % 40;
            if SplitMix::hash(seed ^ 0xAA7A, line / 6).is_multiple_of(5) && line % 6 == 5 {
                return paper; // blank line between paragraphs
            }
            if col >= line_len {
                return paper;
            }
            let ch = SplitMix::hash3(seed, line, col);
            if ch.is_multiple_of(7) {
                return paper; // word space
            }
            if glyph_on(ch, gx, gy) {
                Ycc::new(24, 128, 128)
            } else {
                paper
            }
        });

        // A smaller window dragged across the desktop on a bouncing
        // integer path — pure translation, the canonical screen motion.
        let win_w = (w / 3) as i64;
        let win_h = (h * 3 / 10) as i64;
        let span_x = w as i64 - win_w;
        let span_y = (h - s(16)) as i64 - win_h;
        let vx = 3 + (SplitMix::hash(seed, 0xD7A6) % 3) as i64;
        let vy = 2 + (SplitMix::hash(seed, 0xD7A7) % 2) as i64;
        let phase_x = (SplitMix::hash(seed, 0xF0) % span_x.max(1) as u64) as i64;
        let phase_y = (SplitMix::hash(seed, 0xF1) % span_y.max(1) as u64) as i64;
        let wx = triangle(
            phase_x + i64::from(index) * vx * scale as i64,
            span_x.max(1),
        );
        let wy = triangle(
            phase_y + i64::from(index) * vy * scale as i64,
            span_y.max(1),
        );
        draw_window(&mut frame, wx, wy, win_w, win_h, scale, false);
        // Dialog content: horizontal separator rules and a button row —
        // static relative to the window, so the codec sees clean motion.
        let rule_gap = s(12) as i64;
        fill_rect(
            &mut frame,
            wx + 1,
            wy + s(9) as i64,
            win_w - 2,
            win_h - s(9) as i64 - 1,
            |bx, by| {
                if by as i64 % rule_gap == rule_gap - 1 {
                    Ycc::new(150, 128, 128)
                } else if bx as i64 % rule_gap < s(7) as i64 && (by as i64 / rule_gap) % 2 == 0 {
                    Ycc::new(90, 132, 126) // label stubs
                } else {
                    Ycc::new(214, 128, 128)
                }
            },
        );

        // Taskbar: dark strip with button slots and a "clock" whose
        // digits flip once a second (every 25 frames).
        let bar_h = s(16) as i64;
        let bar_y = h as i64 - bar_h;
        fill_rect(&mut frame, 0, bar_y, w as i64, bar_h, |_, by| {
            if by == 0 {
                Ycc::new(120, 128, 128)
            } else {
                Ycc::new(38, 130, 126)
            }
        });
        for b in 0..3i64 {
            fill_rect(
                &mut frame,
                s(4) as i64 + b * (s(30) + s(4)) as i64,
                bar_y + s(3) as i64,
                s(30) as i64,
                bar_h - s(6) as i64,
                |bx, by| {
                    if bx == 0
                        || by == 0
                        || bx == s(30) - 1
                        || by == (bar_h - s(6) as i64) as usize - 1
                    {
                        Ycc::new(90, 128, 128)
                    } else {
                        Ycc::new(58, 130, 126)
                    }
                },
            );
        }
        let secs = u64::from(index / 25);
        let clock_x = w as i64 - (4 * cell_w) as i64 - s(4) as i64;
        fill_rect(
            &mut frame,
            clock_x,
            bar_y + s(4) as i64,
            (4 * cell_w) as i64,
            s(8) as i64,
            |bx, by| {
                let digit_idx = bx / cell_w;
                let digit = (secs / 10u64.pow(3 - digit_idx.min(3) as u32)) % 10;
                let gx = bx % cell_w / scale;
                let gy = by / scale;
                if glyph_on(SplitMix::hash(0xC10C, digit), gx, gy) {
                    Ycc::new(230, 128, 128)
                } else {
                    Ycc::new(38, 130, 126)
                }
            },
        );

        // Mouse cursor: a small solid block on its own bouncing path,
        // always on top.
        let cx = triangle(i64::from(index) * 5 * scale as i64, w as i64 - s(4) as i64);
        let cy = triangle(
            (SplitMix::hash(seed, 0x0053) % h as u64) as i64 + i64::from(index) * 3 * scale as i64,
            h as i64 - s(6) as i64,
        );
        fill_rect(&mut frame, cx, cy, s(3) as i64, s(4) as i64, |_, _| {
            Ycc::new(250, 128, 128)
        });
        fill_rect(
            &mut frame,
            cx + 1,
            cy + s(4) as i64,
            1,
            s(2) as i64,
            |_, _| Ycc::new(250, 128, 128),
        );

        frame
    }
}

/// Window chrome: 1-px border, title bar (blue when `active`), blank
/// client area. Content is painted by the caller.
fn draw_window(frame: &mut Frame, x: i64, y: i64, w: i64, h: i64, scale: usize, active: bool) {
    let title_h = (9 * scale) as i64;
    let title = if active {
        Ycc::new(96, 160, 112)
    } else {
        Ycc::new(140, 140, 120)
    };
    fill_rect(frame, x, y, w, h, |bx, by| {
        let (bx, by) = (bx as i64, by as i64);
        if bx == 0 || by == 0 || bx == w - 1 || by == h - 1 {
            Ycc::new(16, 128, 128)
        } else if by < title_h {
            // Title bar with close-button square at the right edge.
            if bx > w - title_h && bx < w - 3 && by > 2 && by < title_h - 2 {
                Ycc::new(200, 118, 150)
            } else {
                title
            }
        } else {
            Ycc::new(236, 128, 128)
        }
    });
}

/// A 5×7 pseudo-glyph: positional hash bits with a forced left stem so
/// shapes read as letterforms rather than noise. Coordinates outside the
/// 5×7 cell are blank (inter-glyph and inter-line spacing).
fn glyph_on(ch: u64, gx: usize, gy: usize) -> bool {
    if gx >= 5 || gy >= 7 {
        return false;
    }
    if gx == 0 && (1..6).contains(&gy) {
        return true;
    }
    SplitMix::hash3(ch, gx as u64, gy as u64) % 5 < 2
}

/// Triangle wave: bounces `t` back and forth over `[0, span)`.
fn triangle(t: i64, span: i64) -> i64 {
    debug_assert!(span > 0);
    let period = 2 * span;
    let k = t.rem_euclid(period);
    if k < span {
        k
    } else {
        period - 1 - k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_pure_functions_of_seed_and_index() {
        let screen = ScreenContent::new(Resolution::new(96, 64), 7);
        let a = screen.frame(5);
        let b = screen.frame(5);
        assert_eq!(a.y().data(), b.y().data());
        assert_eq!(a.cb().data(), b.cb().data());
        assert_eq!(a.cr().data(), b.cr().data());
    }

    #[test]
    fn seeds_change_the_content() {
        let r = Resolution::new(96, 64);
        let a = ScreenContent::new(r, 1).frame(0);
        let b = ScreenContent::new(r, 2).frame(0);
        assert_ne!(a.y().data(), b.y().data());
    }

    #[test]
    fn consecutive_frames_differ_but_share_static_regions() {
        let screen = ScreenContent::new(Resolution::new(288, 160), 1);
        let a = screen.frame(0);
        let b = screen.frame(1);
        assert_ne!(a.y().data(), b.y().data(), "scroll/motion must move");
        // Large static share: most luma pixels identical frame-to-frame.
        let same = a
            .y()
            .data()
            .iter()
            .zip(b.y().data())
            .filter(|(x, y)| x == y)
            .count();
        assert!(
            same * 10 >= a.y().data().len() * 6,
            "only {same}/{} static pixels",
            a.y().data().len()
        );
    }

    #[test]
    fn has_sharp_edges_and_flat_runs() {
        let screen = ScreenContent::new(Resolution::new(288, 160), 1);
        let f = screen.frame(10);
        let y = f.y().data();
        let w = f.width();
        let mut max_step = 0i32;
        let mut longest_run = 0usize;
        let mut run = 1usize;
        for i in 1..y.len() {
            if i % w == 0 {
                run = 1;
                continue;
            }
            let d = (i32::from(y[i]) - i32::from(y[i - 1])).abs();
            max_step = max_step.max(d);
            if d == 0 {
                run += 1;
                longest_run = longest_run.max(run);
            } else {
                run = 1;
            }
        }
        assert!(max_step > 150, "no sharp edges (max step {max_step})");
        assert!(longest_run > 64, "no flat runs (longest {longest_run})");
    }

    #[test]
    fn scales_to_all_benchmark_tiers() {
        for r in [
            Resolution::new(288, 160),
            Resolution::DVD_576,
            Resolution::HD_720,
            Resolution::HD_1088,
        ] {
            let f = ScreenContent::new(r, 3).frame(2);
            assert_eq!(f.width(), r.width());
            assert_eq!(f.height(), r.height());
        }
    }

    #[test]
    fn triangle_wave_bounces_within_span() {
        for t in -20..200 {
            let v = triangle(t, 7);
            assert!((0..7).contains(&v), "t={t} -> {v}");
        }
        // Reflects rather than jumping: |Δ| ≤ 1 per step.
        for t in 0..50 {
            assert!((triangle(t + 1, 7) - triangle(t, 7)).abs() <= 1);
        }
    }
}
