use crate::SplitMix;

/// Seeded value noise over a 2-D lattice with smooth interpolation and
/// octave stacking — the texture primitive behind all four generators.
///
/// Sampling is stateless: `sample(x, y)` is a pure function of the seed
/// and coordinates, so generators can evaluate any frame independently.
///
/// # Example
///
/// ```
/// use hdvb_seq::ValueNoise;
///
/// let n = ValueNoise::new(7);
/// let v = n.fbm(1.5, 2.25, 3);
/// assert!((-1.0..=1.0).contains(&v));
/// assert_eq!(v, ValueNoise::new(7).fbm(1.5, 2.25, 3));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ValueNoise {
    seed: u64,
}

impl ValueNoise {
    /// Creates a noise field from a seed.
    pub fn new(seed: u64) -> Self {
        ValueNoise { seed }
    }

    /// Lattice value in `[-1, 1]` at integer coordinates.
    fn lattice(&self, ix: i64, iy: i64) -> f64 {
        let h = SplitMix::hash3(self.seed, ix as u64, iy as u64);
        (h >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }

    /// Smoothly interpolated noise in `[-1, 1]` at continuous
    /// coordinates.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let ix = x.floor();
        let iy = y.floor();
        let fx = x - ix;
        let fy = y - iy;
        let sx = fx * fx * (3.0 - 2.0 * fx); // smoothstep
        let sy = fy * fy * (3.0 - 2.0 * fy);
        let (ix, iy) = (ix as i64, iy as i64);
        let v00 = self.lattice(ix, iy);
        let v10 = self.lattice(ix + 1, iy);
        let v01 = self.lattice(ix, iy + 1);
        let v11 = self.lattice(ix + 1, iy + 1);
        let top = v00 + (v10 - v00) * sx;
        let bot = v01 + (v11 - v01) * sx;
        top + (bot - top) * sy
    }

    /// Fractal Brownian motion: `octaves` noise layers at doubling
    /// frequency and halving amplitude, normalised to `[-1, 1]`.
    pub fn fbm(&self, x: f64, y: f64, octaves: u32) -> f64 {
        let mut sum = 0.0;
        let mut amp = 1.0;
        let mut freq = 1.0;
        let mut norm = 0.0;
        for o in 0..octaves.max(1) {
            // Offset each octave so they do not share lattice points.
            let off = o as f64 * 17.137;
            sum += amp * self.sample(x * freq + off, y * freq + off);
            norm += amp;
            amp *= 0.5;
            freq *= 2.0;
        }
        sum / norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_continuous() {
        let n = ValueNoise::new(3);
        // Adjacent samples differ by a bounded amount.
        let mut prev = n.sample(0.0, 0.5);
        for i in 1..200 {
            let v = n.sample(i as f64 * 0.05, 0.5);
            assert!((v - prev).abs() < 0.35, "jump at {i}: {prev} -> {v}");
            prev = v;
        }
    }

    #[test]
    fn range_is_bounded() {
        let n = ValueNoise::new(11);
        for i in 0..500 {
            let v = n.fbm(i as f64 * 0.173, i as f64 * 0.091, 4);
            assert!((-1.0..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let a = ValueNoise::new(1);
        let b = ValueNoise::new(2);
        let mut same = 0;
        for i in 0..100 {
            let x = i as f64 * 0.37;
            if (a.sample(x, 0.0) - b.sample(x, 0.0)).abs() < 1e-6 {
                same += 1;
            }
        }
        assert!(same < 5);
    }

    #[test]
    fn matches_lattice_at_integers() {
        let n = ValueNoise::new(5);
        // At integer coordinates interpolation weight is zero.
        let direct = n.sample(3.0, 4.0);
        assert!((-1.0..=1.0).contains(&direct));
        // Moving a full cell changes the governing lattice point.
        assert_ne!(n.sample(3.0, 4.0), n.sample(4.0, 4.0));
    }

    #[test]
    fn variance_is_nontrivial() {
        let n = ValueNoise::new(21);
        let vals: Vec<f64> = (0..1000)
            .map(|i| n.fbm((i % 40) as f64 * 0.31, (i / 40) as f64 * 0.29, 3))
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        assert!(var > 0.01, "variance {var} too small");
    }
}
