//! "Pedestrian area": shot of a pedestrian area from a low, static
//! camera; people pass very close to the camera; high depth of field
//! (paper Table III).

use crate::noise::ValueNoise;
use crate::paint::{fill_ellipse, fill_with, Ycc};
use hdvb_frame::{Frame, Resolution};

struct Walker {
    /// Fraction of clip walked per frame (signed for direction).
    speed: f64,
    /// Phase offset of the crossing, in [0, 1).
    phase: f64,
    /// Vertical position of the body centre, fraction of height.
    cy: f64,
    /// Body half-height as a fraction of frame height (people are LARGE:
    /// they pass close to the camera).
    size: f64,
    /// Clothing luma.
    luma: u8,
    /// Clothing chroma.
    cb: u8,
    cr: u8,
}

fn walkers() -> Vec<Walker> {
    // Hand-tuned deterministic cast; sizes per the "very close to the
    // camera" description (up to ~70% of frame height).
    vec![
        Walker {
            speed: 0.0105,
            phase: 0.05,
            cy: 0.62,
            size: 0.34,
            luma: 70,
            cb: 118,
            cr: 140,
        },
        Walker {
            speed: -0.0085,
            phase: 0.35,
            cy: 0.58,
            size: 0.27,
            luma: 150,
            cb: 135,
            cr: 120,
        },
        Walker {
            speed: 0.0065,
            phase: 0.55,
            cy: 0.66,
            size: 0.22,
            luma: 105,
            cb: 125,
            cr: 125,
        },
        Walker {
            speed: -0.0125,
            phase: 0.75,
            cy: 0.70,
            size: 0.36,
            luma: 55,
            cb: 128,
            cr: 118,
        },
        Walker {
            speed: 0.0045,
            phase: 0.90,
            cy: 0.55,
            size: 0.17,
            luma: 180,
            cb: 122,
            cr: 133,
        },
    ]
}

pub(crate) fn render(resolution: Resolution, index: u32) -> Frame {
    let w = resolution.width();
    let h = resolution.height();
    let mut frame = Frame::new(w, h);
    let pavement = ValueNoise::new(0xCAFE);
    let facade = ValueNoise::new(0xFACA);

    // Static background: building facades above, cobbled pavement below.
    // "High depth of field" = sharp detail everywhere, no blur.
    let horizon = 0.45 * h as f64;
    fill_with(&mut frame, |px, py| {
        let u = px as f64 / h as f64;
        let v = py as f64 / h as f64;
        if (py as f64) < horizon {
            // Facade: window grid + texture.
            let wx = (u * 9.0).fract();
            let wy = (v * 7.0).fract();
            let window = wx > 0.25 && wx < 0.8 && wy > 0.3 && wy < 0.85;
            let base = if window { 62.0 } else { 148.0 };
            let tex = 14.0 * facade.fbm(u * 40.0, v * 40.0, 3);
            Ycc::new((base + tex).clamp(20.0, 220.0) as u8, 126, 131)
        } else {
            // Pavement: diagonal cobble pattern with fine noise.
            let cobble = ((u * 24.0 + v * 8.0).sin() * (v * 30.0 - u * 6.0).sin()) * 12.0;
            let tex = 10.0 * pavement.fbm(u * 55.0, v * 55.0, 3);
            let fall = (v - 0.45) * 30.0; // slightly brighter toward camera
            Ycc::new(
                (120.0 + cobble + tex + fall).clamp(40.0, 220.0) as u8,
                127,
                129,
            )
        }
    });

    // Large foreground walkers crossing horizontally.
    let clothes = ValueNoise::new(0xC10);
    let t = f64::from(index) / 100.0;
    for (i, wk) in walkers().iter().enumerate() {
        // Position wraps so walkers re-enter during the clip.
        let pos = (wk.phase + t * wk.speed * 100.0).rem_euclid(1.2) - 0.1;
        let cx = pos * w as f64;
        let cy = wk.cy * h as f64;
        let ry = wk.size * h as f64;
        let rx = ry * 0.38;
        let (luma, cb, cr) = (wk.luma, wk.cb, wk.cr);
        let seed_off = i as f64 * 13.7;
        // Body.
        fill_ellipse(&mut frame, cx, cy, rx, ry, |dx, dy| {
            let shade = (1.0 - dx * dx * 0.7) * (1.0 - dy * dy * 0.3);
            let tex = 10.0 * clothes.fbm(dx * 6.0 + seed_off, dy * 6.0, 2);
            Ycc::new(
                (f64::from(luma) * shade + tex).clamp(10.0, 235.0) as u8,
                cb,
                cr,
            )
        });
        // Head.
        fill_ellipse(
            &mut frame,
            cx,
            cy - ry * 1.18,
            rx * 0.45,
            ry * 0.28,
            |dx, dy| {
                let shade = 1.0 - 0.25 * (dx * dx + dy * dy);
                Ycc::new((168.0 * shade) as u8, 116, 145) // skin tone
            },
        );
    }
    frame
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn background_is_static_while_walkers_move() {
        let r = Resolution::new(128, 96);
        let a = render(r, 10);
        let b = render(r, 11);
        // Some pixels change (walkers) but most stay identical (static
        // camera, static background).
        let changed = a
            .y()
            .data()
            .iter()
            .zip(b.y().data())
            .filter(|(x, y)| x != y)
            .count();
        let total = a.y().data().len();
        assert!(changed > 0, "nothing moved");
        assert!(
            changed < total / 2,
            "{changed}/{total} changed — background not static"
        );
    }

    #[test]
    fn walkers_are_large() {
        // At least one mover's silhouette spans a third of frame height:
        // find the tallest run of "clothing-like" change between a frame
        // with and without (approximation: luma differs from background
        // frame rendered far in time).
        let r = Resolution::new(128, 96);
        let a = render(r, 0);
        let b = render(r, 50);
        let mut max_run = 0;
        for x in 0..128 {
            let mut run = 0;
            for y in 0..96 {
                if a.y().get(x, y) != b.y().get(x, y) {
                    run += 1;
                    max_run = max_run.max(run);
                } else {
                    run = 0;
                }
            }
        }
        assert!(max_run >= 96 / 3, "tallest mover run {max_run}");
    }

    #[test]
    fn deterministic() {
        let r = Resolution::new(64, 64);
        assert_eq!(render(r, 33), render(r, 33));
    }
}
