//! "Blue sky": tops of two trees against a blue sky, high contrast,
//! small colour differences in the sky, many details, camera rotation
//! (paper Table III).

use crate::noise::ValueNoise;
use crate::paint::{fill_with, Ycc};
use hdvb_frame::{Frame, Resolution};

/// Degrees of camera rotation per frame (~9.6° over the 100-frame clip).
const DEG_PER_FRAME: f64 = 0.096;

pub(crate) fn render(resolution: Resolution, index: u32) -> Frame {
    let w = resolution.width();
    let h = resolution.height();
    let mut frame = Frame::new(w, h);
    let detail = ValueNoise::new(0xB1DE);
    let canopy = ValueNoise::new(0x5EED);
    let sky_tint = ValueNoise::new(0x51C7);

    let angle = f64::from(index) * DEG_PER_FRAME * std::f64::consts::PI / 180.0;
    let (sin_a, cos_a) = angle.sin_cos();
    let (cx, cy) = (w as f64 * 0.5, h as f64 * 0.55);
    // World scale keyed to frame height so all three resolutions show the
    // same scene.
    let s = 1.0 / h as f64;

    fill_with(&mut frame, |px, py| {
        // Rotate the sampling position around the image centre.
        let dx = px as f64 + 0.5 - cx;
        let dy = py as f64 + 0.5 - cy;
        let u = (dx * cos_a - dy * sin_a) * s;
        let v = (dx * sin_a + dy * cos_a) * s;

        // Two tree canopies anchored in world space, entering from the
        // bottom corners; their outline is a noise-modulated boundary.
        let tree = |tx: f64, ty: f64, r: f64| -> f64 {
            let ddx = u - tx;
            let ddy = v - ty;
            let dist = (ddx * ddx + ddy * ddy).sqrt();
            let edge = 0.22 * canopy.fbm(u * 9.0 + tx * 31.0, v * 9.0, 3);
            r + edge - dist
        };
        let in_tree = tree(-0.38, 0.42, 0.33).max(tree(0.45, 0.50, 0.38));

        if in_tree > 0.0 {
            // Dark foliage with high-frequency detail ("many details",
            // "high contrast" against the sky).
            let leaf = detail.fbm(u * 60.0, v * 60.0, 3);
            let y = (36.0 + 34.0 * leaf).clamp(2.0, 110.0) as u8;
            Ycc::new(y, 122, 132)
        } else {
            // Sky: bright gradient toward the top with *small* colour
            // differences — a slow chroma drift.
            let grad = (0.5 - v).clamp(-0.6, 0.9);
            let y = (150.0 + 70.0 * grad + 6.0 * sky_tint.fbm(u * 3.0, v * 3.0, 2))
                .clamp(90.0, 245.0) as u8;
            let cb =
                (152.0 + 6.0 * sky_tint.fbm(u * 2.0 + 40.0, v * 2.0, 2)).clamp(140.0, 165.0) as u8;
            let cr =
                (108.0 + 4.0 * sky_tint.fbm(u * 2.0 - 40.0, v * 2.0, 2)).clamp(100.0, 118.0) as u8;
            Ycc::new(y, cb, cr)
        }
    });
    frame
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sky_is_blue_and_trees_are_dark() {
        let f = render(Resolution::new(96, 64), 0);
        // Mean Cb should be well above neutral (blue sky dominates).
        let mean_cb: f64 =
            f.cb().data().iter().map(|&v| f64::from(v)).sum::<f64>() / f.cb().data().len() as f64;
        assert!(mean_cb > 135.0, "mean cb {mean_cb}");
        // High contrast: luma spread must be wide.
        let min = f.y().data().iter().min().unwrap();
        let max = f.y().data().iter().max().unwrap();
        assert!(max - min > 120, "contrast {min}..{max}");
    }

    #[test]
    fn rotation_moves_the_scene() {
        let a = render(Resolution::new(96, 64), 0);
        let b = render(Resolution::new(96, 64), 20);
        assert!(a.y().sad(b.y()) > 0);
    }

    #[test]
    fn deterministic() {
        let a = render(Resolution::new(64, 64), 7);
        let b = render(Resolution::new(64, 64), 7);
        assert_eq!(a, b);
    }
}
