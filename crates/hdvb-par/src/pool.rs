//! The work-stealing thread pool.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A type-erased unit of work.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, recovering from poisoning.
///
/// No pool invariant spans a lock region half-applied (queues are plain
/// `VecDeque` pushes/pops, flags are whole-word writes), so a panic
/// between lock and unlock leaves the data consistent and the guard can
/// be taken over safely. Without this, one panicking task could poison
/// a queue mutex and cascade `.expect()` panics through every worker
/// that touches it afterwards, silently shrinking the pool.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// `(pool identity, worker index)` of the pool worker running on
    /// this thread, if any. The identity disambiguates nested pools.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// Per-worker deques: owners pop newest-first, thieves steal
    /// oldest-first.
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// Queue for tasks submitted from outside the pool's threads.
    injector: Mutex<VecDeque<Task>>,
    /// Shutdown flag; guarded by the mutex the workers park on.
    shutdown: Mutex<bool>,
    /// Parking spot for idle workers.
    wakeup: Condvar,
    /// Per-worker nanoseconds spent running tasks.
    busy_nanos: Vec<AtomicU64>,
    /// Per-worker completed-task counts.
    tasks_run: Vec<AtomicU64>,
    /// Per-worker counts of tasks obtained from another worker's deque.
    steals: Vec<AtomicU64>,
    /// Per-worker counts of condvar parks.
    parks: Vec<AtomicU64>,
    /// Per-worker nanoseconds spent parked waiting for work.
    idle_nanos: Vec<AtomicU64>,
    /// Busy nanoseconds contributed by scope-waiting caller threads.
    caller_busy_nanos: AtomicU64,
    /// Tasks run by scope-waiting caller threads.
    caller_tasks: AtomicU64,
    /// Steals performed by scope-waiting caller threads.
    caller_steals: AtomicU64,
}

impl Shared {
    fn identity(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    fn has_work(&self) -> bool {
        if !lock(&self.injector).is_empty() {
            return true;
        }
        self.locals.iter().any(|q| !lock(q).is_empty())
    }

    /// Pops a task: own deque first (LIFO), then the injector, then
    /// steals from the other workers (FIFO). The flag is `true` when the
    /// task came from *another* worker's deque (a steal).
    fn find_task(&self, me: Option<usize>) -> Option<(Task, bool)> {
        if let Some(i) = me {
            if let Some(t) = lock(&self.locals[i]).pop_back() {
                return Some((t, false));
            }
        }
        if let Some(t) = lock(&self.injector).pop_front() {
            return Some((t, false));
        }
        let n = self.locals.len();
        let start = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let j = (start + k) % n;
            if Some(j) == me {
                continue;
            }
            if let Some(t) = lock(&self.locals[j]).pop_front() {
                return Some((t, true));
            }
        }
        None
    }

    /// Runs one task with panic isolation, attributing its busy time to
    /// worker `slot` (or to the caller counters when `None`).
    fn run_task(&self, slot: Option<usize>, task: Task, stolen: bool) {
        let _span = hdvb_trace::span!(hdvb_trace::Stage::Task);
        hdvb_trace::counter_add(hdvb_trace::Counter::Executed, 1);
        if stolen {
            hdvb_trace::counter_add(hdvb_trace::Counter::Steal, 1);
        }
        let t0 = Instant::now();
        // A panicking task must poison only its own job: scope/par_map
        // wrappers record the payload; this backstop keeps the worker
        // thread itself alive either way. The payload's own Drop may
        // panic too (a fresh panic, since unwinding already finished),
        // so containing it needs a second catch.
        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
            let _ = catch_unwind(AssertUnwindSafe(move || drop(payload)));
        }
        let nanos = t0.elapsed().as_nanos() as u64;
        match slot {
            Some(i) => {
                self.busy_nanos[i].fetch_add(nanos, Ordering::Relaxed);
                self.tasks_run[i].fetch_add(1, Ordering::Relaxed);
                if stolen {
                    self.steals[i].fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                self.caller_busy_nanos.fetch_add(nanos, Ordering::Relaxed);
                self.caller_tasks.fetch_add(1, Ordering::Relaxed);
                if stolen {
                    self.caller_steals.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER.set(Some((shared.identity(), index)));
    // Respawn guard: the body only unwinds if something escapes the
    // per-task panic isolation (e.g. tracing or queue bookkeeping
    // panicking outside `run_task`'s catch). Restarting the loop in
    // place keeps the worker slot alive, so a pool that absorbed a
    // panic retains its full lane count instead of quietly running
    // one thread short for the rest of the process.
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_body(&shared, index))) {
            Ok(()) => break,
            Err(payload) => {
                let _ = catch_unwind(AssertUnwindSafe(move || drop(payload)));
            }
        }
    }
}

fn worker_body(shared: &Shared, index: usize) {
    loop {
        if let Some((task, stolen)) = shared.find_task(Some(index)) {
            shared.run_task(Some(index), task, stolen);
            continue;
        }
        let guard = lock(&shared.shutdown);
        // Re-check under the park lock: every submitter pushes first and
        // only then takes this lock to notify, so a task pushed before
        // this check is visible, and one pushed after will find us
        // already waiting.
        if shared.has_work() {
            continue;
        }
        if *guard {
            break;
        }
        shared.parks[index].fetch_add(1, Ordering::Relaxed);
        hdvb_trace::counter_add(hdvb_trace::Counter::Park, 1);
        let _idle_span = hdvb_trace::span!(hdvb_trace::Stage::WorkerIdle);
        let t0 = Instant::now();
        drop(shared.wakeup.wait(guard).unwrap_or_else(|e| e.into_inner()));
        shared.idle_nanos[index].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// A fixed-size work-stealing thread pool.
///
/// Dropping the pool drains all queued tasks, then joins the workers.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            shutdown: Mutex::new(false),
            wakeup: Condvar::new(),
            busy_nanos: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            tasks_run: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            steals: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            parks: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            idle_nanos: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            caller_busy_nanos: AtomicU64::new(0),
            caller_tasks: AtomicU64::new(0),
            caller_steals: AtomicU64::new(0),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hdvb-par-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawning pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`).
    pub fn with_default_threads() -> Self {
        Self::new(Self::default_threads())
    }

    /// The machine's available parallelism (1 if it cannot be queried).
    pub fn default_threads() -> usize {
        std::thread::available_parallelism().map_or(1, usize::from)
    }

    /// Number of worker threads.
    pub fn thread_count(&self) -> usize {
        self.handles.len()
    }

    /// Queues a free-standing task.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.submit(Box::new(f));
    }

    fn submit(&self, task: Task) {
        let id = self.shared.identity();
        match WORKER.get() {
            // Tasks spawned from inside a worker go to its own deque
            // (LIFO for locality); thieves take them oldest-first.
            Some((pool, index)) if pool == id => {
                lock(&self.shared.locals[index]).push_back(task);
            }
            _ => {
                lock(&self.shared.injector).push_back(task);
            }
        }
        let _guard = lock(&self.shared.shutdown);
        self.shared.wakeup.notify_all();
    }

    /// Runs `f` with a [`Scope`] on which borrowing tasks can be
    /// spawned, and returns once every spawned task has finished.
    ///
    /// The calling thread helps run pool tasks while it waits, so
    /// nested scopes cannot deadlock even on a single-worker pool.
    ///
    /// # Panics
    ///
    /// If `f` or any spawned task panicked, the first such panic is
    /// resumed on the caller after all tasks have been joined.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let state = Arc::new(ScopeState {
            remaining: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _scope: PhantomData,
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Join unconditionally: tasks may borrow locals of f's caller,
        // so they must finish before we unwind further.
        self.wait_scope(&state);
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = lock(&state.panic).take() {
                    resume_unwind(payload);
                }
                value
            }
        }
    }

    /// Blocks until `state.remaining == 0`, running queued tasks while
    /// waiting.
    fn wait_scope(&self, state: &ScopeState) {
        let me = match WORKER.get() {
            Some((pool, index)) if pool == self.shared.identity() => Some(index),
            _ => None,
        };
        loop {
            if *lock(&state.remaining) == 0 {
                return;
            }
            if let Some((task, stolen)) = self.shared.find_task(me) {
                self.shared.run_task(me, task, stolen);
                continue;
            }
            let remaining = lock(&state.remaining);
            if *remaining == 0 {
                return;
            }
            // The timeout is defensive only: completion always notifies
            // `done` under this lock, so a wakeup cannot be missed.
            drop(
                state
                    .done
                    .wait_timeout(remaining, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner()),
            );
        }
    }

    /// Applies `f` to every item, in parallel, returning the results in
    /// input order.
    ///
    /// # Errors
    ///
    /// [`TaskPanic`] if any invocation panicked; the pool itself stays
    /// usable and every other task still runs to completion.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>, TaskPanic>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let mut out = Vec::with_capacity(items.len());
        for r in self.par_map_catch(items, f) {
            out.push(r?);
        }
        Ok(out)
    }

    /// Like [`par_map`](Self::par_map), but returns *every* slot: each
    /// element is `Ok(result)` or the [`TaskPanic`] of that invocation,
    /// in input order, so one panicking item no longer discards its
    /// siblings' completed work. This is the primitive fault-tolerant
    /// sweep runners build on.
    pub fn par_map_catch<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<Result<R, TaskPanic>>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let slots: Vec<Mutex<Option<std::thread::Result<R>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        self.scope(|s| {
            for (i, item) in items.into_iter().enumerate() {
                let slot = &slots[i];
                let f = &f;
                s.spawn(move || {
                    let r = catch_unwind(AssertUnwindSafe(|| f(item)));
                    *lock(slot) = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
                    Some(Ok(v)) => Ok(v),
                    Some(Err(payload)) => {
                        let err = TaskPanic::new(i, payload.as_ref());
                        // Contain a panicking payload Drop (fresh panic).
                        let _ = catch_unwind(AssertUnwindSafe(move || drop(payload)));
                        Err(err)
                    }
                    None => unreachable!("scope returned with task {i} never run"),
                }
            })
            .collect()
    }

    /// Applies `f` to consecutive chunks of `items` (the last chunk may
    /// be short), in parallel, returning results in chunk order. `f`
    /// receives the chunk index and the chunk itself.
    ///
    /// # Errors
    ///
    /// [`TaskPanic`] if any invocation panicked.
    pub fn par_chunks<T, R, F>(
        &self,
        items: &[T],
        chunk_len: usize,
        f: F,
    ) -> Result<Vec<R>, TaskPanic>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let chunks: Vec<(usize, &[T])> = items.chunks(chunk_len.max(1)).enumerate().collect();
        self.par_map(chunks, |(i, chunk)| f(i, chunk))
    }

    /// A snapshot of per-worker busy time and task counts.
    pub fn stats(&self) -> PoolStats {
        let workers = (0..self.thread_count())
            .map(|i| WorkerStats {
                busy: Duration::from_nanos(self.shared.busy_nanos[i].load(Ordering::Relaxed)),
                tasks: self.shared.tasks_run[i].load(Ordering::Relaxed),
                steals: self.shared.steals[i].load(Ordering::Relaxed),
                parks: self.shared.parks[i].load(Ordering::Relaxed),
                idle: Duration::from_nanos(self.shared.idle_nanos[i].load(Ordering::Relaxed)),
            })
            .collect();
        PoolStats {
            workers,
            caller: WorkerStats {
                busy: Duration::from_nanos(self.shared.caller_busy_nanos.load(Ordering::Relaxed)),
                tasks: self.shared.caller_tasks.load(Ordering::Relaxed),
                steals: self.shared.caller_steals.load(Ordering::Relaxed),
                parks: 0,
                idle: Duration::ZERO,
            },
        }
    }

    /// Zeroes the statistics counters (e.g. between measurement phases).
    pub fn reset_stats(&self) {
        for counters in [
            &self.shared.busy_nanos,
            &self.shared.tasks_run,
            &self.shared.steals,
            &self.shared.parks,
            &self.shared.idle_nanos,
        ] {
            for c in counters.iter() {
                c.store(0, Ordering::Relaxed);
            }
        }
        self.shared.caller_busy_nanos.store(0, Ordering::Relaxed);
        self.shared.caller_tasks.store(0, Ordering::Relaxed);
        self.shared.caller_steals.store(0, Ordering::Relaxed);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        *lock(&self.shared.shutdown) = true;
        self.shared.wakeup.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.thread_count())
            .finish()
    }
}

/// Book-keeping for one [`ThreadPool::scope`] invocation.
struct ScopeState {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// Handle for spawning borrowing tasks inside [`ThreadPool::scope`].
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope ThreadPool,
    state: Arc<ScopeState>,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the enclosing environment.
    ///
    /// A panic inside `f` is captured and re-thrown by the enclosing
    /// [`ThreadPool::scope`] call after all tasks have joined.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        *lock(&self.state.remaining) += 1;
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = lock(&state.panic);
                slot.get_or_insert(payload);
            }
            let mut remaining = lock(&state.remaining);
            *remaining -= 1;
            if *remaining == 0 {
                state.done.notify_all();
            }
        });
        // SAFETY: lifetime erasure to 'static is sound because
        // ThreadPool::scope always blocks until `remaining == 0` before
        // returning (even when the scope closure panics), so the task
        // cannot outlive any 'env borrow it captured.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(task) };
        self.pool.submit(task);
    }
}

/// Error returned by the ordered parallel maps when a task panicked.
///
/// Only the panicking task is lost; every other task completes and the
/// pool remains fully usable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskPanic {
    /// Input index of the task that panicked.
    pub index: usize,
    /// Panic payload rendered as text.
    pub message: String,
}

impl TaskPanic {
    fn new(index: usize, payload: &(dyn Any + Send)) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        TaskPanic { index, message }
    }
}

impl fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Per-worker activity counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStats {
    /// Time the worker spent running tasks.
    pub busy: Duration,
    /// Number of tasks the worker completed.
    pub tasks: u64,
    /// Tasks obtained from another worker's deque.
    pub steals: u64,
    /// Times the worker parked on the wakeup condvar.
    pub parks: u64,
    /// Time spent parked waiting for work.
    pub idle: Duration,
}

/// Snapshot of the whole pool's activity.
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// One entry per worker thread.
    pub workers: Vec<WorkerStats>,
    /// Work executed by caller threads while waiting inside scopes.
    pub caller: WorkerStats,
}

impl PoolStats {
    /// Total busy time across workers and helping callers.
    pub fn total_busy(&self) -> Duration {
        self.workers.iter().map(|w| w.busy).sum::<Duration>() + self.caller.busy
    }

    /// Total tasks executed.
    pub fn total_tasks(&self) -> u64 {
        self.workers.iter().map(|w| w.tasks).sum::<u64>() + self.caller.tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn execute_runs_tasks() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        pool.scope(|s| {
            for _ in 0..64 {
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scope_tasks_can_borrow() {
        let pool = ThreadPool::new(3);
        let mut slots = [0u32; 16];
        pool.scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u32 * 3);
            }
        });
        for (i, v) in slots.iter().enumerate() {
            assert_eq!(*v, i as u32 * 3);
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let pool = ThreadPool::new(4);
        let input: Vec<u64> = (0..200).collect();
        let out = pool.par_map(input.clone(), |x| x * x).unwrap();
        let expected: Vec<u64> = input.iter().map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_chunks_covers_all_items_in_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<u32> = (0..103).collect();
        let sums = pool
            .par_chunks(&items, 10, |i, chunk| (i, chunk.iter().sum::<u32>()))
            .unwrap();
        assert_eq!(sums.len(), 11);
        for (k, (i, _)) in sums.iter().enumerate() {
            assert_eq!(k, *i);
        }
        let total: u32 = sums.iter().map(|(_, s)| s).sum();
        assert_eq!(total, items.iter().sum::<u32>());
    }

    #[test]
    fn panicking_task_reports_error_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let err = pool
            .par_map(vec![0u32, 1, 2, 3], |x| {
                if x == 2 {
                    panic!("boom at {x}");
                }
                x
            })
            .unwrap_err();
        assert_eq!(err.index, 2);
        assert!(err.message.contains("boom"), "message: {}", err.message);
        // The pool must stay fully usable afterwards.
        let ok = pool.par_map(vec![1u32, 2, 3], |x| x + 1).unwrap();
        assert_eq!(ok, vec![2, 3, 4]);
    }

    #[test]
    fn par_map_catch_preserves_sibling_results() {
        let pool = ThreadPool::new(2);
        let out = pool.par_map_catch(vec![0u32, 1, 2, 3, 4], |x| {
            if x % 2 == 1 {
                panic!("odd {x}");
            }
            x * 10
        });
        assert_eq!(out.len(), 5);
        assert_eq!(out[0], Ok(0));
        assert_eq!(out[2], Ok(20));
        assert_eq!(out[4], Ok(40));
        for i in [1usize, 3] {
            let err = out[i].as_ref().unwrap_err();
            assert_eq!(err.index, i);
            assert!(err.message.contains("odd"), "message: {}", err.message);
        }
    }

    #[test]
    fn pool_keeps_full_lane_count_after_panics() {
        struct DropBomb;
        impl Drop for DropBomb {
            fn drop(&mut self) {
                if !std::thread::panicking() {
                    panic!("payload drop bomb");
                }
            }
        }
        let threads = 4;
        let pool = ThreadPool::new(threads);
        // Absorb a burst of panics, including payloads whose own Drop
        // panics — historically that second panic escaped the per-task
        // catch and killed the worker thread.
        let out = pool.par_map_catch((0..2 * threads as u32).collect::<Vec<_>>(), |x| {
            if x % 2 == 0 {
                std::panic::panic_any(DropBomb);
            }
        });
        assert_eq!(out.iter().filter(|r| r.is_err()).count(), threads);
        // Every worker lane must still be alive and executing: flood the
        // pool with short sleeps and require each worker to have run at
        // least one. A dead lane shows up as a zero-task worker.
        pool.reset_stats();
        pool.par_map((0..64u32 * threads as u32).collect::<Vec<_>>(), |_| {
            std::thread::sleep(Duration::from_millis(1));
        })
        .unwrap();
        let stats = pool.stats();
        for (i, w) in stats.workers.iter().enumerate() {
            assert!(w.tasks > 0, "worker {i} lane lost after panic absorption");
        }
    }

    #[test]
    fn scope_rethrows_task_panic_after_joining() {
        let pool = ThreadPool::new(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let fin = Arc::clone(&finished);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("scope task panic"));
                for _ in 0..8 {
                    let fin = Arc::clone(&fin);
                    s.spawn(move || {
                        fin.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        // All sibling tasks joined before the panic was rethrown.
        assert_eq!(finished.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_scopes_do_not_deadlock_on_one_worker() {
        let pool = ThreadPool::new(1);
        let out = pool
            .par_map(vec![4u64, 5, 6], |x| {
                // Inner parallel map on the same single-worker pool:
                // the waiting task helps run its children.
                let inner: u64 = std::thread::scope(|_| x); // keep types simple
                inner * 2
            })
            .unwrap();
        assert_eq!(out, vec![8, 10, 12]);
    }

    #[test]
    fn stats_account_for_work() {
        let pool = ThreadPool::new(2);
        pool.reset_stats();
        pool.par_map((0..32).collect::<Vec<u64>>(), |x| {
            std::hint::black_box((0..2_000).fold(x, |a, b| a.wrapping_mul(31).wrapping_add(b)))
        })
        .unwrap();
        let stats = pool.stats();
        assert_eq!(stats.workers.len(), 2);
        assert_eq!(stats.total_tasks(), 32);
        assert!(stats.total_busy() > Duration::ZERO);
    }

    #[test]
    fn stats_track_steals_and_parks() {
        let pool = ThreadPool::new(4);
        pool.reset_stats();
        // Tasks submitted from outside land in the injector, so a first
        // round warms the workers; spawning from inside a worker fills
        // that worker's own deque, which others must steal from.
        pool.par_map((0..4u32).collect::<Vec<_>>(), |_| {
            std::thread::sleep(Duration::from_millis(1));
        })
        .unwrap();
        pool.scope(|s| {
            s.spawn(|| {
                // Runs on some worker; its children go to that worker's
                // local deque where the three idle workers steal them.
                std::thread::scope(|_| {});
            });
        });
        // Let the pool go fully idle so park counts accumulate.
        std::thread::sleep(Duration::from_millis(5));
        let stats = pool.stats();
        assert_eq!(stats.total_tasks(), 5);
        let parks: u64 = stats.workers.iter().map(|w| w.parks).sum();
        assert!(parks > 0, "workers never parked");
        let idle: Duration = stats.workers.iter().map(|w| w.idle).sum();
        assert!(idle > Duration::ZERO, "no idle time recorded");
        // Steals never exceed executed tasks.
        let steals: u64 = stats.workers.iter().map(|w| w.steals).sum::<u64>() + stats.caller.steals;
        assert!(steals <= stats.total_tasks());
    }

    #[test]
    fn tracing_records_task_spans_and_counters() {
        let _gate = hdvb_trace_test_gate();
        hdvb_trace::set_enabled(true);
        hdvb_trace::reset();
        {
            let pool = ThreadPool::new(2);
            pool.par_map((0..16u32).collect::<Vec<_>>(), |x| x * 2)
                .unwrap();
        }
        hdvb_trace::set_enabled(false);
        let report = hdvb_trace::collect();
        // Sibling tests may run pool tasks concurrently while the flag
        // is up, so assert a lower bound rather than exact equality.
        assert!(
            report.counter_total(hdvb_trace::Counter::Executed) >= 16,
            "every task body produces one Executed count"
        );
        assert!(report.stage_count(hdvb_trace::Stage::Task) >= 16);
    }

    /// Serialises tests that toggle the process-global trace flag.
    fn hdvb_trace_test_gate() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn empty_par_map() {
        let pool = ThreadPool::new(2);
        let out: Vec<u32> = pool.par_map(Vec::<u32>::new(), |x| x).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn drop_drains_pending_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }
}
