//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a cheap, cloneable handle that long-running work
//! polls at natural checkpoints (frame boundaries, picture boundaries,
//! packet boundaries). It carries an explicit cancellation flag and an
//! optional wall-clock deadline, so the same primitive serves both
//! "stop now" requests and soft per-task time budgets.
//!
//! The default token ([`CancelToken::never`]) allocates nothing and its
//! checks compile down to a `None` test, so threading a token through
//! hot paths costs nothing when cancellation is unused.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle checked cooperatively by workers.
///
/// Cancellation is sticky: once [`cancel`](Self::cancel) has been called
/// or the deadline has passed, every clone reports cancelled forever.
#[derive(Clone, Default)]
pub struct CancelToken(Option<Arc<Inner>>);

impl CancelToken {
    /// A token that can never be cancelled (no allocation; all checks
    /// are a single `Option` test).
    pub fn never() -> Self {
        CancelToken(None)
    }

    /// A manually cancellable token (no deadline).
    pub fn new() -> Self {
        CancelToken(Some(Arc::new(Inner {
            flag: AtomicBool::new(false),
            deadline: None,
        })))
    }

    /// A token that auto-cancels once `budget` of wall-clock time has
    /// elapsed from the moment of construction.
    pub fn with_budget(budget: Duration) -> Self {
        CancelToken(Some(Arc::new(Inner {
            flag: AtomicBool::new(false),
            deadline: Some(Instant::now() + budget),
        })))
    }

    /// Requests cancellation. A no-op on [`never`](Self::never) tokens.
    pub fn cancel(&self) {
        if let Some(inner) = &self.0 {
            inner.flag.store(true, Ordering::Release);
        }
    }

    /// Whether the token has been cancelled or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        match &self.0 {
            None => false,
            Some(inner) => {
                if inner.flag.load(Ordering::Acquire) {
                    return true;
                }
                match inner.deadline {
                    Some(d) if Instant::now() >= d => {
                        // Latch so later checks skip the clock read.
                        inner.flag.store(true, Ordering::Release);
                        true
                    }
                    _ => false,
                }
            }
        }
    }

    /// Checkpoint form: `Err(Cancelled)` once the token has fired.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when the token is cancelled or past its deadline.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }

    /// Time left before the deadline fires, if one was set. `None` for
    /// flag-only and never-tokens; `Some(ZERO)` once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.0
            .as_ref()
            .and_then(|inner| inner.deadline)
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancellable", &self.0.is_some())
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

/// The unit error produced by [`CancelToken::check`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("operation cancelled")
    }
}

impl std::error::Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_cancels() {
        let t = CancelToken::never();
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert!(t.remaining().is_none());
    }

    #[test]
    fn manual_cancel_is_sticky_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(c.check().is_ok());
        t.cancel();
        assert!(c.is_cancelled());
        assert_eq!(c.check(), Err(Cancelled));
    }

    #[test]
    fn deadline_token_fires_after_budget() {
        let t = CancelToken::with_budget(Duration::from_millis(10));
        assert!(!t.is_cancelled());
        std::thread::sleep(Duration::from_millis(20));
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }
}
