//! `hdvb-par` — the HD-VideoBench execution engine.
//!
//! A work-stealing thread pool built only on `std` (`std::thread`,
//! `Mutex`, `Condvar`): each worker owns a double-ended task queue
//! (newest-first for its own work, oldest-first for thieves), external
//! submissions land in a global injector, and idle workers park on a
//! condition variable. On top of the pool sit three structured
//! interfaces:
//!
//! * [`ThreadPool::scope`] — spawn borrowing tasks and join them all
//!   before the scope returns (panics are re-thrown at the join point);
//! * [`ThreadPool::par_map`] / [`ThreadPool::par_chunks`] — ordered
//!   parallel maps whose outputs always match the serial order of the
//!   inputs, with per-task panic isolation surfaced as [`TaskPanic`]
//!   errors instead of poisoning the pool;
//! * [`ThreadPool::stats`] — per-worker busy time and task counts, so
//!   harness reports can show utilisation and wall-vs-CPU time.
//!
//! The waiting thread of a scope *helps*: while its tasks are
//! outstanding it steals and runs queued work, which both keeps the CPU
//! saturated and makes nested scopes deadlock-free even on a one-worker
//! pool.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cancel;
mod pool;

pub use cancel::{CancelToken, Cancelled};
pub use pool::{PoolStats, Scope, TaskPanic, ThreadPool, WorkerStats};
