//! Property and stress tests for the work-stealing pool.

use hdvb_par::ThreadPool;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `par_map` must agree with the serial map for arbitrary inputs,
    /// arbitrary pool widths and a non-trivial per-item function.
    #[test]
    fn par_map_matches_serial_map(
        items in proptest::collection::vec(0u64..=u64::MAX / 2, 0..200),
        threads in 1usize..8,
    ) {
        let pool = ThreadPool::new(threads);
        let f = |x: u64| x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) ^ x;
        let parallel = pool.par_map(items.clone(), f).unwrap();
        let serial: Vec<u64> = items.into_iter().map(f).collect();
        prop_assert_eq!(parallel, serial);
    }

    /// `par_chunks` must visit every chunk exactly once, in order, for
    /// arbitrary chunk sizes.
    #[test]
    fn par_chunks_matches_serial_chunks(
        items in proptest::collection::vec(0u32..1_000_000, 1..300),
        chunk_len in 1usize..40,
        threads in 1usize..6,
    ) {
        let pool = ThreadPool::new(threads);
        let parallel = pool
            .par_chunks(&items, chunk_len, |i, chunk| (i, chunk.to_vec()))
            .unwrap();
        let serial: Vec<(usize, Vec<u32>)> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(i, c)| (i, c.to_vec()))
            .collect();
        prop_assert_eq!(parallel, serial);
    }

    /// A panicking task yields a `TaskPanic` naming the right index,
    /// never a deadlock, and all other results would have been correct.
    #[test]
    fn panic_is_isolated_to_its_task(
        len in 1usize..64,
        seed in 0u64..u64::MAX,
        threads in 1usize..6,
    ) {
        let poison = (seed % len as u64) as usize;
        let pool = ThreadPool::new(threads);
        let err = pool
            .par_map((0..len).collect::<Vec<usize>>(), |i| {
                if i == poison {
                    panic!("poisoned item {i}");
                }
                i * 2
            })
            .unwrap_err();
        prop_assert_eq!(err.index, poison);
        prop_assert!(err.message.contains("poisoned item"));
        // The pool stays usable after the panic.
        let ok = pool.par_map(vec![1u32, 2, 3], |x| x).unwrap();
        prop_assert_eq!(ok, vec![1, 2, 3]);
    }
}

/// Hammer one pool with repeated panicking maps interleaved with good
/// work: no hang, no lost results. Guards against worker threads dying
/// or the scope join leaking counts under panic pressure.
#[test]
fn panic_stress_loop_never_hangs() {
    let pool = ThreadPool::new(4);
    for round in 0..200 {
        let poison = round % 7;
        let result = pool.par_map((0..8usize).collect::<Vec<_>>(), move |i| {
            if i == poison {
                panic!("round {round} poison {i}");
            }
            i as u64 + round as u64
        });
        let err = result.unwrap_err();
        assert_eq!(err.index, poison);

        let good = pool
            .par_map((0..16u64).collect::<Vec<_>>(), |x| x * x)
            .unwrap();
        assert_eq!(good, (0..16u64).map(|x| x * x).collect::<Vec<_>>());
    }
    let stats = pool.stats();
    assert!(stats.total_tasks() > 0);
}

/// Nested scopes on a narrow pool: the outer waiting task must help run
/// the inner tasks rather than deadlock.
#[test]
fn nested_par_map_on_narrow_pool() {
    let pool = ThreadPool::new(2);
    let outer = pool
        .par_map((0..6u64).collect::<Vec<_>>(), |x| {
            pool.par_map((0..5u64).collect::<Vec<_>>(), move |y| x * 10 + y)
                .unwrap()
                .into_iter()
                .sum::<u64>()
        })
        .unwrap();
    let expected: Vec<u64> = (0..6u64)
        .map(|x| (0..5u64).map(|y| x * 10 + y).sum())
        .collect();
    assert_eq!(outer, expected);
}
