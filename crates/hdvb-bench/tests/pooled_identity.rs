//! Bit-identity of the pooled hot path (DESIGN.md §14).
//!
//! Pooled buffers are handed out dirty — a recycled frame still holds
//! the previous user's pixels, a recycled bitstream buffer is merely
//! cleared. The zero-copy refactor is only sound if none of that stale
//! state leaks into outputs: every codec must overwrite every sample it
//! emits. These tests run each codec twice — once against cold pools
//! (everything freshly allocated) and once against pools deliberately
//! polluted by the first run — and require byte-for-byte identical
//! packets and sample-identical frames.

use hdvb_core::{CodecId, CodecSession, CodingOptions, Packet, SessionInput, SessionOutput};
use hdvb_frame::{Frame, FramePool, Resolution};
use hdvb_seq::{Sequence, SequenceId};

const FRAMES: u32 = 12;

fn res() -> Resolution {
    Resolution::new(96, 80)
}

/// Encodes `FRAMES` frames of the test clip through the pooled session
/// API and returns the packets.
fn encode_run(codec: CodecId, options: &CodingOptions) -> Vec<Packet> {
    let seq = Sequence::new(SequenceId::RushHour, res());
    let mut session = CodecSession::encoder(codec, res(), options).unwrap();
    let mut out = SessionOutput::new();
    for i in 0..FRAMES {
        let src = seq.frame(i);
        let mut f = FramePool::global().take(src.width(), src.height());
        f.copy_from(&src);
        session.push_into(SessionInput::Frame(f), &mut out).unwrap();
    }
    session.finish_into(&mut out).unwrap();
    out.packets
}

/// Decodes `packets` through the pooled session API and returns the
/// frames.
fn decode_run(codec: CodecId, packets: &[Packet], options: &CodingOptions) -> Vec<Frame> {
    let mut session = CodecSession::decoder(codec, options.simd);
    let mut out = SessionOutput::new();
    for p in packets {
        session
            .push_into(SessionInput::Packet(p.data.clone()), &mut out)
            .unwrap();
    }
    session.finish_into(&mut out).unwrap();
    out.frames
}

/// Returns a run's outputs to the pools, leaving them full of stale
/// frame pixels and bitstream bytes for the next taker.
fn pollute_pools(packets: Vec<Packet>, frames: Vec<Frame>) {
    let mut out = SessionOutput::new();
    out.packets = packets;
    out.frames = frames;
    out.recycle();
}

/// Fills the frame pool with frames of foreign content — saturated
/// 0xAA in every plane, a pattern no codec run ever produces. Polluting
/// with a run's *own* outputs (as `pollute_pools` does) can mask stale
/// reads: if a consumer re-reads a sample the previous identical run
/// left behind, the bytes happen to match and the diff is invisible.
/// Foreign poison makes any stale read change the output.
fn poison_frame_pool(count: usize) {
    let r = res();
    for _ in 0..count {
        let mut f = Frame::new(r.width(), r.height());
        f.y_mut().fill(0xAA);
        f.cb_mut().fill(0xAA);
        f.cr_mut().fill(0xAA);
        FramePool::global().put(f);
    }
}

#[test]
fn warm_pools_are_bit_identical_to_cold_for_every_codec() {
    let options = CodingOptions::default();
    for codec in CodecId::ALL {
        // Cold run: pools may be empty or warm from a previous codec —
        // either way this run's outputs define the reference.
        let cold_packets = encode_run(codec, &options);
        let cold_frames = decode_run(codec, &cold_packets, &options);

        // Pollute the pools with this run's own buffers, then run
        // again: every take now hands back a dirty buffer.
        let before = FramePool::global().stats();
        pollute_pools(cold_packets.clone(), cold_frames.clone());
        let warm_packets = encode_run(codec, &options);
        assert_eq!(
            warm_packets, cold_packets,
            "{codec}: encode not bit-identical"
        );

        let warm_frames = decode_run(codec, &warm_packets, &options);
        assert_eq!(
            warm_frames, cold_frames,
            "{codec}: decode not sample-identical"
        );

        // Foreign poison: refill the pool with 0xAA-saturated frames
        // no run ever produced, so a stale read cannot hide behind
        // bytes that happen to match the previous run's.
        poison_frame_pool(16);
        let poisoned_packets = encode_run(codec, &options);
        assert_eq!(
            poisoned_packets, cold_packets,
            "{codec}: encode leaks poisoned pool content"
        );
        poison_frame_pool(16);
        let poisoned_frames = decode_run(codec, &poisoned_packets, &options);
        assert_eq!(
            poisoned_frames, cold_frames,
            "{codec}: decode leaks poisoned pool content"
        );

        // Recycling proof: the warm runs must actually have reused
        // pooled frames, not silently fallen back to the allocator.
        let after = FramePool::global().stats();
        assert!(
            after.hits > before.hits,
            "{codec}: warm run never hit the frame pool (hits {} -> {})",
            before.hits,
            after.hits
        );
    }
}

#[test]
fn transcode_is_identical_across_pool_reuse() {
    let options = CodingOptions::default();
    let source = encode_run(CodecId::Mpeg2, &options);
    let run = |out_pollute: bool| -> Vec<Packet> {
        let mut session =
            CodecSession::transcoder(CodecId::Mpeg2, CodecId::H264, res(), &options).unwrap();
        let mut out = SessionOutput::new();
        for p in &source {
            session
                .push_into(SessionInput::Packet(p.data.clone()), &mut out)
                .unwrap();
        }
        session.finish_into(&mut out).unwrap();
        let packets = out.packets.clone();
        if out_pollute {
            out.recycle();
        }
        packets
    };
    let first = run(true);
    let second = run(true);
    assert_eq!(
        first, second,
        "transcode not bit-identical across pool reuse"
    );
}
