//! The allocation-regression gate (DESIGN.md §14).
//!
//! Installs the counting allocator and drives every session kind
//! (encode, decode, transcode) for every codec through the zero-copy
//! session API, measuring heap allocations per step. The first
//! `WARMUP` steps are allowed to allocate — pools fill, codec scratch
//! is sized, free-list vectors grow — but every step after that must
//! allocate **zero** bytes: inputs come from the global pools, outputs
//! are recycled back, and the codecs reuse their per-picture scratch.
//!
//! This file deliberately holds a single `#[test]`: the pools are
//! process-global, so a parallel test in the same binary could steal
//! warm buffers and turn a legitimate pool miss into a false positive.
//!
//! Run with `cargo test -p hdvb-bench --test alloc_gate -- --nocapture`
//! to see the per-stage table.

use hdvb_bench::alloccount::{thread_allocs, CountingAlloc};
use hdvb_core::{
    encode_sequence, CodecId, CodecSession, CodingOptions, SessionInput, SessionOutput,
};
use hdvb_frame::{BufferPool, Frame, FramePool, Resolution};
use hdvb_seq::{Sequence, SequenceId};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const W: u32 = 96;
const H: u32 = 80;
/// Inputs per stage; must cover several GOPs so anchor bursts and
/// B-frame lookahead all hit their steady state.
const ITEMS: u32 = 40;
/// Steps allowed to allocate while pools and scratch warm up.
const WARMUP: usize = 20;

/// Drives `step` once per item with a reused, recycled output, and
/// returns per-item allocation counts (measured around input
/// materialisation, the push, and the recycle — the whole hot loop).
fn measure(mut step: impl FnMut(u32, &mut SessionOutput)) -> Vec<u64> {
    let mut out = SessionOutput::new();
    let mut counts = Vec::with_capacity(ITEMS as usize);
    for i in 0..ITEMS {
        let before = thread_allocs();
        step(i, &mut out);
        out.recycle();
        counts.push(thread_allocs() - before);
    }
    counts
}

/// A pool-backed copy of a source frame, as a serving front end would
/// materialise it.
fn frame_input(src: &Frame) -> SessionInput {
    let mut f = FramePool::global().take(src.width(), src.height());
    f.copy_from(src);
    SessionInput::Frame(f)
}

/// A pool-backed copy of a coded packet.
fn packet_input(src: &[u8]) -> SessionInput {
    let mut d = BufferPool::global().take(src.len());
    d.extend_from_slice(src);
    SessionInput::Packet(d)
}

/// Flushes and recycles a session's tail outside the measured region.
fn drain(mut session: CodecSession) {
    let mut out = SessionOutput::new();
    session.finish_into(&mut out).unwrap();
    out.recycle();
}

struct Stage {
    name: String,
    warmup_allocs: u64,
    steady_max: u64,
    steady_total: u64,
}

fn stage(name: String, counts: &[u64]) -> Stage {
    Stage {
        name,
        warmup_allocs: counts[..WARMUP].iter().sum(),
        steady_max: counts[WARMUP..].iter().copied().max().unwrap_or(0),
        steady_total: counts[WARMUP..].iter().sum(),
    }
}

#[test]
fn steady_state_sessions_allocate_nothing() {
    let options = CodingOptions::default();
    let res = Resolution::new(W, H);
    let mut stages = Vec::new();

    for codec in CodecId::ALL {
        let seq = Sequence::new(SequenceId::RushHour, res);
        let frames: Vec<Frame> = (0..ITEMS).map(|i| seq.frame(i)).collect();

        let mut enc = CodecSession::encoder(codec, res, &options).unwrap();
        let counts = measure(|i, out| {
            enc.push_into(frame_input(&frames[i as usize]), out)
                .unwrap();
        });
        drain(enc);
        stages.push(stage(format!("{codec}/encode"), &counts));

        let packets: Vec<Vec<u8>> = encode_sequence(codec, seq, ITEMS, &options)
            .unwrap()
            .packets
            .into_iter()
            .map(|p| p.data)
            .collect();
        let mut dec = CodecSession::decoder(codec, options.simd);
        let counts = measure(|i, out| {
            dec.push_into(packet_input(&packets[i as usize]), out)
                .unwrap();
        });
        drain(dec);
        stages.push(stage(format!("{codec}/decode"), &counts));

        let source: Vec<Vec<u8>> = encode_sequence(CodecId::Mpeg2, seq, ITEMS, &options)
            .unwrap()
            .packets
            .into_iter()
            .map(|p| p.data)
            .collect();
        let mut xcode = CodecSession::transcoder(CodecId::Mpeg2, codec, res, &options).unwrap();
        let counts = measure(|i, out| {
            xcode
                .push_into(packet_input(&source[i as usize]), out)
                .unwrap();
        });
        drain(xcode);
        stages.push(stage(format!("mpeg2->{codec}/transcode"), &counts));
    }

    println!(
        "{:<24} {:>13} {:>16} {:>13}",
        "stage", "warmup allocs", "steady max/item", "steady total"
    );
    let mut regressed = Vec::new();
    for s in &stages {
        println!(
            "{:<24} {:>13} {:>16} {:>13}",
            s.name, s.warmup_allocs, s.steady_max, s.steady_total
        );
        if s.steady_max > 0 {
            regressed.push(s.name.clone());
        }
    }
    assert!(
        regressed.is_empty(),
        "steady-state heap allocations detected in: {} \
         (items {}..{} must be allocation-free; run with --nocapture for the table)",
        regressed.join(", "),
        WARMUP,
        ITEMS
    );
}
