//! Motion-search ablation: the paper (Section IV) chooses EPZS for the
//! MPEG encoders and hexagon search for x264. This bench compares those
//! against diamond and exhaustive full search on a realistic P-frame
//! workload, reporting both speed (Criterion) and quality/SAD-evaluation
//! statistics (printed once).

use criterion::{criterion_group, criterion_main, Criterion};
use hdvb_dsp::Dsp;
use hdvb_frame::{PaddedPlane, Resolution};
use hdvb_me::{
    diamond_search, epzs_search, full_search, hexagon_search, BlockRef, EpzsThresholds, Mv,
    MvField, Predictors, SearchParams,
};
use hdvb_seq::{Sequence, SequenceId};

struct Workload {
    cur: hdvb_frame::Frame,
    reference: PaddedPlane,
    mbs_x: usize,
    mbs_y: usize,
}

fn workload() -> Workload {
    let seq = Sequence::new(SequenceId::RushHour, Resolution::new(320, 256));
    let reference = seq.frame(10);
    let cur = seq.frame(11);
    Workload {
        reference: PaddedPlane::from_plane(reference.y(), 32),
        mbs_x: cur.width() / 16,
        mbs_y: cur.height() / 16,
        cur,
    }
}

/// Runs one algorithm over every macroblock; returns (total SAD, total
/// evaluations).
fn sweep(w: &Workload, dsp: &Dsp, algo: &str) -> (u64, u64) {
    let params = SearchParams::new(24, 4);
    let mut field = MvField::new(w.mbs_x, w.mbs_y);
    let prev = MvField::new(w.mbs_x, w.mbs_y);
    let mut sad = 0u64;
    let mut evals = 0u64;
    for mby in 0..w.mbs_y {
        for mbx in 0..w.mbs_x {
            let block = BlockRef {
                plane: w.cur.y(),
                x: mbx * 16,
                y: mby * 16,
                w: 16,
                h: 16,
            };
            let r = match algo {
                "full" => full_search(dsp, block, &w.reference, Mv::ZERO, &params),
                "diamond" => diamond_search(dsp, block, &w.reference, Mv::ZERO, &params),
                "hexagon" => hexagon_search(dsp, block, &w.reference, Mv::ZERO, &params),
                _ => {
                    let preds = Predictors::gather(&field, &prev, mbx, mby);
                    epzs_search(
                        dsp,
                        block,
                        &w.reference,
                        &preds,
                        &EpzsThresholds::default(),
                        &params.with_pred(preds.median()),
                    )
                }
            };
            field.set(mbx, mby, r.mv);
            sad += u64::from(r.sad);
            evals += u64::from(r.evaluations);
        }
    }
    (sad, evals)
}

fn bench_motion_search(c: &mut Criterion) {
    let w = workload();
    let dsp = Dsp::default();

    // Quality/effort summary (the ablation table).
    println!("\n=== Motion-search ablation (rush_hour 320x256, P frame) ===");
    println!(
        "{:<9} {:>12} {:>14}",
        "algorithm", "total SAD", "evaluations"
    );
    let full = sweep(&w, &dsp, "full");
    for algo in ["full", "diamond", "hexagon", "epzs"] {
        let (sad, evals) = sweep(&w, &dsp, algo);
        println!(
            "{algo:<9} {sad:>12} {evals:>14}  (sad +{:.1}% vs full, {:.1}% of full's evals)",
            100.0 * (sad as f64 / full.0 as f64 - 1.0),
            100.0 * evals as f64 / full.1 as f64
        );
    }

    let mut group = c.benchmark_group("motion_search");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for algo in ["diamond", "hexagon", "epzs"] {
        group.bench_function(algo, |b| b.iter(|| sweep(&w, &dsp, algo)));
    }
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("full", |b| b.iter(|| sweep(&w, &dsp, "full")));
    group.finish();
}

criterion_group!(benches, bench_motion_search);
criterion_main!(benches);
