//! Kernel-level tier ablation (scalar vs SSE2 vs AVX2 where supported):
//! the per-kernel speed-ups that explain the Figure 1 gaps (SAD/SATD
//! dominate encoding; IDCT, interpolation and deblocking dominate
//! decoding).

use criterion::{criterion_group, criterion_main, Criterion};
use hdvb_dsp::{Block8, Dsp, SimdLevel, MPEG_DEFAULT_INTRA};

fn pixels(seed: u32, len: usize) -> Vec<u8> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 24) as u8
        })
        .collect()
}

fn coeff_block(seed: u32) -> Block8 {
    let mut state = seed;
    let mut b = [0i16; 64];
    for v in &mut b {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        *v = ((state >> 20) as i16 % 256) - 128;
    }
    b
}

fn bench_kernels(c: &mut Criterion) {
    // Padded-plane source stride (80) distinct from the 64-byte
    // destination stride: equal power-of-two strides alias src and dst
    // rows at the same 4 KiB page offsets and stall every tier equally.
    let a = pixels(1, 80 * 70);
    let b = pixels(2, 64 * 64);
    let levels = SimdLevel::supported_tiers();

    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for level in levels {
        let dsp = Dsp::new(level);
        let tag = level.tier_name();
        group.bench_function(format!("sad_16x16/{tag}"), |bch| {
            bch.iter(|| {
                let mut acc = 0u64;
                for off in 0..16 {
                    acc += u64::from(dsp.sad(&a[off..], 80, &b, 64, 16, 16));
                }
                acc
            })
        });
        group.bench_function(format!("ssd_16x16/{tag}"), |bch| {
            bch.iter(|| {
                let mut acc = 0u64;
                for off in 0..16 {
                    acc += dsp.ssd(&a[off..], 80, &b, 64, 16, 16);
                }
                acc
            })
        });
        group.bench_function(format!("copy_64x64/{tag}"), |bch| {
            let mut dst = vec![0u8; 64 * 64];
            bch.iter(|| {
                for off in 0..8 {
                    dsp.copy_block(&mut dst, 64, &a[off..], 80, 64, 64);
                }
                dst[0]
            })
        });
        group.bench_function(format!("quant8/{tag}"), |bch| {
            bch.iter(|| {
                let mut blk = coeff_block(13);
                let mut nz = 0;
                for _ in 0..16 {
                    nz += dsp.quant8(&mut blk, &MPEG_DEFAULT_INTRA, 5, true);
                }
                nz
            })
        });
        group.bench_function(format!("satd_16x16/{tag}"), |bch| {
            bch.iter(|| {
                let mut acc = 0u64;
                for off in 0..8 {
                    acc += u64::from(dsp.satd(&a[off..], 80, &b, 64, 16, 16));
                }
                acc
            })
        });
        group.bench_function(format!("fdct8/{tag}"), |bch| {
            bch.iter(|| {
                let mut blk = coeff_block(7);
                for _ in 0..16 {
                    dsp.fdct8(&mut blk);
                }
                blk
            })
        });
        group.bench_function(format!("idct8/{tag}"), |bch| {
            bch.iter(|| {
                let mut blk = coeff_block(9);
                for _ in 0..16 {
                    dsp.idct8(&mut blk);
                }
                blk
            })
        });
        group.bench_function(format!("dequant8/{tag}"), |bch| {
            bch.iter(|| {
                let mut blk = coeff_block(11);
                for _ in 0..16 {
                    dsp.dequant8(&mut blk, &MPEG_DEFAULT_INTRA, 5, true);
                }
                blk
            })
        });
        group.bench_function(format!("hpel_interp/{tag}"), |bch| {
            let mut dst = vec![0u8; 16 * 16];
            bch.iter(|| {
                for (fx, fy) in [(0u8, 0u8), (1, 0), (0, 1), (1, 1)] {
                    dsp.hpel_interp(&mut dst, 16, &a[8 * 80 + 8..], 80, fx, fy, 16, 16);
                }
                dst[0]
            })
        });
        group.bench_function(format!("sixtap_hv/{tag}"), |bch| {
            let mut dst = vec![0u8; 16 * 16];
            bch.iter(|| {
                dsp.sixtap_h(&mut dst, 16, &a[8 * 80 + 6..], 80, 16, 16);
                dsp.sixtap_v(&mut dst, 16, &a[6 * 80 + 8..], 80, 16, 16);
                dsp.sixtap_hv(&mut dst, 16, &a[6 * 80 + 6..], 80, 16, 16);
                dst[0]
            })
        });
        group.bench_function(format!("qpel_luma/{tag}"), |bch| {
            let mut dst = vec![0u8; 16 * 16];
            bch.iter(|| {
                for fx in 0..4u8 {
                    for fy in 0..4u8 {
                        dsp.qpel_luma(&mut dst, 16, &a[8 * 80 + 8..], 80, fx, fy, 16, 16);
                    }
                }
                dst[0]
            })
        });
        group.bench_function(format!("avg_block/{tag}"), |bch| {
            let mut dst = vec![0u8; 16 * 16];
            bch.iter(|| {
                for off in 0..16 {
                    dsp.avg_block(&mut dst, 16, &a[off..], 80, &b[off..], 64, 16, 16);
                }
                dst[0]
            })
        });
        group.bench_function(format!("deblock_edge/{tag}"), |bch| {
            let mut data = pixels(3, 64 * 16);
            bch.iter(|| {
                for y in (4..12).step_by(4) {
                    dsp.deblock_horiz_edge(&mut data, 64, y * 64, 64, 15, 6, 1);
                }
                data[0]
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
