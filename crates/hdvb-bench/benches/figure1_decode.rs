//! Regenerates **Figure 1 (a) and (b)**: decoding throughput in frames
//! per second for each codec at each resolution, in the scalar and the
//! SIMD build. Streams are encoded once outside the timed region; the
//! same bitstreams are decoded at both SIMD levels (the codecs'
//! scalar/SIMD outputs are bit-identical, as asserted by the test
//! suite).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hdvb_bench::{bench_resolutions, bench_sequence, pre_encode, BENCH_FRAMES};
use hdvb_core::{decode_sequence, CodecId, CodingOptions};
use hdvb_dsp::SimdLevel;
use hdvb_seq::SequenceId;

fn bench_decode(c: &mut Criterion) {
    let options = CodingOptions::default();
    for resolution in bench_resolutions() {
        let seq = bench_sequence(SequenceId::BlueSky, resolution);
        let mut group = c.benchmark_group(format!("figure1_decode/{}", resolution.label()));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(2));
        group.throughput(Throughput::Elements(u64::from(BENCH_FRAMES)));
        for codec in CodecId::ALL {
            let packets = pre_encode(codec, seq, BENCH_FRAMES, &options);
            for simd in SimdLevel::supported_tiers() {
                let id = format!("{}/{}", codec.name(), simd.tier_name());
                group.bench_function(&id, |b| {
                    b.iter(|| decode_sequence(codec, &packets, simd).expect("decode cannot fail"))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_decode);
criterion_main!(benches);
