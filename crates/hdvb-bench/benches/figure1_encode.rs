//! Regenerates **Figure 1 (c) and (d)**: encoding throughput in frames
//! per second for each codec at each resolution, scalar vs SIMD.
//! Frame generation happens outside the timed region (the paper's
//! mencoder reads pre-extracted raw YUV for the same reason).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hdvb_bench::{bench_resolutions, bench_sequence, BENCH_FRAMES};
use hdvb_core::{create_encoder, CodecId, CodingOptions};
use hdvb_dsp::SimdLevel;
use hdvb_frame::Frame;
use hdvb_seq::SequenceId;

fn bench_encode(c: &mut Criterion) {
    for resolution in bench_resolutions() {
        let seq = bench_sequence(SequenceId::BlueSky, resolution);
        let frames: Vec<Frame> = (0..BENCH_FRAMES).map(|i| seq.frame(i)).collect();
        let mut group = c.benchmark_group(format!("figure1_encode/{}", resolution.label()));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(2));
        group.throughput(Throughput::Elements(u64::from(BENCH_FRAMES)));
        for codec in CodecId::ALL {
            for simd in SimdLevel::supported_tiers() {
                let options = CodingOptions::default().with_simd(simd);
                let id = format!("{}/{}", codec.name(), simd.tier_name());
                group.bench_function(&id, |b| {
                    b.iter(|| {
                        let mut enc = create_encoder(codec, resolution, &options)
                            .expect("encoder config is valid");
                        let mut packets = Vec::new();
                        for f in &frames {
                            packets.extend(enc.encode_frame(f).expect("encode cannot fail"));
                        }
                        packets.extend(enc.finish().expect("flush cannot fail"));
                        packets
                    })
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_encode);
criterion_main!(benches);
