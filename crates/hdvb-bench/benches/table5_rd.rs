//! Regenerates **Table V** (rate-distortion comparison): PSNR and
//! bitrate per codec × sequence × resolution at the paper's operating
//! point (qscale 5 / Eq.-1 H.264 QP), and times the full
//! encode→decode→PSNR pipeline per codec.
//!
//! The table itself is printed once at startup; Criterion then measures
//! the pipeline time of one representative cell per codec.

use criterion::{criterion_group, criterion_main, Criterion};
use hdvb_bench::{bench_resolutions, bench_sequence, BENCH_FRAMES};
use hdvb_core::{measure_rd_point, table5_markdown, CodecId, CodingOptions, Table5Row};
use hdvb_seq::SequenceId;

fn print_table5() {
    let options = CodingOptions::default();
    let mut rows = Vec::new();
    for resolution in bench_resolutions() {
        for sid in SequenceId::ALL {
            let seq = bench_sequence(sid, resolution);
            let mut points = [(0.0, 0.0); 3];
            for (ci, codec) in CodecId::ALL.iter().enumerate() {
                let rd =
                    measure_rd_point(*codec, seq, BENCH_FRAMES, &options).expect("rd measurement");
                points[ci] = (rd.psnr_y, rd.bitrate_kbps);
            }
            rows.push(Table5Row {
                resolution,
                sequence: sid,
                points,
            });
        }
    }
    println!("\n=== Table V (reduced geometry, {BENCH_FRAMES} frames) ===");
    println!("{}", table5_markdown(&rows));
}

fn bench_rd_pipeline(c: &mut Criterion) {
    print_table5();
    let options = CodingOptions::default();
    let resolution = bench_resolutions()[0];
    let seq = bench_sequence(SequenceId::RushHour, resolution);
    let mut group = c.benchmark_group("table5_rd_pipeline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for codec in CodecId::ALL {
        group.bench_function(codec.name(), |b| {
            b.iter(|| measure_rd_point(codec, seq, BENCH_FRAMES, &options).expect("rd measurement"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rd_pipeline);
criterion_main!(benches);
