//! Encode-throughput scaling of the GOP-parallel encoder.
//!
//! Encodes `pedestrian_area` at 720p with 1, 2, 4 and 8 worker threads
//! and reports fps, speed-up over the single-thread serial reference
//! and parallel efficiency (speed-up / threads). The serial reference
//! uses `encode_sequence` (the exact paper pipeline); the parallel runs
//! use `encode_sequence_parallel` with one GOP-aligned chunk per
//! thread.
//!
//! Environment overrides for quick runs:
//! `HDVB_SCALING_FRAMES` (default 12), `HDVB_SCALING_SCALE` (resolution
//! divisor, default 1 = full 720p).

use hdvb_core::{encode_sequence, encode_sequence_parallel, CodecId, CodingOptions};
use hdvb_frame::Resolution;
use hdvb_par::ThreadPool;
use hdvb_seq::{Sequence, SequenceId};
use std::time::Instant;

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

fn main() {
    let frames = env_u32("HDVB_SCALING_FRAMES", 12);
    let scale = env_u32("HDVB_SCALING_SCALE", 1);
    let resolution = Resolution::HD_720.scaled_down(scale);
    let seq = Sequence::new(SequenceId::PedestrianArea, resolution);
    let options = CodingOptions::default();
    let machine = ThreadPool::default_threads();

    println!(
        "# GOP-parallel encode scaling — {} {} x {frames} frames (machine has {machine} hardware thread{})",
        seq.id(),
        resolution.label(),
        if machine == 1 { "" } else { "s" },
    );
    println!();
    println!("| codec | threads | chunks | wall s | cpu s | fps | speedup | efficiency |");
    println!("|---|---|---|---|---|---|---|---|");

    for codec in CodecId::ALL {
        let mut serial_fps = 0.0;
        for threads in [1usize, 2, 4, 8] {
            let (fps, chunks, wall, cpu) = if threads == 1 {
                let t0 = Instant::now();
                let enc = encode_sequence(codec, seq, frames, &options)
                    .expect("bench encode cannot fail");
                let wall = t0.elapsed().as_secs_f64();
                (enc.encode_fps(), 1, wall, enc.elapsed.as_secs_f64())
            } else {
                let pool = ThreadPool::new(threads);
                let (enc, stats) =
                    encode_sequence_parallel(codec, seq, frames, &options, &pool, threads)
                        .expect("bench encode cannot fail");
                (
                    enc.encode_fps(),
                    stats.chunks,
                    stats.wall.as_secs_f64(),
                    stats.cpu.as_secs_f64(),
                )
            };
            if threads == 1 {
                serial_fps = fps;
            }
            let speedup = fps / serial_fps.max(1e-9);
            println!(
                "| {} | {threads} | {chunks} | {wall:.2} | {cpu:.2} | {fps:.2} | {speedup:.2}x | {:.0}% |",
                codec.name(),
                100.0 * speedup / threads as f64,
            );
        }
    }
    println!();
    println!(
        "Speed-up is bounded by the machine's hardware threads ({machine}); \
         efficiency = speedup / threads."
    );
}
