//! Coding-tool ablations for the design decisions DESIGN.md calls out:
//! B frames on/off (the paper's fixed I-P-B-B choice), H.264 deblocking
//! on/off, multi-reference depth, and motion-search range. Prints the
//! rate-distortion effect of each knob and times the most interesting
//! configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use hdvb_bench::{bench_sequence, BENCH_FRAMES};
use hdvb_core::{measure_rd_point, CodecId, CodingOptions};
use hdvb_frame::{Frame, Resolution, SequencePsnr};
use hdvb_h264::{EncoderConfig as H264Config, H264Decoder, H264Encoder};
use hdvb_seq::SequenceId;

fn rd_h264(frames: &[Frame], config: H264Config) -> (f64, f64) {
    let mut enc = H264Encoder::new(config).expect("valid config");
    let mut dec = H264Decoder::new();
    let mut packets = Vec::new();
    for f in frames {
        packets.extend(enc.encode(f).expect("encode"));
    }
    packets.extend(enc.flush().expect("flush"));
    let bits: u64 = packets.iter().map(|p| p.bits()).sum();
    let mut out = Vec::new();
    for p in &packets {
        out.extend(dec.decode(&p.data).expect("decode"));
    }
    out.extend(dec.flush());
    let mut acc = SequencePsnr::new();
    for (o, d) in frames.iter().zip(&out) {
        acc.add(o, d);
    }
    (acc.y_psnr(), bits as f64 / 1000.0)
}

fn print_ablations() {
    let resolution = Resolution::new(192, 160);
    let seq = bench_sequence(SequenceId::PedestrianArea, resolution);
    let frames: Vec<Frame> = (0..BENCH_FRAMES + 4).map(|i| seq.frame(i)).collect();
    let (w, h) = (resolution.width(), resolution.height());
    let base = H264Config::new(w, h).with_qp(24);

    println!("\n=== Coding-tool ablations (h264-class, pedestrian_area {resolution}) ===");
    let cases: Vec<(&str, H264Config)> = vec![
        ("baseline (B=2, deblock, 3 refs, range 24)", base),
        ("no B frames", base.with_b_frames(0)),
        ("no deblocking", base.with_deblock(false)),
        ("single reference", base.with_num_refs(1)),
        ("search range 8", base.with_search_range(8)),
    ];
    let baseline = rd_h264(&frames, base);
    for (name, config) in cases {
        let (psnr, kbits) = rd_h264(&frames, config);
        println!(
            "{name:<42} {psnr:>6.2} dB {kbits:>8.1} kbit  ({:+.2} dB, {:+.1}% bits)",
            psnr - baseline.0,
            100.0 * (kbits / baseline.1 - 1.0)
        );
    }

    // The GOP ablation across all codecs (B frames buy bitrate at equal
    // quantiser).
    println!("\n=== B-frame ablation across codecs ===");
    for codec in CodecId::ALL {
        let with_b =
            measure_rd_point(codec, seq, BENCH_FRAMES + 4, &CodingOptions::default()).expect("rd");
        let without = measure_rd_point(
            codec,
            seq,
            BENCH_FRAMES + 4,
            &CodingOptions::default().with_b_frames(0),
        )
        .expect("rd");
        println!(
            "{codec}: IPBB {:.0} kbps vs IPP {:.0} kbps ({:+.1}%)",
            with_b.bitrate_kbps,
            without.bitrate_kbps,
            100.0 * (with_b.bitrate_kbps / without.bitrate_kbps - 1.0)
        );
    }
}

fn bench_coding_tools(c: &mut Criterion) {
    print_ablations();
    let resolution = Resolution::new(96, 80);
    let seq = bench_sequence(SequenceId::PedestrianArea, resolution);
    let frames: Vec<Frame> = (0..BENCH_FRAMES).map(|i| seq.frame(i)).collect();
    let (w, h) = (resolution.width(), resolution.height());
    let mut group = c.benchmark_group("coding_tools");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, config) in [
        ("h264_baseline", H264Config::new(w, h).with_qp(24)),
        (
            "h264_no_bframes",
            H264Config::new(w, h).with_qp(24).with_b_frames(0),
        ),
        (
            "h264_no_deblock",
            H264Config::new(w, h).with_qp(24).with_deblock(false),
        ),
        (
            "h264_single_ref",
            H264Config::new(w, h).with_qp(24).with_num_refs(1),
        ),
    ] {
        group.bench_function(name, |b| b.iter(|| rd_h264(&frames, config)));
    }
    group.finish();
}

criterion_group!(benches, bench_coding_tools);
criterion_main!(benches);
