//! Disabled-path overhead guard for the tracing subsystem.
//!
//! The `span!`/`zone!` probes live inside codec hot loops, so the cost
//! of a probe while tracing is **off** must stay a single relaxed
//! atomic load — within noise (< 1 %) of the same work with no probe
//! at all. The `sad_16x16` pair below measures exactly that ratio on
//! the encoder's dominant kernel; `probe_call` isolates the raw probe,
//! and `enabled_span` gives the recording cost for scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hdvb_dsp::{Dsp, SimdLevel};

fn pixels(seed: u32, len: usize) -> Vec<u8> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 24) as u8
        })
        .collect()
}

fn sad_sweep(dsp: &Dsp, a: &[u8], b: &[u8]) -> u64 {
    let mut acc = 0u64;
    for off in 0..16 {
        acc += u64::from(dsp.sad(&a[off..], 80, b, 64, 16, 16));
    }
    acc
}

fn bench_trace_overhead(c: &mut Criterion) {
    let a = pixels(1, 80 * 70);
    let b = pixels(2, 64 * 64);
    let dsp = Dsp::new(SimdLevel::Scalar);
    hdvb_trace::set_enabled(false);

    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    // Baseline: the kernel loop with no probe in sight.
    group.bench_function("sad_16x16/bare", |bch| bch.iter(|| sad_sweep(&dsp, &a, &b)));

    // The same loop behind a disabled zone probe — the shape every
    // instrumented codec stage has. The two rows must agree within
    // noise; anything beyond ~1 % is a regression in `enabled()`.
    group.bench_function("sad_16x16/probed_disabled", |bch| {
        bch.iter(|| {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
            sad_sweep(&dsp, &a, &b)
        })
    });

    // Raw disabled probe, nothing else: the per-call floor.
    group.bench_function("probe_call/disabled", |bch| {
        bch.iter(|| {
            for _ in 0..64 {
                let _z = hdvb_trace::zone!(hdvb_trace::Stage::TransformQuant);
                black_box(());
            }
        })
    });

    // Recording cost while tracing is on, for scale (not a guard).
    hdvb_trace::reset();
    hdvb_trace::set_enabled(true);
    group.bench_function("probe_call/enabled", |bch| {
        bch.iter(|| {
            for _ in 0..64 {
                let _z = hdvb_trace::zone!(hdvb_trace::Stage::TransformQuant);
                black_box(());
            }
        })
    });
    hdvb_trace::set_enabled(false);

    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
