//! Shared helpers for the HD-VideoBench Criterion benches.
//!
//! Each bench target regenerates one of the paper's evaluation
//! artifacts (see DESIGN.md's experiment index):
//!
//! * `table5_rd` — Table V (rate-distortion per codec/sequence/resolution)
//! * `figure1_decode` — Figure 1 (a)/(b): decode fps, scalar and SIMD
//! * `figure1_encode` — Figure 1 (c)/(d): encode fps, scalar and SIMD
//! * `kernels` — per-kernel tier ablation, scalar vs SSE2 vs AVX2 where
//!   supported (explains the Figure 1 speed-ups); the dependency-free
//!   [`kernelbench`] module runs the same measurement from the CLI and
//!   emits `BENCH_kernels.json`
//! * `motion_search` — EPZS / hexagon / diamond / full-search ablation
//!   (the paper's Section IV algorithm choices)
//!
//! The benches default to reduced geometry (`BENCH_SCALE`, `BENCH_FRAMES`)
//! so a full `cargo bench` completes on a laptop; the `hdvb` CLI runs
//! the same measurements at the paper's full HD settings.

use hdvb_core::{encode_sequence, CodecId, CodingOptions, Packet};
use hdvb_frame::Resolution;
use hdvb_seq::{Sequence, SequenceId};

pub mod alloccount;
pub mod kernelbench;

/// Resolution divisor applied to the paper's three resolutions for the
/// criterion runs (keeps a full sweep tractable on one core).
pub const BENCH_SCALE: u32 = 6;
/// Frames per measured clip.
pub const BENCH_FRAMES: u32 = 6;

/// The paper's three resolutions, scaled for bench runs.
pub fn bench_resolutions() -> Vec<Resolution> {
    Resolution::ALL
        .iter()
        .map(|r| r.scaled_down(BENCH_SCALE))
        .collect()
}

/// A deterministic benchmark clip (sequence × scaled resolution).
pub fn bench_sequence(id: SequenceId, resolution: Resolution) -> Sequence {
    Sequence::new(id, resolution)
}

/// Encodes a clip once (outside the timed region) so decode benches can
/// reuse the packets.
pub fn pre_encode(
    codec: CodecId,
    seq: Sequence,
    frames: u32,
    options: &CodingOptions,
) -> Vec<Packet> {
    encode_sequence(codec, seq, frames, options)
        .expect("bench pre-encode cannot fail")
        .packets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_resolutions_are_small_and_even() {
        for r in bench_resolutions() {
            assert!(r.width() <= 400);
            assert_eq!(r.width() % 2, 0);
            assert_eq!(r.height() % 2, 0);
        }
    }

    #[test]
    fn pre_encode_produces_packets() {
        let seq = bench_sequence(SequenceId::RushHour, Resolution::new(48, 48));
        let p = pre_encode(CodecId::Mpeg2, seq, 3, &CodingOptions::default());
        assert_eq!(p.len(), 3);
    }
}
