//! Self-contained kernel microbenchmark: per-kernel ns/call at every
//! SIMD tier the CPU supports, plus the machine-readable JSON the
//! `hdvb kernels`/`hdvb bench --json` commands write to
//! `BENCH_kernels.json`.
//!
//! Unlike the criterion bench targets, this harness has no external
//! dependencies and runs inside the CLI, so the perf trajectory file can
//! be regenerated on any host with one command.

use hdvb_dsp::{Block8, Dsp, SimdLevel, MPEG_DEFAULT_INTRA, MPEG_DEFAULT_NONINTRA};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured (kernel, tier) cell.
#[derive(Clone, Debug)]
pub struct KernelMeasurement {
    /// Kernel name (stable across runs; used as the JSON key).
    pub kernel: &'static str,
    /// Tier the measurement ran at (`scalar`, `sse2`, `avx2`).
    pub tier: &'static str,
    /// Best observed nanoseconds per kernel call.
    pub ns_per_call: f64,
}

/// Measures `f` and returns the best observed ns/call: the iteration
/// count is calibrated so a batch runs a few milliseconds, then the
/// minimum over several batches is taken (minimum, not mean, to shrug
/// off scheduler noise on a loaded machine).
fn ns_per_call<F: FnMut()>(mut f: F) -> f64 {
    let mut iters: u64 = 1;
    let per = loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let el = t.elapsed();
        if el >= Duration::from_millis(2) || iters >= 1 << 28 {
            break el.as_nanos() as f64 / iters as f64;
        }
        iters *= 2;
    };
    let batch = ((8e6 / per.max(0.5)) as u64).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / batch as f64);
    }
    best
}

fn pixels(seed: u32, len: usize) -> Vec<u8> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 24) as u8
        })
        .collect()
}

fn coeff_block(seed: u32, range: i16) -> Block8 {
    let mut state = seed;
    let mut b = [0i16; 64];
    for v in &mut b {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        *v = ((state >> 16) as i16) % range;
    }
    b
}

/// The kernels measured per tier, in report order.
pub const KERNEL_NAMES: [&str; 14] = [
    "sad_16x16",
    "satd_16x16",
    "ssd_16x16",
    "copy_64x64",
    "avg_16x16",
    "hpel_16x16",
    "sixtap_h_16x16",
    "sixtap_v_16x16",
    "sixtap_hv_16x16",
    "fdct8",
    "idct8",
    "quant8",
    "dequant8",
    "deblock_edge_64",
];

/// Runs every kernel at one tier and returns the measurements in
/// [`KERNEL_NAMES`] order.
pub fn measure_tier(level: SimdLevel) -> Vec<KernelMeasurement> {
    let dsp = Dsp::new(level);
    let tier = level.tier_name();
    // Source plane with a padded stride (80) distinct from the
    // destination stride (64), like a real padded reference plane.
    // Equal power-of-two strides would put every source row at the same
    // 4 KiB page offset as its destination row, and the resulting
    // store-to-load aliasing stalls flatten all tiers to the same
    // artificial floor.
    const SRC_STRIDE: usize = 80;
    let a = pixels(1, SRC_STRIDE * 70);
    let b = pixels(2, 64 * 64);
    let mut dst = vec![0u8; 64 * 64];
    let fwd = coeff_block(7, 256);
    let coeffs = coeff_block(9, 2040);
    let levels = coeff_block(11, 128);
    let mut blk: Block8 = [0; 64];
    let mut deblock_data = pixels(3, 64 * 16);

    let mut out = Vec::new();
    let mut push = |kernel: &'static str, ns: f64| {
        out.push(KernelMeasurement {
            kernel,
            tier,
            ns_per_call: ns,
        })
    };

    push(
        "sad_16x16",
        ns_per_call(|| {
            black_box(dsp.sad(black_box(&a[1..]), SRC_STRIDE, &b, 64, 16, 16));
        }),
    );
    push(
        "satd_16x16",
        ns_per_call(|| {
            black_box(dsp.satd(black_box(&a[1..]), SRC_STRIDE, &b, 64, 16, 16));
        }),
    );
    push(
        "ssd_16x16",
        ns_per_call(|| {
            black_box(dsp.ssd(black_box(&a[1..]), SRC_STRIDE, &b, 64, 16, 16));
        }),
    );
    push(
        "copy_64x64",
        ns_per_call(|| {
            dsp.copy_block(&mut dst, 64, black_box(&a[1..]), SRC_STRIDE, 64, 64);
            black_box(dst[0]);
        }),
    );
    push(
        "avg_16x16",
        ns_per_call(|| {
            dsp.avg_block(&mut dst, 64, black_box(&a[1..]), SRC_STRIDE, &b, 64, 16, 16);
            black_box(dst[0]);
        }),
    );
    push(
        "hpel_16x16",
        ns_per_call(|| {
            let src = &a[8 * SRC_STRIDE + 8..];
            dsp.hpel_interp(&mut dst, 64, black_box(src), SRC_STRIDE, 1, 1, 16, 16);
            black_box(dst[0]);
        }),
    );
    push(
        "sixtap_h_16x16",
        ns_per_call(|| {
            let src = &a[8 * SRC_STRIDE + 6..];
            dsp.sixtap_h(&mut dst, 64, black_box(src), SRC_STRIDE, 16, 16);
            black_box(dst[0]);
        }),
    );
    push(
        "sixtap_v_16x16",
        ns_per_call(|| {
            let src = &a[6 * SRC_STRIDE + 8..];
            dsp.sixtap_v(&mut dst, 64, black_box(src), SRC_STRIDE, 16, 16);
            black_box(dst[0]);
        }),
    );
    push(
        "sixtap_hv_16x16",
        ns_per_call(|| {
            let src = &a[6 * SRC_STRIDE + 6..];
            dsp.sixtap_hv(&mut dst, 64, black_box(src), SRC_STRIDE, 16, 16);
            black_box(dst[0]);
        }),
    );
    push(
        "fdct8",
        ns_per_call(|| {
            blk = *black_box(&fwd);
            dsp.fdct8(&mut blk);
            black_box(blk[0]);
        }),
    );
    push(
        "idct8",
        ns_per_call(|| {
            blk = *black_box(&coeffs);
            dsp.idct8(&mut blk);
            black_box(blk[0]);
        }),
    );
    push(
        "quant8",
        ns_per_call(|| {
            blk = *black_box(&coeffs);
            black_box(dsp.quant8(&mut blk, &MPEG_DEFAULT_INTRA, 5, true));
        }),
    );
    push(
        "dequant8",
        ns_per_call(|| {
            blk = *black_box(&levels);
            dsp.dequant8(&mut blk, &MPEG_DEFAULT_NONINTRA, 5, false);
            black_box(blk[0]);
        }),
    );
    push(
        "deblock_edge_64",
        ns_per_call(|| {
            dsp.deblock_horiz_edge(&mut deblock_data, 64, 8 * 64, 64, 15, 6, 1);
            black_box(deblock_data[0]);
        }),
    );
    out
}

/// Runs the full microbenchmark over every tier the CPU supports.
pub fn run_all() -> Vec<KernelMeasurement> {
    SimdLevel::supported_tiers()
        .into_iter()
        .flat_map(measure_tier)
        .collect()
}

/// Formats measurements as an aligned text table: one row per kernel,
/// one ns/call column per tier, plus each accelerated tier's speed-up
/// over scalar.
pub fn kernels_table(rows: &[KernelMeasurement]) -> String {
    let tiers: Vec<&str> = {
        let mut t: Vec<&str> = rows.iter().map(|r| r.tier).collect();
        t.dedup();
        t
    };
    let cell = |kernel: &str, tier: &str| -> Option<f64> {
        rows.iter()
            .find(|r| r.kernel == kernel && r.tier == tier)
            .map(|r| r.ns_per_call)
    };
    let mut out = String::new();
    out.push_str(&format!("{:<18}", "kernel"));
    for t in &tiers {
        out.push_str(&format!("{:>12}", format!("{t} ns")));
    }
    for t in tiers.iter().skip(1) {
        out.push_str(&format!("{:>12}", format!("{t} x")));
    }
    out.push('\n');
    for kernel in KERNEL_NAMES {
        let Some(base) = cell(kernel, tiers[0]) else {
            continue;
        };
        out.push_str(&format!("{kernel:<18}"));
        for t in &tiers {
            match cell(kernel, t) {
                Some(ns) => out.push_str(&format!("{ns:>12.1}")),
                None => out.push_str(&format!("{:>12}", "-")),
            }
        }
        for t in tiers.iter().skip(1) {
            match cell(kernel, t) {
                Some(ns) if ns > 0.0 => out.push_str(&format!("{:>12.2}", base / ns)),
                _ => out.push_str(&format!("{:>12}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Minimal JSON string escape (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders measurements as the `BENCH_kernels.json` document.
pub fn kernels_json(rows: &[KernelMeasurement], cpu: &str) -> String {
    let tiers: Vec<String> = SimdLevel::supported_tiers()
        .into_iter()
        .map(|t| format!("\"{}\"", t.tier_name()))
        .collect();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"kernels\",\n");
    out.push_str(&format!("  \"cpu\": \"{}\",\n", json_escape(cpu)));
    out.push_str(&format!(
        "  \"auto_tier\": \"{}\",\n",
        SimdLevel::detect().tier_name()
    ));
    out.push_str(&format!("  \"tiers\": [{}],\n", tiers.join(", ")));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"tier\": \"{}\", \"ns_per_call\": {:.2}}}{comma}\n",
            r.kernel, r.tier, r.ns_per_call
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_tier_covers_every_kernel() {
        // Scalar only: fast enough for the test suite and exercises the
        // whole harness path.
        let rows = measure_tier(SimdLevel::Scalar);
        assert_eq!(rows.len(), KERNEL_NAMES.len());
        for (r, name) in rows.iter().zip(KERNEL_NAMES) {
            assert_eq!(r.kernel, name);
            assert_eq!(r.tier, "scalar");
            assert!(r.ns_per_call > 0.0, "{name}");
        }
    }

    #[test]
    fn json_shape_is_parsable_enough() {
        let rows = vec![
            KernelMeasurement {
                kernel: "sad_16x16",
                tier: "scalar",
                ns_per_call: 123.456,
            },
            KernelMeasurement {
                kernel: "sad_16x16",
                tier: "sse2",
                ns_per_call: 31.0,
            },
        ];
        let json = kernels_json(&rows, "Test \"CPU\"");
        assert!(json.contains("\"benchmark\": \"kernels\""));
        assert!(json.contains("\\\"CPU\\\""));
        assert!(json.contains("\"ns_per_call\": 123.46"));
        // Exactly one trailing element without comma per list.
        assert!(!json.contains(",\n  ]"));
        let table = kernels_table(&rows);
        assert!(table.contains("sad_16x16"));
        assert!(table.contains("3.98")); // 123.456 / 31.0
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
