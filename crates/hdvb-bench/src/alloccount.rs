//! A counting global allocator for allocation-regression tests.
//!
//! The zero-copy hot path (DESIGN.md §14) promises that steady-state
//! session traffic allocates nothing: every frame and bitstream buffer
//! cycles through the global pools. That claim is only worth having if
//! a regression trips CI, so the `alloc_gate` integration test installs
//! [`CountingAlloc`] as its `#[global_allocator]` and asserts a hard
//! zero per post-warm-up step.
//!
//! Counters are thread-local (`const`-initialised, so reading them does
//! not itself allocate on any tier-1 platform) and monotone; callers
//! measure a region by differencing [`thread_allocs`] around it. Only
//! `alloc`/`realloc` count — frees are irrelevant to a "no new memory"
//! gate, and `realloc` counts because a growing pooled buffer is
//! exactly the kind of hidden allocation the gate exists to catch.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Heap allocations performed by the current thread since it started
/// (counting `alloc`, `alloc_zeroed` and `realloc` calls).
pub fn thread_allocs() -> u64 {
    ALLOCS.with(Cell::get)
}

/// Bytes requested by the current thread's counted allocations.
pub fn thread_alloc_bytes() -> u64 {
    BYTES.with(Cell::get)
}

/// A [`System`]-backed allocator that counts per-thread allocations.
///
/// Install in a test binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: hdvb_bench::alloccount::CountingAlloc =
///     hdvb_bench::alloccount::CountingAlloc;
/// ```
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn count(size: usize) {
        // try_with: an allocation during TLS teardown must not abort
        // the process; an uncounted alloc at thread exit is harmless.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        let _ = BYTES.try_with(|c| c.set(c.get() + size as u64));
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::count(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::count(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::count(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}
