//! Static tables: the 4×4 zigzag, the standard quantisation multipliers
//! (MF forward / V inverse), deblocking thresholds (α, β, t_c0) and the
//! per-QP Lagrange multiplier.

use hdvb_bits::VlcTable;
use std::sync::OnceLock;

/// 4×4 zigzag scan.
pub(crate) const ZIGZAG4: [usize; 16] = [0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15];

/// Per-position class of the 4×4 quant tables: 0 for (even,even)
/// positions, 1 for (odd,odd), 2 for the mixed positions.
pub(crate) fn position_class(idx: usize) -> usize {
    let (r, c) = (idx / 4, idx % 4);
    match (r % 2, c % 2) {
        (0, 0) => 0,
        (1, 1) => 1,
        _ => 2,
    }
}

/// Forward multipliers MF(qp%6, class) from the H.264 derivation.
pub(crate) const MF: [[i32; 3]; 6] = [
    [13107, 5243, 8066],
    [11916, 4660, 7490],
    [10082, 4194, 6554],
    [9362, 3647, 5825],
    [8192, 3355, 5243],
    [7282, 2893, 4559],
];

/// Inverse (dequant) multipliers V(qp%6, class).
pub(crate) const V: [[i32; 3]; 6] = [
    [10, 16, 13],
    [11, 18, 14],
    [13, 20, 16],
    [14, 23, 18],
    [16, 25, 20],
    [18, 29, 23],
];

/// Deblocking α threshold per indexed QP (H.264 Table 8-16).
pub(crate) const ALPHA: [u8; 52] = [
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 4, 4, 5, 6, 7, 8, 9, 10, 12, 13, 15, 17, 20,
    22, 25, 28, 32, 36, 40, 45, 50, 56, 63, 71, 80, 90, 101, 113, 127, 144, 162, 182, 203, 226,
    255, 255,
];

/// Deblocking β threshold per indexed QP.
pub(crate) const BETA: [u8; 52] = [
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 6, 6, 7, 7, 8, 8,
    9, 9, 10, 10, 11, 11, 12, 12, 13, 13, 14, 14, 15, 15, 16, 16, 17, 17, 18, 18,
];

/// Clipping value t_c0 for boundary strength 1 (H.264 Table 8-17 row 1).
pub(crate) const TC0: [u8; 52] = [
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
    1, 2, 2, 2, 2, 3, 3, 3, 4, 4, 4, 5, 6, 6, 7, 8, 9, 10, 11, 13,
];

/// Lagrange multiplier λ ≈ 0.85·2^((QP−12)/3), rounded, min 1 — the
/// x264-style motion/mode cost weight.
pub(crate) fn lambda(qp: u8) -> u32 {
    let l = 0.85f64 * 2f64.powf((f64::from(qp) - 12.0) / 3.0);
    (l.round() as u32).max(1)
}

/// Run-level event symbols for 4×4 coefficient coding:
/// `(last, run 0..=2, |level| 1..=4)` = 24 symbols + escape.
pub(crate) const MAX_RUN4: u32 = 2;
pub(crate) const MAX_LEVEL4: u32 = 4;
pub(crate) const SYM_ESCAPE4: u32 = 24;

pub(crate) fn event_symbol4(last: bool, run: u32, level_abs: u32) -> u32 {
    debug_assert!(run <= MAX_RUN4 && (1..=MAX_LEVEL4).contains(&level_abs));
    u32::from(last) * 12 + run * MAX_LEVEL4 + (level_abs - 1)
}

pub(crate) fn symbol_event4(symbol: u32) -> (bool, u32, u32) {
    debug_assert!(symbol < SYM_ESCAPE4);
    let last = symbol >= 12;
    let idx = symbol % 12;
    (last, idx / MAX_LEVEL4, idx % MAX_LEVEL4 + 1)
}

/// Code lengths tuned for sparse 4×4 blocks.
const EVENT4_LENGTHS: [u8; 25] = [
    // last = 0: runs 0..=2 × |level| 1..=4
    2, 4, 6, 7, //
    4, 6, 8, 9, //
    5, 7, 9, 10, //
    // last = 1
    3, 5, 7, 8, //
    5, 7, 9, 10, //
    6, 8, 10, 11, //
    // escape
    6,
];

/// The shared 4×4 event table.
pub(crate) fn event_table4() -> &'static VlcTable {
    static TABLE: OnceLock<VlcTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        VlcTable::from_lengths("h264-event4", &EVENT4_LENGTHS)
            .expect("static table lengths are valid")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag4_is_permutation() {
        let mut seen = [false; 16];
        for &i in &ZIGZAG4 {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn position_classes_cover_standard_pattern() {
        // Four class-0, four class-1, eight class-2 positions.
        let counts = (0..16).fold([0; 3], |mut acc, i| {
            acc[position_class(i)] += 1;
            acc
        });
        assert_eq!(counts, [4, 4, 8]);
        assert_eq!(position_class(0), 0); // DC
        assert_eq!(position_class(5), 1); // (1,1)
        assert_eq!(position_class(1), 2);
    }

    #[test]
    fn mf_v_product_matches_transform_gain() {
        // The standard guarantees MF·V·G ≈ 2^21 per class, where G is the
        // combined 2-D gain of the integer transform pair: 16 for
        // (even,even) positions, 25 for (odd,odd) and 20 for mixed.
        const GAIN: [i64; 3] = [16, 25, 20];
        for r in 0..6 {
            for c in 0..3 {
                let prod = MF[r][c] as i64 * V[r][c] as i64 * GAIN[c];
                let ratio = prod as f64 / (1i64 << 21) as f64;
                assert!((0.93..=1.07).contains(&ratio), "row {r} class {c}: {ratio}");
            }
        }
    }

    #[test]
    fn lambda_grows_with_qp() {
        assert!(lambda(12) <= 2);
        assert!(lambda(26) > lambda(20));
        assert!(lambda(51) > lambda(26));
    }

    #[test]
    fn deblock_tables_are_monotonic() {
        for i in 17..52 {
            assert!(ALPHA[i] >= ALPHA[i - 1]);
            assert!(BETA[i] >= BETA[i - 1]);
            assert!(TC0[i] >= TC0[i - 1]);
        }
    }

    #[test]
    fn event4_symbols_roundtrip_and_table_builds() {
        for last in [false, true] {
            for run in 0..=MAX_RUN4 {
                for level in 1..=MAX_LEVEL4 {
                    let s = event_symbol4(last, run, level);
                    assert_eq!(symbol_event4(s), (last, run, level));
                }
            }
        }
        assert_eq!(event_table4().len(), 25);
    }

    proptest::proptest! {
        // Robustness: the H.264 4x4 event table fed random bytes must only ever
        // yield Eof/InvalidCode — never a panic — and must terminate
        // within a decode-step budget (each successful decode consumes
        // at least one bit).
        #[test]
        fn byte_soup_event_table4_never_panics(data in proptest::collection::vec(0u8..=255, 0..256)) {
            use hdvb_bits::{BitReader, BitsError};
            let table = event_table4();
            let mut r = BitReader::new(&data);
            let budget = 8 * data.len() + 2;
            let mut steps = 0usize;
            loop {
                steps += 1;
                proptest::prop_assert!(steps <= budget, "vlc decode-step budget exceeded");
                match table.decode(&mut r) {
                    Ok(sym) => proptest::prop_assert!((sym as usize) < table.len()),
                    Err(BitsError::Eof) | Err(BitsError::InvalidCode { .. }) => break,
                    Err(e) => proptest::prop_assert!(false, "unexpected error: {e}"),
                }
            }
        }
    }
}
