//! Residual transform, serialisation and reconstruction shared by the
//! encoder and decoder (one implementation, zero drift).

use crate::blocks4::{read_coeffs4, write_coeffs4};
use crate::mc::{add4, copy4, diff4};
use crate::quant4::{dequant4, quant4};
use crate::types::CodecError;
use hdvb_bits::{BitReader, BitWriter};
use hdvb_dsp::{Block4, Dsp};
use hdvb_frame::Plane;

/// Transforms and quantises the 16 luma 4×4 residuals of one macroblock
/// against `pred`; returns the quantised blocks and a 16-bit coded-flag
/// mask (bit `15 - k` for raster block `k`).
pub(crate) fn transform_luma_mb(
    dsp: &Dsp,
    qp: u8,
    intra: bool,
    cur: &Plane,
    mbx: usize,
    mby: usize,
    pred: &[u8; 256],
) -> ([Block4; 16], u16) {
    let mut blocks = [[0i16; 16]; 16];
    let mut flags = 0u16;
    let stride = cur.stride();
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::TransformQuant);
    #[allow(clippy::needless_range_loop)]
    for k in 0..16 {
        let (ox, oy) = ((k % 4) * 4, (k / 4) * 4);
        let cur_off = (mby * 16 + oy) * stride + mbx * 16 + ox;
        let mut b = [0i16; 16];
        diff4(
            &mut b,
            &cur.data()[cur_off..],
            stride,
            &pred[oy * 16 + ox..],
            16,
        );
        dsp.fcore4(&mut b);
        if quant4(&mut b, qp, intra) > 0 {
            flags |= 1 << (15 - k);
        }
        blocks[k] = b;
    }
    (blocks, flags)
}

/// Same for one 8×8 chroma plane (4 blocks, flag bit `3 - k`).
pub(crate) fn transform_chroma_plane(
    dsp: &Dsp,
    qp: u8,
    intra: bool,
    cur: &Plane,
    mbx: usize,
    mby: usize,
    pred: &[u8; 64],
) -> ([Block4; 4], u8) {
    let mut blocks = [[0i16; 16]; 4];
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::TransformQuant);
    let mut flags = 0u8;
    let stride = cur.stride();
    #[allow(clippy::needless_range_loop)]
    for k in 0..4 {
        let (ox, oy) = ((k % 2) * 4, (k / 2) * 4);
        let cur_off = (mby * 8 + oy) * stride + mbx * 8 + ox;
        let mut b = [0i16; 16];
        diff4(
            &mut b,
            &cur.data()[cur_off..],
            stride,
            &pred[oy * 8 + ox..],
            8,
        );
        dsp.fcore4(&mut b);
        if quant4(&mut b, qp, intra) > 0 {
            flags |= 1 << (3 - k);
        }
        blocks[k] = b;
    }
    (blocks, flags)
}

/// Serialises the luma residual: 4-bit quadrant pattern, then 4 flag
/// bits per coded quadrant, then coefficients.
pub(crate) fn write_luma_residual(w: &mut BitWriter, blocks: &[Block4; 16], flags: u16) {
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
    let mut quad = 0u32;
    for q in 0..4 {
        if quadrant_flags(flags, q) != 0 {
            quad |= 1 << (3 - q);
        }
    }
    w.put_bits(quad, 4);
    for q in 0..4 {
        let qf = quadrant_flags(flags, q);
        if qf != 0 {
            w.put_bits(u32::from(qf), 4);
            for j in 0..4 {
                if qf & (1 << (3 - j)) != 0 {
                    write_coeffs4(w, &blocks[quadrant_block(q, j)]);
                }
            }
        }
    }
}

/// Parses the luma residual written by [`write_luma_residual`].
pub(crate) fn read_luma_residual(r: &mut BitReader<'_>) -> Result<([Block4; 16], u16), CodecError> {
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
    let mut blocks = [[0i16; 16]; 16];
    let mut flags = 0u16;
    let quad = r.get_bits(4)?;
    for q in 0..4 {
        if quad & (1 << (3 - q)) != 0 {
            let qf = r.get_bits(4)? as u8;
            for j in 0..4 {
                if qf & (1 << (3 - j)) != 0 {
                    let k = quadrant_block(q, j);
                    read_coeffs4(r, &mut blocks[k])?;
                    flags |= 1 << (15 - k);
                }
            }
        }
    }
    Ok((blocks, flags))
}

/// Serialises one chroma plane's residual: presence bit, then flags and
/// coefficients.
pub(crate) fn write_chroma_residual(w: &mut BitWriter, blocks: &[Block4; 4], flags: u8) {
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
    w.put_bit(flags != 0);
    if flags != 0 {
        w.put_bits(u32::from(flags), 4);
        #[allow(clippy::needless_range_loop)]
        for k in 0..4 {
            if flags & (1 << (3 - k)) != 0 {
                write_coeffs4(w, &blocks[k]);
            }
        }
    }
}

/// Parses one chroma plane's residual.
pub(crate) fn read_chroma_residual(r: &mut BitReader<'_>) -> Result<([Block4; 4], u8), CodecError> {
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
    let mut blocks = [[0i16; 16]; 4];
    let mut flags = 0u8;
    if r.get_bit()? {
        flags = r.get_bits(4)? as u8;
        #[allow(clippy::needless_range_loop)]
        for k in 0..4 {
            if flags & (1 << (3 - k)) != 0 {
                read_coeffs4(r, &mut blocks[k])?;
            }
        }
    }
    Ok((blocks, flags))
}

/// Reconstructs the luma macroblock: `recon = pred (+ residual)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn recon_luma_mb(
    dsp: &Dsp,
    qp: u8,
    recon: &mut Plane,
    mbx: usize,
    mby: usize,
    pred: &[u8; 256],
    blocks: &[Block4; 16],
    flags: u16,
) {
    let stride = recon.stride();
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
    #[allow(clippy::needless_range_loop)]
    for k in 0..16 {
        let (ox, oy) = ((k % 4) * 4, (k / 4) * 4);
        let off = (mby * 16 + oy) * stride + mbx * 16 + ox;
        if flags & (1 << (15 - k)) != 0 {
            let mut b = blocks[k];
            dequant4(&mut b, qp);
            dsp.icore4(&mut b);
            add4(
                &mut recon.data_mut()[off..],
                stride,
                &pred[oy * 16 + ox..],
                16,
                &b,
            );
        } else {
            copy4(
                &mut recon.data_mut()[off..],
                stride,
                &pred[oy * 16 + ox..],
                16,
            );
        }
    }
}

/// Reconstructs one chroma plane of the macroblock.
#[allow(clippy::too_many_arguments)]
pub(crate) fn recon_chroma_plane(
    dsp: &Dsp,
    qp: u8,
    recon: &mut Plane,
    mbx: usize,
    mby: usize,
    pred: &[u8; 64],
    blocks: &[Block4; 4],
    flags: u8,
) {
    let stride = recon.stride();
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
    #[allow(clippy::needless_range_loop)]
    for k in 0..4 {
        let (ox, oy) = ((k % 2) * 4, (k / 2) * 4);
        let off = (mby * 8 + oy) * stride + mbx * 8 + ox;
        if flags & (1 << (3 - k)) != 0 {
            let mut b = blocks[k];
            dequant4(&mut b, qp);
            dsp.icore4(&mut b);
            add4(
                &mut recon.data_mut()[off..],
                stride,
                &pred[oy * 8 + ox..],
                8,
                &b,
            );
        } else {
            copy4(
                &mut recon.data_mut()[off..],
                stride,
                &pred[oy * 8 + ox..],
                8,
            );
        }
    }
}

/// Raster index of 4×4 block `j` inside quadrant `q`.
fn quadrant_block(q: usize, j: usize) -> usize {
    let (qx, qy) = (q % 2, q / 2);
    let (jx, jy) = (j % 2, j / 2);
    (qy * 2 + jy) * 4 + qx * 2 + jx
}

/// The four flag bits belonging to quadrant `q` of a 16-bit luma mask.
fn quadrant_flags(flags: u16, q: usize) -> u8 {
    let mut out = 0u8;
    for j in 0..4 {
        if flags & (1 << (15 - quadrant_block(q, j))) != 0 {
            out |= 1 << (3 - j);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdvb_dsp::Dsp;

    #[test]
    fn quadrant_mapping_is_a_bijection() {
        let mut seen = [false; 16];
        for q in 0..4 {
            for j in 0..4 {
                let k = quadrant_block(q, j);
                assert!(!seen[k]);
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn luma_residual_roundtrip() {
        let dsp = Dsp::default();
        let mut cur = Plane::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                cur.set(x, y, ((x * 7 + y * 13) % 256) as u8);
            }
        }
        let pred = [100u8; 256];
        let (blocks, flags) = transform_luma_mb(&dsp, 20, false, &cur, 0, 0, &pred);
        assert!(flags != 0);
        let mut w = BitWriter::new();
        write_luma_residual(&mut w, &blocks, flags);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let (rblocks, rflags) = read_luma_residual(&mut r).unwrap();
        assert_eq!(rflags, flags);
        assert_eq!(rblocks, blocks);
    }

    #[test]
    fn chroma_residual_roundtrip_including_empty() {
        let dsp = Dsp::default();
        let mut cur = Plane::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                cur.set(x, y, ((x * 11 + y * 3) % 256) as u8);
            }
        }
        let pred = [128u8; 64];
        let (blocks, flags) = transform_chroma_plane(&dsp, 24, true, &cur, 0, 0, &pred);
        let mut w = BitWriter::new();
        write_chroma_residual(&mut w, &blocks, flags);
        // Also an empty one.
        write_chroma_residual(&mut w, &[[0i16; 16]; 4], 0);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let (b1, f1) = read_chroma_residual(&mut r).unwrap();
        assert_eq!(f1, flags);
        assert_eq!(b1, blocks);
        let (_, f2) = read_chroma_residual(&mut r).unwrap();
        assert_eq!(f2, 0);
    }

    #[test]
    fn recon_after_transform_is_close_to_source() {
        let dsp = Dsp::default();
        let mut cur = Plane::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                cur.set(x, y, (40 + x * 9 + y * 4) as u8);
            }
        }
        let pred = [90u8; 256];
        let qp = 12;
        let (blocks, flags) = transform_luma_mb(&dsp, qp, true, &cur, 0, 0, &pred);
        let mut recon = Plane::new(16, 16);
        recon_luma_mb(&dsp, qp, &mut recon, 0, 0, &pred, &blocks, flags);
        for y in 0..16 {
            for x in 0..16 {
                let err = (i32::from(cur.get(x, y)) - i32::from(recon.get(x, y))).abs();
                assert!(
                    err <= 6,
                    "({x},{y}): {} vs {}",
                    cur.get(x, y),
                    recon.get(x, y)
                );
            }
        }
    }
}
