//! Bit-exact H.264 4×4 quantisation (the MF/V derivation of the
//! standard), wrapped around the core transform in `hdvb-dsp`.

use crate::tables::{position_class, MF, V};
use hdvb_dsp::Block4;

/// Quantises transformed coefficients in place; returns the number of
/// nonzero levels. `intra` selects the standard's larger rounding offset
/// (f = 2^qbits/3 vs /6).
pub(crate) fn quant4(block: &mut Block4, qp: u8, intra: bool) -> u32 {
    let qbits = 15 + u32::from(qp) / 6;
    let f: i64 = if intra {
        (1i64 << qbits) / 3
    } else {
        (1i64 << qbits) / 6
    };
    let mf = &MF[usize::from(qp) % 6];
    let mut nonzero = 0;
    for (i, v) in block.iter_mut().enumerate() {
        let w = i64::from(*v);
        let m = i64::from(mf[position_class(i)]);
        let z = ((w.abs() * m + f) >> qbits) as i32;
        let z = z.clamp(0, 2047);
        let signed = if w < 0 { -z } else { z };
        *v = signed as i16;
        if signed != 0 {
            nonzero += 1;
        }
    }
    nonzero
}

/// Dequantises levels in place (`W' = Z · V · 2^(qp/6)`), clamped to a
/// safe inverse-transform input range.
pub(crate) fn dequant4(block: &mut Block4, qp: u8) {
    let shift = u32::from(qp) / 6;
    let v = &V[usize::from(qp) % 6];
    for (i, z) in block.iter_mut().enumerate() {
        if *z == 0 {
            continue;
        }
        let w = (i32::from(*z) * v[position_class(i)]) << shift;
        *z = w.clamp(-15000, 15000) as i16;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdvb_dsp::Dsp;

    fn random_residual(seed: u32) -> Block4 {
        let mut state = seed;
        let mut b = [0i16; 16];
        for v in &mut b {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = ((state >> 20) as i16 % 511) - 255;
        }
        b
    }

    /// Full transform→quant→dequant→inverse pipeline error must be
    /// bounded by the quantisation step for the QP.
    #[test]
    fn pipeline_error_scales_with_qp() {
        let dsp = Dsp::default();
        let mut worst_low = 0i32;
        let mut worst_high = 0i32;
        for seed in 0..50 {
            let orig = random_residual(seed);
            for (qp, worst) in [(4u8, &mut worst_low), (40u8, &mut worst_high)] {
                let mut b = orig;
                dsp.fcore4(&mut b);
                quant4(&mut b, qp, true);
                dequant4(&mut b, qp);
                dsp.icore4(&mut b);
                for i in 0..16 {
                    *worst = (*worst).max((i32::from(b[i]) - i32::from(orig[i])).abs());
                }
            }
        }
        assert!(worst_low <= 2, "qp4 worst error {worst_low}");
        assert!(worst_high > worst_low, "high qp must be lossier");
        assert!(worst_high < 120, "qp40 worst error {worst_high}");
    }

    #[test]
    fn zero_block_stays_zero() {
        let mut b = [0i16; 16];
        assert_eq!(quant4(&mut b, 26, false), 0);
        dequant4(&mut b, 26);
        assert_eq!(b, [0i16; 16]);
    }

    #[test]
    fn higher_qp_zeroes_more() {
        let dsp = Dsp::default();
        let orig = random_residual(7);
        let nz = |qp: u8| {
            let mut b = orig;
            dsp.fcore4(&mut b);
            quant4(&mut b, qp, false)
        };
        assert!(nz(40) < nz(10));
    }

    #[test]
    fn intra_offset_rounds_more_generously() {
        // With the larger intra offset, borderline coefficients survive.
        let mut intra_block = [0i16; 16];
        let mut inter_block = [0i16; 16];
        // A coefficient right at the dead-zone boundary for qp 26.
        intra_block[1] = 60;
        inter_block[1] = 60;
        let a = quant4(&mut intra_block, 30, true);
        let b = quant4(&mut inter_block, 30, false);
        assert!(a >= b);
    }

    #[test]
    fn qp_steps_of_six_double_the_step() {
        // Reconstruction of a fixed level doubles when qp increases by 6.
        let mut b1 = [0i16; 16];
        b1[0] = 10;
        let mut b2 = b1;
        dequant4(&mut b1, 20);
        dequant4(&mut b2, 26);
        assert_eq!(i32::from(b2[0]), 2 * i32::from(b1[0]));
    }
}
