//! An H.264-class video encoder and decoder.
//!
//! HD-VideoBench's stand-in for the paper's x264 encoder and FFmpeg
//! H.264 decoder. It implements the H.264 generation of coding tools on
//! its own bitstream syntax:
//!
//! * **4×4 integer transform** with the standard's bit-exact
//!   quantisation tables (MF/V),
//! * **spatial intra prediction** — 5-mode 4×4, 4-mode 16×16 (including
//!   plane), 3-mode chroma,
//! * **variable block-size inter prediction** (16×16, 16×8, 8×16, 8×8)
//!   with **quarter-pel** 6-tap motion compensation,
//! * **multiple reference frames** (configurable, paper command uses
//!   `--ref 16`; default here 3),
//! * **hexagon motion search** (`--me hex` in the paper) with SATD
//!   (`--subme 7`-class) sub-pel refinement,
//! * **in-loop deblocking filter** with the standard α/β/t_c thresholds,
//! * compact run-level VLC over 4×4 blocks plus per-block coded flags
//!   (CAVLC-class cost profile; see DESIGN.md for the substitution
//!   notes).
//!
//! GOP structure and rate control follow the paper: constant QP
//! (`--qp 26` equivalent), I-P-B-B with only the first picture intra.
//!
//! # Example
//!
//! ```
//! use hdvb_frame::Frame;
//! use hdvb_h264::{EncoderConfig, H264Decoder, H264Encoder};
//!
//! let mut enc = H264Encoder::new(EncoderConfig::new(64, 48).with_qp(26))?;
//! let mut dec = H264Decoder::new();
//! let mut packets = enc.encode(&Frame::new(64, 48))?;
//! packets.extend(enc.flush()?);
//! let mut out = Vec::new();
//! for p in &packets {
//!     out.extend(dec.decode(&p.data)?);
//! }
//! out.extend(dec.flush());
//! assert_eq!(out.len(), 1);
//! # Ok::<(), hdvb_h264::CodecError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod blocks4;
mod deblock;
mod decoder;
mod encoder;
mod gop;
mod intra;
mod mc;
mod quant4;
mod resid;
mod tables;
mod types;

pub use decoder::H264Decoder;
pub use encoder::H264Encoder;
pub use types::{CodecError, EncoderConfig, FrameType, Packet};
