use crate::blocks4::write_coeffs4;
use crate::deblock::deblock_frame;
use crate::gop::{GopScheduler, Scheduled};
use crate::intra::{predict16, predict4, predict_chroma8, ChromaMode, Intra16Mode, Intra4Mode};
use crate::mc::{predict_partition, Partitioning, RefPicture};
use crate::quant4::{dequant4, quant4};
use crate::resid::{
    recon_chroma_plane, recon_luma_mb, transform_chroma_plane, transform_luma_mb,
    write_chroma_residual, write_luma_residual,
};
use crate::tables::lambda;
use crate::types::{CodecError, EncoderConfig, FrameType, Packet};
use hdvb_bits::BitWriter;
use hdvb_dsp::Dsp;
use hdvb_frame::{align_up, BufferPool, Frame, FramePool};
use hdvb_me::{
    hexagon_search, median3, mv_bits, subpel_refine, BlockRef, Mv, MvField, SearchParams,
    SubpelStep,
};
use hdvb_par::CancelToken;
use std::collections::VecDeque;

/// Magic number opening every coded picture.
pub(crate) const MAGIC: u32 = 0x4834; // "H4"

/// Per-picture coding context mirrored by the decoder: the quarter-pel
/// motion field (median predictors, skip vectors) and the 4×4 intra-mode
/// grid (most-probable-mode predictors).
pub(crate) struct PicCtx {
    pub qfield: MvField,
    pub mode4: Vec<u8>,
    pub mode4_w: usize,
}

impl PicCtx {
    pub(crate) fn new(mbs_x: usize, mbs_y: usize) -> Self {
        PicCtx {
            qfield: MvField::new(mbs_x, mbs_y),
            mode4: vec![2; mbs_x * 4 * mbs_y * 4], // DC everywhere
            mode4_w: mbs_x * 4,
        }
    }

    pub(crate) fn mode_at(&self, gx: isize, gy: isize) -> u8 {
        if gx < 0 || gy < 0 || gx as usize >= self.mode4_w {
            return 2;
        }
        let idx = gy as usize * self.mode4_w + gx as usize;
        self.mode4.get(idx).copied().unwrap_or(2)
    }

    pub(crate) fn set_mode(&mut self, gx: usize, gy: usize, mode: u8) {
        let idx = gy * self.mode4_w + gx;
        if idx < self.mode4.len() {
            self.mode4[idx] = mode;
        }
    }

    /// Most probable 4×4 mode: min of left and top neighbour modes.
    pub(crate) fn most_probable(&self, gx: usize, gy: usize) -> u8 {
        let (x, y) = (gx as isize, gy as isize);
        self.mode_at(x - 1, y).min(self.mode_at(x, y - 1))
    }

    /// Marks a whole macroblock's 4×4 cells as non-intra (DC for mpm).
    pub(crate) fn clear_mb_modes(&mut self, mbx: usize, mby: usize) {
        for j in 0..4 {
            for i in 0..4 {
                self.set_mode(mbx * 4 + i, mby * 4 + j, 2);
            }
        }
    }

    /// Restores the freshly-constructed state so the context can be
    /// reused across pictures without reallocating.
    pub(crate) fn reset(&mut self) {
        self.qfield.clear();
        self.mode4.fill(2);
    }
}

/// Median MV predictor from the left, top and top-right macroblocks.
pub(crate) fn median_pred(qfield: &MvField, mbx: usize, mby: usize) -> Mv {
    let (x, y) = (mbx as isize, mby as isize);
    median3(
        qfield.get(x - 1, y),
        qfield.get(x, y - 1),
        qfield.get(x + 1, y - 1),
    )
}

/// Per-picture working storage, reused across the whole encode so the
/// steady-state hot path performs no heap allocation. Taken out of the
/// encoder (`Option` dance) while a picture is being coded to keep the
/// borrow checker happy around `&self` helper calls.
struct EncScratch {
    /// Reconstruction target, `aw`×`ah`; fully overwritten per picture.
    recon: Frame,
    /// Edge-replicated copy of unaligned input (unused when the source
    /// frame is already macroblock-aligned).
    aligned: Frame,
    /// Per-picture coding context, reset before each picture.
    ctx: PicCtx,
}

/// The H.264-class encoder. See the crate docs for the toolset.
pub struct H264Encoder {
    config: EncoderConfig,
    dsp: Dsp,
    gop: GopScheduler,
    aw: usize,
    ah: usize,
    mbs_x: usize,
    mbs_y: usize,
    /// Reference pictures, newest first.
    refs: VecDeque<RefPicture>,
    /// Retired references kept for recycling (padded-plane storage is
    /// refilled in place instead of reallocated).
    retired: Vec<RefPicture>,
    lambda: u32,
    /// Reusable per-picture working storage.
    scratch: Option<EncScratch>,
    /// Reusable coding-order buffer handed to the GOP scheduler.
    sched: Vec<Scheduled>,
    /// Cooperative cancellation, checkpointed before each coded picture.
    cancel: CancelToken,
}

impl H264Encoder {
    /// Creates an encoder.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadConfig`] for invalid parameters.
    pub fn new(config: EncoderConfig) -> Result<Self, CodecError> {
        config.validate()?;
        let aw = align_up(config.width, 16);
        let ah = align_up(config.height, 16);
        Ok(H264Encoder {
            config,
            dsp: Dsp::new(config.simd),
            gop: GopScheduler::new(config.b_frames, config.intra_period),
            aw,
            ah,
            mbs_x: aw / 16,
            mbs_y: ah / 16,
            refs: VecDeque::new(),
            retired: Vec::new(),
            lambda: lambda(config.qp),
            scratch: Some(EncScratch {
                recon: Frame::new(aw, ah),
                aligned: Frame::new(aw, ah),
                ctx: PicCtx::new(aw / 16, ah / 16),
            }),
            sched: Vec::new(),
            cancel: CancelToken::never(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Installs a cancellation token checked before each coded picture,
    /// so a deadline or shutdown stops the encoder at the next picture
    /// boundary with [`CodecError::Cancelled`].
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Submits the next display-order frame.
    ///
    /// # Errors
    ///
    /// [`CodecError::FrameMismatch`] on geometry mismatch.
    pub fn encode(&mut self, frame: &Frame) -> Result<Vec<Packet>, CodecError> {
        let mut out = Vec::new();
        self.encode_into(frame, &mut out)?;
        Ok(out)
    }

    /// Flushes buffered frames.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors (none in normal operation).
    pub fn flush(&mut self) -> Result<Vec<Packet>, CodecError> {
        let mut out = Vec::new();
        self.flush_into(&mut out)?;
        Ok(out)
    }

    /// Allocation-free form of [`encode`](Self::encode): appends coded
    /// packets to `out`. The input frame is copied into a pooled frame
    /// (recycled after coding), packet payloads come from the global
    /// [`BufferPool`], and all per-picture working state is reused — at
    /// steady state a submitted frame performs zero heap allocations.
    ///
    /// # Errors
    ///
    /// As [`encode`](Self::encode); packets appended before an error
    /// stay in `out`.
    pub fn encode_into(&mut self, frame: &Frame, out: &mut Vec<Packet>) -> Result<(), CodecError> {
        if frame.width() != self.config.width || frame.height() != self.config.height {
            return Err(CodecError::FrameMismatch {
                expected: (self.config.width, self.config.height),
                actual: (frame.width(), frame.height()),
            });
        }
        let pooled = {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
            let mut f = FramePool::global().take(frame.width(), frame.height());
            f.copy_from(frame);
            f
        };
        let mut sched = std::mem::take(&mut self.sched);
        self.gop.push_into(pooled, &mut sched);
        let result = self.encode_scheduled(&mut sched, out);
        self.sched = sched;
        result
    }

    /// Allocation-free form of [`flush`](Self::flush): appends the
    /// remaining coded packets to `out`.
    ///
    /// # Errors
    ///
    /// As [`flush`](Self::flush).
    pub fn flush_into(&mut self, out: &mut Vec<Packet>) -> Result<(), CodecError> {
        let mut sched = std::mem::take(&mut self.sched);
        self.gop.finish_into(&mut sched);
        let result = self.encode_scheduled(&mut sched, out);
        self.sched = sched;
        result
    }

    /// Codes every scheduled picture, recycling each input frame to the
    /// global pool afterwards (also on error/cancellation).
    fn encode_scheduled(
        &mut self,
        sched: &mut Vec<Scheduled>,
        out: &mut Vec<Packet>,
    ) -> Result<(), CodecError> {
        let mut result = Ok(());
        for s in sched.drain(..) {
            if result.is_ok() {
                if self.cancel.is_cancelled() {
                    result = Err(CodecError::Cancelled);
                } else {
                    out.push(self.encode_picture(&s.frame, s.frame_type, s.display_index));
                }
            }
            FramePool::global().put(s.frame);
        }
        result
    }

    fn encode_picture(
        &mut self,
        frame: &Frame,
        frame_type: FrameType,
        display_index: u32,
    ) -> Packet {
        let mut scratch = self.scratch.take().expect("encoder scratch in use");
        let packet = self.encode_picture_inner(frame, frame_type, display_index, &mut scratch);
        self.scratch = Some(scratch);
        packet
    }

    fn encode_picture_inner(
        &mut self,
        frame: &Frame,
        frame_type: FrameType,
        display_index: u32,
        scratch: &mut EncScratch,
    ) -> Packet {
        let EncScratch {
            recon,
            aligned,
            ctx,
        } = scratch;
        let cur: &Frame = if frame.width() == self.aw && frame.height() == self.ah {
            frame
        } else {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
            aligned.replicate_from(frame);
            aligned
        };
        let mut w = {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
            let mut w = BitWriter::from_vec(BufferPool::global().take(self.aw * self.ah / 6));
            w.put_bits(MAGIC, 16);
            w.put_bits(frame_type.to_bits(), 2);
            w.put_bits(display_index, 32);
            w.put_ue(self.config.width as u32);
            w.put_ue(self.config.height as u32);
            w.put_ue(u32::from(self.config.qp));
            w.put_ue(u32::from(self.config.num_refs));
            w.put_bit(self.config.deblock);
            w
        };

        // The reconstruction MUST start each picture at the mid-grey
        // (128) state a fresh `Frame::new` has: intra prediction reads
        // top-right neighbour positions that raster order has not
        // reconstructed yet, and the bitstream contract pins those
        // samples to the same freshly initialised reconstruction the
        // decoder starts from. A memset keeps the reused scratch
        // bit-identical to the allocated frame it replaces without
        // touching the heap.
        recon.y_mut().fill(128);
        recon.cb_mut().fill(128);
        recon.cr_mut().fill(128);
        ctx.reset();
        match frame_type {
            FrameType::I => self.encode_i(&mut w, cur, recon, ctx),
            FrameType::P => self.encode_p(&mut w, cur, recon, ctx),
            FrameType::B => self.encode_b(&mut w, cur, recon, ctx),
        }
        if self.config.deblock {
            deblock_frame(&self.dsp, recon, self.config.qp);
        }
        if frame_type != FrameType::B {
            let keep = usize::from(self.config.num_refs).max(2);
            while self.refs.len() + 1 > keep {
                match self.refs.pop_back() {
                    Some(old) => self.retired.push(old),
                    None => break,
                }
            }
            let new_ref = match self.retired.pop() {
                Some(mut rp) if rp.matches(self.aw, self.ah) => {
                    rp.refill_from(recon);
                    rp
                }
                _ => RefPicture::from_frame(recon),
            };
            self.refs.push_front(new_ref);
        }
        let data = {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
            w.finish()
        };
        Packet {
            data,
            frame_type,
            display_index,
        }
    }

    // ------------------------------------------------------------ intra --

    fn encode_i(&self, w: &mut BitWriter, cur: &Frame, recon: &mut Frame, ctx: &mut PicCtx) {
        for mby in 0..self.mbs_y {
            for mbx in 0..self.mbs_x {
                let (c16, mode16) = self.intra16_cost(cur, recon, mbx, mby);
                let c4 = self.intra4_cost_estimate(cur, ctx, mbx, mby);
                if c4 < c16 {
                    w.put_ue(0);
                    self.code_intra4x4_mb(w, cur, recon, ctx, mbx, mby);
                } else {
                    w.put_ue(1);
                    self.code_intra16_mb(w, cur, recon, ctx, mbx, mby, mode16);
                }
            }
            w.byte_align();
        }
    }

    /// SATD cost and best mode for intra 16×16.
    fn intra16_cost(
        &self,
        cur: &Frame,
        recon: &Frame,
        mbx: usize,
        mby: usize,
    ) -> (u32, Intra16Mode) {
        let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
        let src = &cur.y().data()[mby * 16 * self.aw + mbx * 16..];
        let mut best = (u32::MAX, Intra16Mode::Dc);
        for mode in Intra16Mode::ALL {
            let mut pred = [0u8; 256];
            predict16(recon.y(), mbx * 16, mby * 16, mode, &mut pred);
            let satd = self.dsp.satd(src, self.aw, &pred, 16, 16, 16);
            let cost = satd + self.lambda * 4;
            if cost < best.0 {
                best = (cost, mode);
            }
        }
        best
    }

    /// Quick SATD estimate for intra 4×4 (source-neighbour prediction;
    /// the actual coding pass uses reconstruction-based prediction).
    fn intra4_cost_estimate(&self, cur: &Frame, ctx: &PicCtx, mbx: usize, mby: usize) -> u32 {
        let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
        let mut total = self.lambda * 8;
        for k in 0..16 {
            let bx = mbx * 16 + (k % 4) * 4;
            let by = mby * 16 + (k / 4) * 4;
            let src = &cur.y().data()[by * self.aw + bx..];
            let mut best = u32::MAX;
            for mode in Intra4Mode::ALL {
                let mut pred = [0u8; 16];
                predict4(cur.y(), bx, by, mode, &mut pred);
                let satd = self.dsp.satd(src, self.aw, &pred, 4, 4, 4);
                best = best.min(satd + self.lambda * 2);
            }
            total = total.saturating_add(best);
            let _ = ctx;
        }
        total
    }

    /// Codes an I4x4 macroblock: per-block mode + residual, interleaved
    /// with reconstruction, then intra chroma.
    fn code_intra4x4_mb(
        &self,
        w: &mut BitWriter,
        cur: &Frame,
        recon: &mut Frame,
        ctx: &mut PicCtx,
        mbx: usize,
        mby: usize,
    ) {
        for k in 0..16 {
            let gx = mbx * 4 + k % 4;
            let gy = mby * 4 + k / 4;
            let bx = mbx * 16 + (k % 4) * 4;
            let by = mby * 16 + (k / 4) * 4;
            let src = &cur.y().data()[by * self.aw + bx..];
            // Decision against reconstructed neighbours (attributed to
            // motion estimation: it is the intra analogue of the search).
            let mut best = (u32::MAX, Intra4Mode::Dc);
            let mpm = ctx.most_probable(gx, gy);
            {
                let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
                for mode in Intra4Mode::ALL {
                    let mut pred = [0u8; 16];
                    predict4(recon.y(), bx, by, mode, &mut pred);
                    let satd = self.dsp.satd(src, self.aw, &pred, 4, 4, 4);
                    let mode_bits = if mode.index() == u32::from(mpm) { 1 } else { 3 };
                    let cost = satd + self.lambda * mode_bits;
                    if cost < best.0 {
                        best = (cost, mode);
                    }
                }
            }
            let mode = best.1;
            write_intra4_mode(w, mode, mpm);
            ctx.set_mode(gx, gy, mode.index() as u8);
            // Residual against the recon-based prediction.
            let mut pred = [0u8; 16];
            let mut block = [0i16; 16];
            let nz = {
                let _z = hdvb_trace::zone!(hdvb_trace::Stage::TransformQuant);
                predict4(recon.y(), bx, by, mode, &mut pred);
                crate::mc::diff4(&mut block, src, self.aw, &pred, 4);
                self.dsp.fcore4(&mut block);
                quant4(&mut block, self.config.qp, true)
            };
            w.put_bit(nz > 0);
            if nz > 0 {
                write_coeffs4(w, &block);
                let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
                dequant4(&mut block, self.config.qp);
                self.dsp.icore4(&mut block);
                let stride = recon.y().stride();
                let off = by * stride + bx;
                crate::mc::add4(
                    &mut recon.y_mut().data_mut()[off..],
                    stride,
                    &pred,
                    4,
                    &block,
                );
            } else {
                let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
                let stride = recon.y().stride();
                let off = by * stride + bx;
                crate::mc::copy4(&mut recon.y_mut().data_mut()[off..], stride, &pred, 4);
            }
        }
        self.code_intra_chroma(w, cur, recon, mbx, mby);
    }

    /// Codes an I16x16 macroblock with the pre-selected luma mode.
    #[allow(clippy::too_many_arguments)]
    fn code_intra16_mb(
        &self,
        w: &mut BitWriter,
        cur: &Frame,
        recon: &mut Frame,
        ctx: &mut PicCtx,
        mbx: usize,
        mby: usize,
        mode: Intra16Mode,
    ) {
        w.put_ue(mode.index());
        ctx.clear_mb_modes(mbx, mby);
        let mut pred = [0u8; 256];
        {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
            predict16(recon.y(), mbx * 16, mby * 16, mode, &mut pred);
        }
        let (blocks, flags) =
            transform_luma_mb(&self.dsp, self.config.qp, true, cur.y(), mbx, mby, &pred);
        write_luma_residual(w, &blocks, flags);
        recon_luma_mb(
            &self.dsp,
            self.config.qp,
            recon.y_mut(),
            mbx,
            mby,
            &pred,
            &blocks,
            flags,
        );
        self.code_intra_chroma(w, cur, recon, mbx, mby);
    }

    /// Chroma intra mode decision + coding + reconstruction.
    fn code_intra_chroma(
        &self,
        w: &mut BitWriter,
        cur: &Frame,
        recon: &mut Frame,
        mbx: usize,
        mby: usize,
    ) {
        let cw = self.aw / 2;
        let src_cb = &cur.cb().data()[mby * 8 * cw + mbx * 8..];
        let src_cr = &cur.cr().data()[mby * 8 * cw + mbx * 8..];
        let mut best = (u32::MAX, ChromaMode::Dc);
        {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
            for mode in ChromaMode::ALL {
                let mut pb = [0u8; 64];
                let mut pr = [0u8; 64];
                predict_chroma8(recon.cb(), mbx * 8, mby * 8, mode, &mut pb);
                predict_chroma8(recon.cr(), mbx * 8, mby * 8, mode, &mut pr);
                let satd = self.dsp.satd(src_cb, cw, &pb, 8, 8, 8)
                    + self.dsp.satd(src_cr, cw, &pr, 8, 8, 8);
                if satd < best.0 {
                    best = (satd, mode);
                }
            }
        }
        let mode = best.1;
        w.put_ue(mode.index());
        let mut pb = [0u8; 64];
        let mut pr = [0u8; 64];
        {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
            predict_chroma8(recon.cb(), mbx * 8, mby * 8, mode, &mut pb);
            predict_chroma8(recon.cr(), mbx * 8, mby * 8, mode, &mut pr);
        }
        let (bb, fb) =
            transform_chroma_plane(&self.dsp, self.config.qp, true, cur.cb(), mbx, mby, &pb);
        let (br, fr) =
            transform_chroma_plane(&self.dsp, self.config.qp, true, cur.cr(), mbx, mby, &pr);
        write_chroma_residual(w, &bb, fb);
        write_chroma_residual(w, &br, fr);
        recon_chroma_plane(
            &self.dsp,
            self.config.qp,
            recon.cb_mut(),
            mbx,
            mby,
            &pb,
            &bb,
            fb,
        );
        recon_chroma_plane(
            &self.dsp,
            self.config.qp,
            recon.cr_mut(),
            mbx,
            mby,
            &pr,
            &br,
            fr,
        );
    }

    // ------------------------------------------------------------ inter --

    /// SATD-based quarter-pel refinement for one luma block.
    #[allow(clippy::too_many_arguments)]
    fn refine_qpel_satd(
        &self,
        cur: &Frame,
        r: &RefPicture,
        bx: usize,
        by: usize,
        bw: usize,
        bh: usize,
        fullpel: Mv,
        pred_qpel: Mv,
    ) -> (Mv, u32) {
        let mut tmp = [0u8; 256];
        let src = &cur.y().data()[by * self.aw + bx..];
        let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
        let mut cost_at = |qmv: Mv| -> u32 {
            let ix = bx as isize + isize::from(qmv.x >> 2) - 2;
            let iy = by as isize + isize::from(qmv.y >> 2) - 2;
            self.dsp.qpel_luma(
                &mut tmp,
                bw,
                r.y.row_from(ix, iy),
                r.y.stride(),
                (qmv.x & 3) as u8,
                (qmv.y & 3) as u8,
                bw,
                bh,
            );
            self.dsp.satd(src, self.aw, &tmp, bw, bw, bh) + self.lambda * mv_bits(qmv, pred_qpel)
        };
        let center_h = fullpel.scaled(2);
        let initial = cost_at(center_h.scaled(2));
        let (best_h, cost_h) = subpel_refine(center_h, initial, SubpelStep::Half, |hmv| {
            cost_at(hmv.scaled(2))
        });
        let center_q = best_h.scaled(2);
        subpel_refine(center_q, cost_h, SubpelStep::Quarter, cost_at)
    }

    fn encode_p(&self, w: &mut BitWriter, cur: &Frame, recon: &mut Frame, ctx: &mut PicCtx) {
        let nrefs = usize::from(self.config.num_refs)
            .min(self.refs.len())
            .max(1);
        for mby in 0..self.mbs_y {
            for mbx in 0..self.mbs_x {
                // One motion-estimation zone spans the 16x16 reference
                // search; a second covers the partition trials below.
                let me_zone = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
                let median = median_pred(&ctx.qfield, mbx, mby);
                // 16x16 search over the reference list.
                let block16 = BlockRef {
                    plane: cur.y(),
                    x: mbx * 16,
                    y: mby * 16,
                    w: 16,
                    h: 16,
                };
                let mut best16: Option<(usize, Mv, u32)> = None;
                for (ri, r) in self.refs.iter().take(nrefs).enumerate() {
                    let params = SearchParams::new(self.config.search_range, self.lambda)
                        .with_pred(Mv::new(median.x >> 2, median.y >> 2));
                    let fp = hexagon_search(
                        &self.dsp,
                        block16,
                        &r.y,
                        Mv::new(median.x >> 2, median.y >> 2),
                        &params,
                    );
                    let (qmv, qcost) =
                        self.refine_qpel_satd(cur, r, mbx * 16, mby * 16, 16, 16, fp.mv, median);
                    let ref_bits = 2 * (32 - (ri as u32 + 1).leading_zeros()) - 1;
                    let total = qcost + self.lambda * ref_bits;
                    if best16.is_none_or(|(_, _, c)| total < c) {
                        best16 = Some((ri, qmv, total));
                    }
                }
                let (ref_idx, mv16, cost16) =
                    best16.expect("P picture requires at least one reference");
                let rp = &self.refs[ref_idx];
                drop(me_zone);

                // Skip test: 16x16, reference 0, motion equal to the
                // median predictor, empty residual.
                if ref_idx == 0 && mv16 == median {
                    let (py, pcb, pcr) =
                        self.build_inter_pred(rp, mbx, mby, Partitioning::P16x16, &[mv16; 4]);
                    let (lb, lf) =
                        transform_luma_mb(&self.dsp, self.config.qp, false, cur.y(), mbx, mby, &py);
                    let (cbb, cbf) = transform_chroma_plane(
                        &self.dsp,
                        self.config.qp,
                        false,
                        cur.cb(),
                        mbx,
                        mby,
                        &pcb,
                    );
                    let (crb, crf) = transform_chroma_plane(
                        &self.dsp,
                        self.config.qp,
                        false,
                        cur.cr(),
                        mbx,
                        mby,
                        &pcr,
                    );
                    if lf == 0 && cbf == 0 && crf == 0 {
                        w.put_bit(true);
                        recon_luma_mb(
                            &self.dsp,
                            self.config.qp,
                            recon.y_mut(),
                            mbx,
                            mby,
                            &py,
                            &lb,
                            0,
                        );
                        recon_chroma_plane(
                            &self.dsp,
                            self.config.qp,
                            recon.cb_mut(),
                            mbx,
                            mby,
                            &pcb,
                            &cbb,
                            0,
                        );
                        recon_chroma_plane(
                            &self.dsp,
                            self.config.qp,
                            recon.cr_mut(),
                            mbx,
                            mby,
                            &pcr,
                            &crb,
                            0,
                        );
                        ctx.qfield.set(mbx, mby, median);
                        ctx.clear_mb_modes(mbx, mby);
                        continue;
                    }
                }

                // Partition trials on the chosen reference.
                let me_zone = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
                let mut best_part = (Partitioning::P16x16, [mv16; 4], cost16 + self.lambda);
                for part in [Partitioning::P16x8, Partitioning::P8x16, Partitioning::P8x8] {
                    let mut mvs = [Mv::ZERO; 4];
                    let mut total = self.lambda * (2 * part.index() + 1); // type bits
                    for (pi, &(ox, oy, pw, ph)) in part.rects().iter().enumerate() {
                        let pred_mv = if pi == 0 { median } else { mvs[pi - 1] };
                        let sub = BlockRef {
                            plane: cur.y(),
                            x: mbx * 16 + ox,
                            y: mby * 16 + oy,
                            w: pw,
                            h: ph,
                        };
                        let params = SearchParams::new(self.config.search_range, self.lambda)
                            .with_pred(Mv::new(pred_mv.x >> 2, pred_mv.y >> 2));
                        let fp = hexagon_search(
                            &self.dsp,
                            sub,
                            &rp.y,
                            Mv::new(mv16.x >> 2, mv16.y >> 2),
                            &params,
                        );
                        let (qmv, qcost) = self.refine_qpel_satd(
                            cur,
                            rp,
                            mbx * 16 + ox,
                            mby * 16 + oy,
                            pw,
                            ph,
                            fp.mv,
                            pred_mv,
                        );
                        mvs[pi] = qmv;
                        total = total.saturating_add(qcost);
                    }
                    if total < best_part.2 {
                        best_part = (part, mvs, total);
                    }
                }
                let (part, mvs, inter_cost) = best_part;

                // Intra alternatives.
                let (c16, mode16) = self.intra16_cost(cur, recon, mbx, mby);
                let c4 = self.intra4_cost_estimate(cur, ctx, mbx, mby);
                drop(me_zone);
                w.put_bit(false); // not skipped
                if c4 < inter_cost && c4 <= c16 {
                    w.put_ue(4);
                    self.code_intra4x4_mb(w, cur, recon, ctx, mbx, mby);
                    ctx.qfield.set(mbx, mby, Mv::ZERO);
                    continue;
                }
                if c16 < inter_cost {
                    w.put_ue(5);
                    self.code_intra16_mb(w, cur, recon, ctx, mbx, mby, mode16);
                    ctx.qfield.set(mbx, mby, Mv::ZERO);
                    continue;
                }

                // Inter macroblock.
                {
                    let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
                    w.put_ue(part.index());
                    if self.config.num_refs > 1 {
                        w.put_ue(ref_idx as u32);
                    }
                    let mut pred_mv = median;
                    for (pi, &(_, _, _, _)) in part.rects().iter().enumerate() {
                        w.put_se(i32::from(mvs[pi].x - pred_mv.x));
                        w.put_se(i32::from(mvs[pi].y - pred_mv.y));
                        pred_mv = mvs[pi];
                    }
                }
                let (py, pcb, pcr) = self.build_inter_pred(rp, mbx, mby, part, &mvs);
                let (lb, lf) =
                    transform_luma_mb(&self.dsp, self.config.qp, false, cur.y(), mbx, mby, &py);
                let (cbb, cbf) = transform_chroma_plane(
                    &self.dsp,
                    self.config.qp,
                    false,
                    cur.cb(),
                    mbx,
                    mby,
                    &pcb,
                );
                let (crb, crf) = transform_chroma_plane(
                    &self.dsp,
                    self.config.qp,
                    false,
                    cur.cr(),
                    mbx,
                    mby,
                    &pcr,
                );
                write_luma_residual(w, &lb, lf);
                write_chroma_residual(w, &cbb, cbf);
                write_chroma_residual(w, &crb, crf);
                recon_luma_mb(
                    &self.dsp,
                    self.config.qp,
                    recon.y_mut(),
                    mbx,
                    mby,
                    &py,
                    &lb,
                    lf,
                );
                recon_chroma_plane(
                    &self.dsp,
                    self.config.qp,
                    recon.cb_mut(),
                    mbx,
                    mby,
                    &pcb,
                    &cbb,
                    cbf,
                );
                recon_chroma_plane(
                    &self.dsp,
                    self.config.qp,
                    recon.cr_mut(),
                    mbx,
                    mby,
                    &pcr,
                    &crb,
                    crf,
                );
                ctx.qfield.set(mbx, mby, mvs[0]);
                ctx.clear_mb_modes(mbx, mby);
            }
            w.byte_align();
        }
    }

    /// Builds the full inter prediction buffers for a partitioned MB.
    pub(crate) fn build_inter_pred(
        &self,
        r: &RefPicture,
        mbx: usize,
        mby: usize,
        part: Partitioning,
        mvs: &[Mv; 4],
    ) -> ([u8; 256], [u8; 64], [u8; 64]) {
        let (mut py, mut pcb, mut pcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
        let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
        for (pi, &(ox, oy, pw, ph)) in part.rects().iter().enumerate() {
            predict_partition(
                &self.dsp,
                r,
                mbx * 16 + ox,
                mby * 16 + oy,
                ox,
                oy,
                pw,
                ph,
                mvs[pi],
                &mut py,
                &mut pcb,
                &mut pcr,
            );
        }
        (py, pcb, pcr)
    }

    fn encode_b(&self, w: &mut BitWriter, cur: &Frame, recon: &mut Frame, ctx: &mut PicCtx) {
        // Coding order guarantees: refs[0] = future anchor (backward),
        // refs[1] = past anchor (forward).
        let bwd = &self.refs[0];
        let fwd = &self.refs[1];
        for mby in 0..self.mbs_y {
            let mut row = BState::new();
            for mbx in 0..self.mbs_x {
                // Both directions' searches, the bi-prediction trial and
                // the mode decision are one motion-estimation zone.
                let me_zone = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
                let block16 = BlockRef {
                    plane: cur.y(),
                    x: mbx * 16,
                    y: mby * 16,
                    w: 16,
                    h: 16,
                };
                let pf = SearchParams::new(self.config.search_range, self.lambda)
                    .with_pred(Mv::new(row.mv_pred.x >> 2, row.mv_pred.y >> 2));
                let f = hexagon_search(
                    &self.dsp,
                    block16,
                    &fwd.y,
                    Mv::new(row.mv_pred.x >> 2, row.mv_pred.y >> 2),
                    &pf,
                );
                let pb = SearchParams::new(self.config.search_range, self.lambda)
                    .with_pred(Mv::new(row.mv_pred_bwd.x >> 2, row.mv_pred_bwd.y >> 2));
                let b = hexagon_search(
                    &self.dsp,
                    block16,
                    &bwd.y,
                    Mv::new(row.mv_pred_bwd.x >> 2, row.mv_pred_bwd.y >> 2),
                    &pb,
                );
                let (mv_f, cost_f) =
                    self.refine_qpel_satd(cur, fwd, mbx * 16, mby * 16, 16, 16, f.mv, row.mv_pred);
                let (mv_b, cost_b) = self.refine_qpel_satd(
                    cur,
                    bwd,
                    mbx * 16,
                    mby * 16,
                    16,
                    16,
                    b.mv,
                    row.mv_pred_bwd,
                );

                let (fy, _, _) =
                    self.build_inter_pred(fwd, mbx, mby, Partitioning::P16x16, &[mv_f; 4]);
                let (by_, _, _) =
                    self.build_inter_pred(bwd, mbx, mby, Partitioning::P16x16, &[mv_b; 4]);
                let mut bi = [0u8; 256];
                self.dsp.avg_block(&mut bi, 16, &fy, 16, &by_, 16, 16, 16);
                let src = &cur.y().data()[mby * 16 * self.aw + mbx * 16..];
                let bi_cost = self.dsp.satd(src, self.aw, &bi, 16, 16, 16)
                    + self.lambda * (mv_bits(mv_f, row.mv_pred) + mv_bits(mv_b, row.mv_pred_bwd));

                let (c16, mode16) = self.intra16_cost(cur, recon, mbx, mby);
                let c4 = self.intra4_cost_estimate(cur, ctx, mbx, mby);
                let (mode, best_cost) = [cost_f, cost_b, bi_cost]
                    .iter()
                    .copied()
                    .enumerate()
                    .min_by_key(|&(_, c)| c)
                    .map(|(i, c)| (i as u8, c))
                    .unwrap_or((0, u32::MAX));
                drop(me_zone);

                if c4.min(c16) < best_cost {
                    w.put_bit(false);
                    if c4 < c16 {
                        w.put_ue(3);
                        self.code_intra4x4_mb(w, cur, recon, ctx, mbx, mby);
                    } else {
                        w.put_ue(4);
                        self.code_intra16_mb(w, cur, recon, ctx, mbx, mby, mode16);
                    }
                    row.reset_mv();
                    continue;
                }

                let (py, pcb, pcr) = self.build_b_pred(fwd, bwd, mbx, mby, mode, mv_f, mv_b);
                let (lb, lf) =
                    transform_luma_mb(&self.dsp, self.config.qp, false, cur.y(), mbx, mby, &py);
                let (cbb, cbf) = transform_chroma_plane(
                    &self.dsp,
                    self.config.qp,
                    false,
                    cur.cb(),
                    mbx,
                    mby,
                    &pcb,
                );
                let (crb, crf) = transform_chroma_plane(
                    &self.dsp,
                    self.config.qp,
                    false,
                    cur.cr(),
                    mbx,
                    mby,
                    &pcr,
                );

                let same_as_last = (mode, mv_f, mv_b) == row.last_b
                    || (mode == 0 && row.last_b.0 == 0 && mv_f == row.last_b.1)
                    || (mode == 1 && row.last_b.0 == 1 && mv_b == row.last_b.2);
                if lf == 0 && cbf == 0 && crf == 0 && same_as_last {
                    w.put_bit(true);
                    recon_luma_mb(
                        &self.dsp,
                        self.config.qp,
                        recon.y_mut(),
                        mbx,
                        mby,
                        &py,
                        &lb,
                        0,
                    );
                    recon_chroma_plane(
                        &self.dsp,
                        self.config.qp,
                        recon.cb_mut(),
                        mbx,
                        mby,
                        &pcb,
                        &cbb,
                        0,
                    );
                    recon_chroma_plane(
                        &self.dsp,
                        self.config.qp,
                        recon.cr_mut(),
                        mbx,
                        mby,
                        &pcr,
                        &crb,
                        0,
                    );
                    ctx.clear_mb_modes(mbx, mby);
                    continue;
                }
                {
                    let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
                    w.put_bit(false);
                    w.put_ue(u32::from(mode));
                    if mode == 0 || mode == 2 {
                        w.put_se(i32::from(mv_f.x - row.mv_pred.x));
                        w.put_se(i32::from(mv_f.y - row.mv_pred.y));
                        row.mv_pred = mv_f;
                    }
                    if mode == 1 || mode == 2 {
                        w.put_se(i32::from(mv_b.x - row.mv_pred_bwd.x));
                        w.put_se(i32::from(mv_b.y - row.mv_pred_bwd.y));
                        row.mv_pred_bwd = mv_b;
                    }
                    row.last_b = (mode, mv_f, mv_b);
                }
                write_luma_residual(w, &lb, lf);
                write_chroma_residual(w, &cbb, cbf);
                write_chroma_residual(w, &crb, crf);
                recon_luma_mb(
                    &self.dsp,
                    self.config.qp,
                    recon.y_mut(),
                    mbx,
                    mby,
                    &py,
                    &lb,
                    lf,
                );
                recon_chroma_plane(
                    &self.dsp,
                    self.config.qp,
                    recon.cb_mut(),
                    mbx,
                    mby,
                    &pcb,
                    &cbb,
                    cbf,
                );
                recon_chroma_plane(
                    &self.dsp,
                    self.config.qp,
                    recon.cr_mut(),
                    mbx,
                    mby,
                    &pcr,
                    &crb,
                    crf,
                );
                ctx.clear_mb_modes(mbx, mby);
            }
            w.byte_align();
        }
    }

    /// Builds a B prediction (16×16: forward, backward or bi).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build_b_pred(
        &self,
        fwd: &RefPicture,
        bwd: &RefPicture,
        mbx: usize,
        mby: usize,
        mode: u8,
        mv_f: Mv,
        mv_b: Mv,
    ) -> ([u8; 256], [u8; 64], [u8; 64]) {
        let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
        match mode {
            0 => self.build_inter_pred(fwd, mbx, mby, Partitioning::P16x16, &[mv_f; 4]),
            1 => self.build_inter_pred(bwd, mbx, mby, Partitioning::P16x16, &[mv_b; 4]),
            _ => {
                let (fy, fcb, fcr) =
                    self.build_inter_pred(fwd, mbx, mby, Partitioning::P16x16, &[mv_f; 4]);
                let (by_, bcb, bcr) =
                    self.build_inter_pred(bwd, mbx, mby, Partitioning::P16x16, &[mv_b; 4]);
                let (mut py, mut pcb, mut pcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
                self.dsp.avg_block(&mut py, 16, &fy, 16, &by_, 16, 16, 16);
                self.dsp.avg_block(&mut pcb, 8, &fcb, 8, &bcb, 8, 8, 8);
                self.dsp.avg_block(&mut pcr, 8, &fcr, 8, &bcr, 8, 8, 8);
                (py, pcb, pcr)
            }
        }
    }
}

/// Writes a 4×4 intra mode with most-probable-mode prediction.
pub(crate) fn write_intra4_mode(w: &mut BitWriter, mode: Intra4Mode, mpm: u8) {
    if mode.index() == u32::from(mpm) {
        w.put_bit(true);
    } else {
        w.put_bit(false);
        // Index among the remaining 4 modes (ascending, skipping mpm).
        let mut idx = mode.index();
        if idx > u32::from(mpm) {
            idx -= 1;
        }
        w.put_bits(idx, 2);
    }
}

/// B-picture row state (mirrored by the decoder).
pub(crate) struct BState {
    pub mv_pred: Mv,
    pub mv_pred_bwd: Mv,
    pub last_b: (u8, Mv, Mv),
}

impl BState {
    pub(crate) fn new() -> Self {
        BState {
            mv_pred: Mv::ZERO,
            mv_pred_bwd: Mv::ZERO,
            last_b: (0, Mv::ZERO, Mv::ZERO),
        }
    }

    pub(crate) fn reset_mv(&mut self) {
        self.mv_pred = Mv::ZERO;
        self.mv_pred_bwd = Mv::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdvb_dsp::SimdLevel;

    fn textured_frame(w: usize, h: usize, phase: f64) -> Frame {
        let mut f = Frame::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let v = 128.0
                    + 55.0 * ((x as f64 + phase) * 0.2 + y as f64 * 0.1).sin()
                    + 40.0 * (y as f64 * 0.15 - (x as f64 + phase) * 0.05).cos();
                f.y_mut().set(x, y, v.clamp(0.0, 255.0) as u8);
            }
        }
        for y in 0..h / 2 {
            for x in 0..w / 2 {
                f.cb_mut().set(x, y, 120 + ((x + y) % 16) as u8);
                f.cr_mut().set(x, y, 130 - ((x * 2 + y) % 16) as u8);
            }
        }
        f
    }

    #[test]
    fn gop_pattern_matches_paper() {
        let mut enc = H264Encoder::new(EncoderConfig::new(64, 48)).unwrap();
        let mut all = Vec::new();
        for i in 0..7 {
            all.extend(enc.encode(&textured_frame(64, 48, i as f64)).unwrap());
        }
        all.extend(enc.flush().unwrap());
        let types: Vec<FrameType> = all.iter().map(|p| p.frame_type).collect();
        assert_eq!(
            types,
            vec![
                FrameType::I,
                FrameType::P,
                FrameType::B,
                FrameType::B,
                FrameType::P,
                FrameType::B,
                FrameType::B
            ]
        );
    }

    #[test]
    fn higher_qp_fewer_bits() {
        let frame = textured_frame(64, 48, 0.0);
        let bits = |qp: u8| {
            let mut enc = H264Encoder::new(EncoderConfig::new(64, 48).with_qp(qp)).unwrap();
            enc.encode(&frame).unwrap()[0].bits()
        };
        assert!(bits(40) < bits(15));
    }

    #[test]
    fn scalar_and_simd_streams_identical() {
        let mut a =
            H264Encoder::new(EncoderConfig::new(64, 48).with_simd(SimdLevel::Scalar)).unwrap();
        let mut b =
            H264Encoder::new(EncoderConfig::new(64, 48).with_simd(SimdLevel::Sse2)).unwrap();
        for i in 0..5 {
            let f = textured_frame(64, 48, i as f64 * 1.1);
            assert_eq!(a.encode(&f).unwrap(), b.encode(&f).unwrap(), "frame {i}");
        }
        assert_eq!(a.flush().unwrap(), b.flush().unwrap());
    }

    #[test]
    fn intra4_mode_coding_layout() {
        let mut w = BitWriter::new();
        write_intra4_mode(&mut w, Intra4Mode::Dc, 2); // mpm hit: 1 bit
        assert_eq!(w.bit_len(), 1);
        let mut w = BitWriter::new();
        write_intra4_mode(&mut w, Intra4Mode::Vertical, 2); // miss: 3 bits
        assert_eq!(w.bit_len(), 3);
    }
}
