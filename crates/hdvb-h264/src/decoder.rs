use crate::blocks4::read_coeffs4;
use crate::deblock::deblock_frame;
use crate::encoder::{median_pred, BState, PicCtx, MAGIC};
use crate::intra::{predict16, predict4, predict_chroma8, ChromaMode, Intra16Mode, Intra4Mode};
use crate::mc::{add4, copy4, Partitioning, RefPicture};
use crate::quant4::dequant4;
use crate::resid::{read_chroma_residual, read_luma_residual, recon_chroma_plane, recon_luma_mb};
use crate::types::{CodecError, FrameType, MAX_DECODE_PIXELS};
use hdvb_bits::{BitReader, CorruptKind};
use hdvb_dsp::{Dsp, SimdLevel};
use hdvb_frame::{align_up, Frame, FramePool};
use hdvb_me::Mv;
use hdvb_par::CancelToken;
use std::collections::VecDeque;

/// Per-packet working storage, reused while the coded geometry stays
/// the same so steady-state decoding performs no heap allocation.
struct DecScratch {
    recon: Frame,
    ctx: PicCtx,
}

/// The H.264-class decoder (mirror of [`H264Encoder`](crate::H264Encoder)).
pub struct H264Decoder {
    dsp: Dsp,
    refs: VecDeque<RefPicture>,
    /// Retired references kept for recycling (padded-plane storage is
    /// refilled in place instead of reallocated).
    retired: Vec<RefPicture>,
    /// Spare list backing the borrow-decoupling move in P/B decoding,
    /// kept as a field so the move is allocation-free.
    refs_buf: Vec<RefPicture>,
    pending: Option<Frame>,
    /// Reusable per-packet working storage.
    scratch: Option<DecScratch>,
    /// Cooperative cancellation, checkpointed at each packet boundary.
    cancel: CancelToken,
}

impl Default for H264Decoder {
    fn default() -> Self {
        Self::new()
    }
}

impl H264Decoder {
    /// Creates a decoder at the CPU's best SIMD level.
    pub fn new() -> Self {
        Self::with_simd(SimdLevel::detect())
    }

    /// Creates a decoder at an explicit SIMD level (the Figure-1 axis).
    pub fn with_simd(simd: SimdLevel) -> Self {
        H264Decoder {
            dsp: Dsp::new(simd),
            refs: VecDeque::new(),
            retired: Vec::new(),
            refs_buf: Vec::new(),
            pending: None,
            scratch: None,
            cancel: CancelToken::never(),
        }
    }

    /// Installs a cancellation token checked at each packet boundary,
    /// so a deadline or shutdown stops the decoder before the next
    /// packet with [`CodecError::Cancelled`].
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Decodes one packet; returns display-order frames.
    ///
    /// # Errors
    ///
    /// [`CodecError::Corrupt`] on malformed input, carrying the bit
    /// offset the parse stopped at and a [`CorruptKind`] classification.
    /// A failed packet leaves the decoder's reference state untouched.
    pub fn decode(&mut self, data: &[u8]) -> Result<Vec<Frame>, CodecError> {
        let mut out = Vec::new();
        self.decode_into(data, &mut out)?;
        Ok(out)
    }

    /// Allocation-free form of [`decode`](Self::decode): appends
    /// display-order frames to `out`. Output frames come from the
    /// global [`FramePool`]; return them with `FramePool::global().put`
    /// to make steady-state decoding allocation-free.
    ///
    /// # Errors
    ///
    /// Same contract as [`decode`](Self::decode); on error nothing is
    /// appended to `out`.
    pub fn decode_into(&mut self, data: &[u8], out: &mut Vec<Frame>) -> Result<(), CodecError> {
        if self.cancel.is_cancelled() {
            return Err(CodecError::Cancelled);
        }
        let mut r = BitReader::new(data);
        let result = self.decode_inner(&mut r, out);
        let pos = r.bit_pos();
        result.map_err(|e| e.at_bit(pos))
    }

    fn decode_inner(
        &mut self,
        r: &mut BitReader<'_>,
        out: &mut Vec<Frame>,
    ) -> Result<(), CodecError> {
        if r.get_bits(16)? != MAGIC {
            return Err(CodecError::corrupt(
                CorruptKind::BadMagic,
                "bad picture magic",
            ));
        }
        let frame_type = FrameType::from_bits(r.get_bits(2)?)
            .ok_or_else(|| CodecError::corrupt(CorruptKind::BadHeaderField, "bad frame type"))?;
        let _display = r.get_bits(32)?;
        let width = r.get_ue()? as usize;
        let height = r.get_ue()? as usize;
        let qp = r.get_ue()?;
        let num_refs = r.get_ue()?;
        let deblock = r.get_bit()?;
        if width < 16
            || height < 16
            || width > 16384
            || height > 16384
            || !width.is_multiple_of(2)
            || !height.is_multiple_of(2)
            || width.saturating_mul(height) > MAX_DECODE_PIXELS
        {
            return Err(CodecError::corrupt(
                CorruptKind::BadDimensions,
                format!("implausible dimensions {width}x{height}"),
            ));
        }
        if qp > 51 {
            return Err(CodecError::corrupt(
                CorruptKind::BadHeaderField,
                "qp out of range",
            ));
        }
        if !(1..=4).contains(&num_refs) {
            return Err(CodecError::corrupt(
                CorruptKind::BadHeaderField,
                "num_refs out of range",
            ));
        }
        let qp = qp as u8;
        let aw = align_up(width, 16);
        let ah = align_up(height, 16);
        let (mbs_x, mbs_y) = (aw / 16, ah / 16);

        let mut scratch = match self.scratch.take() {
            Some(s) if s.recon.width() == aw && s.recon.height() == ah => s,
            other => {
                let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
                if let Some(s) = other {
                    FramePool::global().put(s.recon);
                }
                DecScratch {
                    recon: FramePool::global().take(aw, ah),
                    ctx: PicCtx::new(mbs_x, mbs_y),
                }
            }
        };
        let result = self.decode_picture(
            r,
            frame_type,
            qp,
            num_refs,
            deblock,
            width,
            height,
            &mut scratch,
            out,
        );
        self.scratch = Some(scratch);
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn decode_picture(
        &mut self,
        r: &mut BitReader<'_>,
        frame_type: FrameType,
        qp: u8,
        num_refs: u32,
        deblock: bool,
        width: usize,
        height: usize,
        scratch: &mut DecScratch,
        out: &mut Vec<Frame>,
    ) -> Result<(), CodecError> {
        let DecScratch { recon, ctx } = scratch;
        let aw = recon.width();
        let ah = recon.height();
        let (mbs_x, mbs_y) = (aw / 16, ah / 16);
        // The reconstruction MUST start each picture at the mid-grey
        // (128) state a fresh `Frame::new` has: intra prediction reads
        // top-right neighbour positions that raster order has not
        // reconstructed yet, and the encoder's closed loop pins those
        // samples to its own freshly initialised reconstruction. A
        // dirty pooled frame here would silently desynchronise decode
        // from the encoder.
        recon.y_mut().fill(128);
        recon.cb_mut().fill(128);
        recon.cr_mut().fill(128);
        ctx.reset();
        if frame_type == FrameType::I {
            // A geometry change can only enter a stream at an intra
            // picture (an ABR splice / rung switch). References at the
            // old geometry can never be legally used again — retire
            // them now instead of failing the next inter picture's
            // reference-geometry check.
            while let Some(pos) = self.refs.iter().position(|rp| !rp.matches(aw, ah)) {
                if let Some(old) = self.refs.remove(pos) {
                    self.retired.push(old);
                }
            }
        }
        match frame_type {
            FrameType::I => self.decode_i(r, recon, ctx, qp, mbs_x, mbs_y)?,
            FrameType::P => self.decode_p(r, recon, ctx, qp, num_refs, mbs_x, mbs_y)?,
            FrameType::B => self.decode_b(r, recon, ctx, qp, mbs_x, mbs_y)?,
        }
        if deblock {
            deblock_frame(&self.dsp, recon, qp);
        }

        let display = {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
            let mut d = FramePool::global().take(width, height);
            d.crop_from(recon);
            d
        };
        if frame_type == FrameType::B {
            out.push(display);
        } else {
            if let Some(prev) = self.pending.take() {
                out.push(prev);
            }
            self.pending = Some(display);
            let keep = (num_refs as usize).max(2);
            while self.refs.len() + 1 > keep {
                match self.refs.pop_back() {
                    Some(old) => self.retired.push(old),
                    None => break,
                }
            }
            let new_ref = match self.retired.pop() {
                Some(mut rp) if rp.matches(aw, ah) => {
                    rp.refill_from(recon);
                    rp
                }
                _ => RefPicture::from_frame(recon),
            };
            self.refs.push_front(new_ref);
        }
        Ok(())
    }

    /// Returns the final buffered anchor at end of stream.
    pub fn flush(&mut self) -> Vec<Frame> {
        let mut out = Vec::new();
        self.flush_into(&mut out);
        out
    }

    /// Allocation-free form of [`flush`](Self::flush).
    pub fn flush_into(&mut self, out: &mut Vec<Frame>) {
        if let Some(prev) = self.pending.take() {
            out.push(prev);
        }
    }

    fn decode_i(
        &mut self,
        r: &mut BitReader<'_>,
        recon: &mut Frame,
        ctx: &mut PicCtx,
        qp: u8,
        mbs_x: usize,
        mbs_y: usize,
    ) -> Result<(), CodecError> {
        for mby in 0..mbs_y {
            for mbx in 0..mbs_x {
                match r.get_ue()? {
                    0 => self.decode_intra4x4_mb(r, recon, ctx, qp, mbx, mby)?,
                    1 => self.decode_intra16_mb(r, recon, ctx, qp, mbx, mby)?,
                    t => {
                        return Err(CodecError::corrupt(
                            CorruptKind::BadMacroblockType,
                            format!("bad I macroblock type {t}"),
                        ))
                    }
                }
            }
            r.byte_align();
        }
        Ok(())
    }

    fn decode_intra4x4_mb(
        &mut self,
        r: &mut BitReader<'_>,
        recon: &mut Frame,
        ctx: &mut PicCtx,
        qp: u8,
        mbx: usize,
        mby: usize,
    ) -> Result<(), CodecError> {
        for k in 0..16 {
            let gx = mbx * 4 + k % 4;
            let gy = mby * 4 + k / 4;
            let bx = mbx * 16 + (k % 4) * 4;
            let by = mby * 16 + (k / 4) * 4;
            let mpm = ctx.most_probable(gx, gy);
            let mode = read_intra4_mode(r, mpm)?;
            ctx.set_mode(gx, gy, mode.index() as u8);
            let mut pred = [0u8; 16];
            {
                let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
                predict4(recon.y(), bx, by, mode, &mut pred);
            }
            let stride = recon.y().stride();
            let off = by * stride + bx;
            if r.get_bit()? {
                let mut block = [0i16; 16];
                read_coeffs4(r, &mut block)?;
                let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
                dequant4(&mut block, qp);
                self.dsp.icore4(&mut block);
                add4(
                    &mut recon.y_mut().data_mut()[off..],
                    stride,
                    &pred,
                    4,
                    &block,
                );
            } else {
                let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
                copy4(&mut recon.y_mut().data_mut()[off..], stride, &pred, 4);
            }
        }
        self.decode_intra_chroma(r, recon, qp, mbx, mby)
    }

    fn decode_intra16_mb(
        &mut self,
        r: &mut BitReader<'_>,
        recon: &mut Frame,
        ctx: &mut PicCtx,
        qp: u8,
        mbx: usize,
        mby: usize,
    ) -> Result<(), CodecError> {
        let mode = Intra16Mode::from_index(r.get_ue()?).ok_or_else(|| {
            CodecError::corrupt(CorruptKind::BadMacroblockType, "bad intra16 mode")
        })?;
        ctx.clear_mb_modes(mbx, mby);
        let mut pred = [0u8; 256];
        {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
            predict16(recon.y(), mbx * 16, mby * 16, mode, &mut pred);
        }
        let (blocks, flags) = read_luma_residual(r)?;
        recon_luma_mb(
            &self.dsp,
            qp,
            recon.y_mut(),
            mbx,
            mby,
            &pred,
            &blocks,
            flags,
        );
        self.decode_intra_chroma(r, recon, qp, mbx, mby)
    }

    fn decode_intra_chroma(
        &mut self,
        r: &mut BitReader<'_>,
        recon: &mut Frame,
        qp: u8,
        mbx: usize,
        mby: usize,
    ) -> Result<(), CodecError> {
        let mode = ChromaMode::from_index(r.get_ue()?).ok_or_else(|| {
            CodecError::corrupt(CorruptKind::BadMacroblockType, "bad chroma mode")
        })?;
        let mut pb = [0u8; 64];
        let mut pr = [0u8; 64];
        {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
            predict_chroma8(recon.cb(), mbx * 8, mby * 8, mode, &mut pb);
            predict_chroma8(recon.cr(), mbx * 8, mby * 8, mode, &mut pr);
        }
        let (bb, fb) = read_chroma_residual(r)?;
        let (br, fr) = read_chroma_residual(r)?;
        recon_chroma_plane(&self.dsp, qp, recon.cb_mut(), mbx, mby, &pb, &bb, fb);
        recon_chroma_plane(&self.dsp, qp, recon.cr_mut(), mbx, mby, &pr, &br, fr);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn decode_p(
        &mut self,
        r: &mut BitReader<'_>,
        recon: &mut Frame,
        ctx: &mut PicCtx,
        qp: u8,
        num_refs: u32,
        mbs_x: usize,
        mbs_y: usize,
    ) -> Result<(), CodecError> {
        if self.refs.is_empty() {
            return Err(CodecError::corrupt(
                CorruptKind::MissingReference,
                "P picture without reference",
            ));
        }
        // Move references out to decouple borrows (via the spare list,
        // so the move performs no allocation at steady state).
        let mut refs = std::mem::take(&mut self.refs_buf);
        refs.extend(self.refs.drain(..));
        let result = (|| -> Result<(), CodecError> {
            check_ref_geometry(&refs, mbs_x, mbs_y)?;
            for mby in 0..mbs_y {
                for mbx in 0..mbs_x {
                    let median = median_pred(&ctx.qfield, mbx, mby);
                    if r.get_bit()? {
                        // Skip: 16x16, ref 0, median vector, no residual.
                        check_window(&refs[0], mbx, mby, Partitioning::P16x16, &[median; 4])?;
                        let (py, pcb, pcr) = build_inter_pred_dec(
                            &self.dsp,
                            &refs[0],
                            mbx,
                            mby,
                            Partitioning::P16x16,
                            &[median; 4],
                        );
                        recon_luma_mb(
                            &self.dsp,
                            qp,
                            recon.y_mut(),
                            mbx,
                            mby,
                            &py,
                            &[[0i16; 16]; 16],
                            0,
                        );
                        recon_chroma_plane(
                            &self.dsp,
                            qp,
                            recon.cb_mut(),
                            mbx,
                            mby,
                            &pcb,
                            &[[0i16; 16]; 4],
                            0,
                        );
                        recon_chroma_plane(
                            &self.dsp,
                            qp,
                            recon.cr_mut(),
                            mbx,
                            mby,
                            &pcr,
                            &[[0i16; 16]; 4],
                            0,
                        );
                        ctx.qfield.set(mbx, mby, median);
                        ctx.clear_mb_modes(mbx, mby);
                        continue;
                    }
                    let mb_type = r.get_ue()?;
                    match mb_type {
                        4 => {
                            self.decode_intra4x4_mb(r, recon, ctx, qp, mbx, mby)?;
                            ctx.qfield.set(mbx, mby, Mv::ZERO);
                        }
                        5 => {
                            self.decode_intra16_mb(r, recon, ctx, qp, mbx, mby)?;
                            ctx.qfield.set(mbx, mby, Mv::ZERO);
                        }
                        t @ 0..=3 => {
                            let part = Partitioning::from_index(t)
                                .expect("index 0..=3 is a valid partitioning");
                            let ref_idx = if num_refs > 1 {
                                r.get_ue()? as usize
                            } else {
                                0
                            };
                            let rp = refs.get(ref_idx).ok_or_else(|| {
                                CodecError::corrupt(
                                    CorruptKind::MissingReference,
                                    format!("reference index {ref_idx} out of range"),
                                )
                            })?;
                            let mut mvs = [Mv::ZERO; 4];
                            let mut pred_mv = median;
                            #[allow(clippy::needless_range_loop)]
                            for pi in 0..part.rects().len() {
                                let mv = Mv::new(
                                    read_mv_component(r, pred_mv.x)?,
                                    read_mv_component(r, pred_mv.y)?,
                                );
                                mvs[pi] = mv;
                                pred_mv = mv;
                            }
                            check_window(rp, mbx, mby, part, &mvs)?;
                            let (py, pcb, pcr) =
                                build_inter_pred_dec(&self.dsp, rp, mbx, mby, part, &mvs);
                            let (lb, lf) = read_luma_residual(r)?;
                            let (cbb, cbf) = read_chroma_residual(r)?;
                            let (crb, crf) = read_chroma_residual(r)?;
                            recon_luma_mb(&self.dsp, qp, recon.y_mut(), mbx, mby, &py, &lb, lf);
                            recon_chroma_plane(
                                &self.dsp,
                                qp,
                                recon.cb_mut(),
                                mbx,
                                mby,
                                &pcb,
                                &cbb,
                                cbf,
                            );
                            recon_chroma_plane(
                                &self.dsp,
                                qp,
                                recon.cr_mut(),
                                mbx,
                                mby,
                                &pcr,
                                &crb,
                                crf,
                            );
                            ctx.qfield.set(mbx, mby, mvs[0]);
                            ctx.clear_mb_modes(mbx, mby);
                        }
                        t => {
                            return Err(CodecError::corrupt(
                                CorruptKind::BadMacroblockType,
                                format!("bad P macroblock type {t}"),
                            ))
                        }
                    }
                }
                r.byte_align();
            }
            Ok(())
        })();
        self.refs.extend(refs.drain(..));
        self.refs_buf = refs;
        result
    }

    fn decode_b(
        &mut self,
        r: &mut BitReader<'_>,
        recon: &mut Frame,
        ctx: &mut PicCtx,
        qp: u8,
        mbs_x: usize,
        mbs_y: usize,
    ) -> Result<(), CodecError> {
        if self.refs.len() < 2 {
            return Err(CodecError::corrupt(
                CorruptKind::MissingReference,
                "B picture without two anchors",
            ));
        }
        let mut refs = std::mem::take(&mut self.refs_buf);
        refs.extend(self.refs.drain(..));
        let result = (|| -> Result<(), CodecError> {
            check_ref_geometry(&refs, mbs_x, mbs_y)?;
            let bwd = &refs[0];
            let fwd = &refs[1];
            for mby in 0..mbs_y {
                let mut row = BState::new();
                for mbx in 0..mbs_x {
                    if r.get_bit()? {
                        let (mode, mv_f, mv_b) = row.last_b;
                        check_b_window(fwd, bwd, mbx, mby, mode, mv_f, mv_b)?;
                        let (py, pcb, pcr) =
                            build_b_pred_dec(&self.dsp, fwd, bwd, mbx, mby, mode, mv_f, mv_b);
                        recon_luma_mb(
                            &self.dsp,
                            qp,
                            recon.y_mut(),
                            mbx,
                            mby,
                            &py,
                            &[[0i16; 16]; 16],
                            0,
                        );
                        recon_chroma_plane(
                            &self.dsp,
                            qp,
                            recon.cb_mut(),
                            mbx,
                            mby,
                            &pcb,
                            &[[0i16; 16]; 4],
                            0,
                        );
                        recon_chroma_plane(
                            &self.dsp,
                            qp,
                            recon.cr_mut(),
                            mbx,
                            mby,
                            &pcr,
                            &[[0i16; 16]; 4],
                            0,
                        );
                        ctx.clear_mb_modes(mbx, mby);
                        continue;
                    }
                    let mode = r.get_ue()?;
                    match mode {
                        3 => {
                            self.decode_intra4x4_mb(r, recon, ctx, qp, mbx, mby)?;
                            row.reset_mv();
                        }
                        4 => {
                            self.decode_intra16_mb(r, recon, ctx, qp, mbx, mby)?;
                            row.reset_mv();
                        }
                        m @ 0..=2 => {
                            let m = m as u8;
                            let mut mv_f = row.last_b.1;
                            let mut mv_b = row.last_b.2;
                            if m == 0 || m == 2 {
                                mv_f = Mv::new(
                                    read_mv_component(r, row.mv_pred.x)?,
                                    read_mv_component(r, row.mv_pred.y)?,
                                );
                                row.mv_pred = mv_f;
                            }
                            if m == 1 || m == 2 {
                                mv_b = Mv::new(
                                    read_mv_component(r, row.mv_pred_bwd.x)?,
                                    read_mv_component(r, row.mv_pred_bwd.y)?,
                                );
                                row.mv_pred_bwd = mv_b;
                            }
                            row.last_b = (m, mv_f, mv_b);
                            check_b_window(fwd, bwd, mbx, mby, m, mv_f, mv_b)?;
                            let (py, pcb, pcr) =
                                build_b_pred_dec(&self.dsp, fwd, bwd, mbx, mby, m, mv_f, mv_b);
                            let (lb, lf) = read_luma_residual(r)?;
                            let (cbb, cbf) = read_chroma_residual(r)?;
                            let (crb, crf) = read_chroma_residual(r)?;
                            recon_luma_mb(&self.dsp, qp, recon.y_mut(), mbx, mby, &py, &lb, lf);
                            recon_chroma_plane(
                                &self.dsp,
                                qp,
                                recon.cb_mut(),
                                mbx,
                                mby,
                                &pcb,
                                &cbb,
                                cbf,
                            );
                            recon_chroma_plane(
                                &self.dsp,
                                qp,
                                recon.cr_mut(),
                                mbx,
                                mby,
                                &pcr,
                                &crb,
                                crf,
                            );
                            ctx.clear_mb_modes(mbx, mby);
                        }
                        t => {
                            return Err(CodecError::corrupt(
                                CorruptKind::BadMacroblockType,
                                format!("bad B macroblock mode {t}"),
                            ))
                        }
                    }
                }
                r.byte_align();
            }
            Ok(())
        })();
        self.refs.extend(refs.drain(..));
        self.refs_buf = refs;
        result
    }
}

fn read_mv_component(r: &mut BitReader<'_>, pred: i16) -> Result<i16, CodecError> {
    let v = i32::from(pred) + r.get_se()?;
    if (-8192..=8191).contains(&v) {
        Ok(v as i16)
    } else {
        Err(CodecError::corrupt(
            CorruptKind::BadMotionVector,
            format!("motion vector component {v} out of range"),
        ))
    }
}

fn bad_mv(mbx: usize, mby: usize, mv: Mv) -> CodecError {
    CodecError::corrupt(
        CorruptKind::BadMotionVector,
        format!(
            "mv ({},{}) at mb ({mbx},{mby}) reads outside the padded reference",
            mv.x, mv.y
        ),
    )
}

/// Rejects inter pictures whose coded geometry disagrees with any
/// retained reference (a corrupt packet can otherwise drive motion
/// compensation beyond a smaller reference's planes).
fn check_ref_geometry(refs: &[RefPicture], mbs_x: usize, mbs_y: usize) -> Result<(), CodecError> {
    for rp in refs {
        if rp.y.width() != mbs_x * 16 || rp.y.height() != mbs_y * 16 {
            return Err(CodecError::corrupt(
                CorruptKind::MissingReference,
                format!(
                    "picture geometry {}x{} does not match reference {}x{}",
                    mbs_x * 16,
                    mbs_y * 16,
                    rp.y.width(),
                    rp.y.height()
                ),
            ));
        }
    }
    Ok(())
}

/// Validates the read windows of `predict_partition` for untrusted
/// vectors: a `w`×`h` quarter-pel luma fetch reads `(w+5)`×`(h+5)` worst
/// case, the derived chroma half-pel fetch `(w/2+1)`×`(h/2+1)`.
fn check_window(
    rp: &RefPicture,
    mbx: usize,
    mby: usize,
    part: Partitioning,
    mvs: &[Mv; 4],
) -> Result<(), CodecError> {
    for (pi, &(ox, oy, pw, ph)) in part.rects().iter().enumerate() {
        let mv = mvs[pi];
        let px = mbx * 16 + ox;
        let py = mby * 16 + oy;
        let ix = px as isize + isize::from(mv.x >> 2) - 2;
        let iy = py as isize + isize::from(mv.y >> 2) - 2;
        if !rp.y.window_in_bounds(ix, iy, pw + 5, ph + 5) {
            return Err(bad_mv(mbx, mby, mv));
        }
        let (cmx, cmy) = (mv.x >> 2, mv.y >> 2);
        let cx = (px / 2) as isize + isize::from(cmx >> 1);
        let cy = (py / 2) as isize + isize::from(cmy >> 1);
        if !rp.cb.window_in_bounds(cx, cy, pw / 2 + 1, ph / 2 + 1) {
            return Err(bad_mv(mbx, mby, mv));
        }
    }
    Ok(())
}

/// Window-checks the vectors a B macroblock will actually use: forward
/// for modes 0/2, backward for modes 1/2.
fn check_b_window(
    fwd: &RefPicture,
    bwd: &RefPicture,
    mbx: usize,
    mby: usize,
    mode: u8,
    mv_f: Mv,
    mv_b: Mv,
) -> Result<(), CodecError> {
    if mode == 0 || mode == 2 {
        check_window(fwd, mbx, mby, Partitioning::P16x16, &[mv_f; 4])?;
    }
    if mode == 1 || mode == 2 {
        check_window(bwd, mbx, mby, Partitioning::P16x16, &[mv_b; 4])?;
    }
    Ok(())
}

fn read_intra4_mode(r: &mut BitReader<'_>, mpm: u8) -> Result<Intra4Mode, CodecError> {
    if r.get_bit()? {
        Intra4Mode::from_index(u32::from(mpm)).ok_or_else(|| {
            CodecError::corrupt(CorruptKind::BadMacroblockType, "bad most-probable mode")
        })
    } else {
        let mut idx = r.get_bits(2)?;
        if idx >= u32::from(mpm) {
            idx += 1;
        }
        Intra4Mode::from_index(idx)
            .ok_or_else(|| CodecError::corrupt(CorruptKind::BadMacroblockType, "bad intra4 mode"))
    }
}

/// Decoder-side twin of `H264Encoder::build_inter_pred`.
fn build_inter_pred_dec(
    dsp: &Dsp,
    r: &RefPicture,
    mbx: usize,
    mby: usize,
    part: Partitioning,
    mvs: &[Mv; 4],
) -> ([u8; 256], [u8; 64], [u8; 64]) {
    let (mut py, mut pcb, mut pcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
    for (pi, &(ox, oy, pw, ph)) in part.rects().iter().enumerate() {
        crate::mc::predict_partition(
            dsp,
            r,
            mbx * 16 + ox,
            mby * 16 + oy,
            ox,
            oy,
            pw,
            ph,
            mvs[pi],
            &mut py,
            &mut pcb,
            &mut pcr,
        );
    }
    (py, pcb, pcr)
}

/// Decoder-side twin of `H264Encoder::build_b_pred`.
#[allow(clippy::too_many_arguments)]
fn build_b_pred_dec(
    dsp: &Dsp,
    fwd: &RefPicture,
    bwd: &RefPicture,
    mbx: usize,
    mby: usize,
    mode: u8,
    mv_f: Mv,
    mv_b: Mv,
) -> ([u8; 256], [u8; 64], [u8; 64]) {
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
    match mode {
        0 => build_inter_pred_dec(dsp, fwd, mbx, mby, Partitioning::P16x16, &[mv_f; 4]),
        1 => build_inter_pred_dec(dsp, bwd, mbx, mby, Partitioning::P16x16, &[mv_b; 4]),
        _ => {
            let (fy, fcb, fcr) =
                build_inter_pred_dec(dsp, fwd, mbx, mby, Partitioning::P16x16, &[mv_f; 4]);
            let (by_, bcb, bcr) =
                build_inter_pred_dec(dsp, bwd, mbx, mby, Partitioning::P16x16, &[mv_b; 4]);
            let (mut py, mut pcb, mut pcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
            dsp.avg_block(&mut py, 16, &fy, 16, &by_, 16, 16, 16);
            dsp.avg_block(&mut pcb, 8, &fcb, 8, &bcb, 8, 8, 8);
            dsp.avg_block(&mut pcr, 8, &fcr, 8, &bcr, 8, 8, 8);
            (py, pcb, pcr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{write_intra4_mode, H264Encoder};
    use crate::types::EncoderConfig;
    use hdvb_bits::BitWriter;
    use hdvb_frame::SequencePsnr;

    fn moving_frame(w: usize, h: usize, t: f64) -> Frame {
        let mut f = Frame::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let v = 128.0
                    + 50.0 * ((x as f64 - 1.5 * t) * 0.17 + y as f64 * 0.06).sin()
                    + 45.0 * ((y as f64 + 0.5 * t) * 0.11).cos();
                f.y_mut().set(x, y, v.clamp(0.0, 255.0) as u8);
            }
        }
        for y in 0..h / 2 {
            for x in 0..w / 2 {
                f.cb_mut()
                    .set(x, y, (118 + (x + y + t as usize) % 20) as u8);
                f.cr_mut().set(x, y, (134 - (x + 2 * y) % 18) as u8);
            }
        }
        f
    }

    fn roundtrip(qp: u8, frames: usize, b_frames: u8) -> (Vec<Frame>, Vec<Frame>) {
        let (w, h) = (64, 48);
        let config = EncoderConfig::new(w, h).with_qp(qp).with_b_frames(b_frames);
        let mut enc = H264Encoder::new(config).expect("h264 encoder: config rejected");
        let mut dec = H264Decoder::new();
        let originals: Vec<Frame> = (0..frames).map(|i| moving_frame(w, h, i as f64)).collect();
        let mut packets = Vec::new();
        for f in &originals {
            packets.extend(enc.encode(f).expect("h264 encoder: encode failed"));
        }
        packets.extend(enc.flush().expect("h264 encoder: flush failed"));
        let mut decoded = Vec::new();
        for p in &packets {
            decoded.extend(dec.decode(&p.data).expect("h264 decoder: packet rejected"));
        }
        decoded.extend(dec.flush());
        (originals, decoded)
    }

    #[test]
    fn intra4_mode_coding_is_a_bijection() {
        // Every (mode, mpm) pair must round-trip through the
        // most-probable-mode coding.
        for mpm in 0..5u8 {
            for mode in Intra4Mode::ALL {
                let mut w = BitWriter::new();
                write_intra4_mode(&mut w, mode, mpm);
                let bytes = w.finish();
                let mut r = BitReader::new(&bytes);
                let decoded =
                    read_intra4_mode(&mut r, mpm).expect("h264 decoder: intra4 mode rejected");
                assert_eq!(decoded, mode, "mode {mode:?} mpm {mpm}");
            }
        }
    }

    #[test]
    fn intra_roundtrip_quality() {
        let (orig, dec) = roundtrip(20, 1, 2);
        assert_eq!(dec.len(), 1);
        let mut acc = SequencePsnr::new();
        acc.add(&orig[0], &dec[0]);
        assert!(acc.y_psnr() > 32.0, "psnr {:.2}", acc.y_psnr());
    }

    #[test]
    fn ipbb_roundtrip_display_order() {
        let (orig, dec) = roundtrip(26, 7, 2);
        assert_eq!(dec.len(), 7);
        for (i, (o, d)) in orig.iter().zip(&dec).enumerate() {
            let mut acc = SequencePsnr::new();
            acc.add(o, d);
            assert!(acc.y_psnr() > 27.0, "frame {i}: {:.2}", acc.y_psnr());
        }
    }

    #[test]
    fn ipp_roundtrip_multiref() {
        let (w, h) = (64, 48);
        let config = EncoderConfig::new(w, h)
            .with_qp(24)
            .with_b_frames(0)
            .with_num_refs(3);
        let mut enc = H264Encoder::new(config).expect("h264 encoder: config rejected");
        let mut dec = H264Decoder::new();
        let originals: Vec<Frame> = (0..6).map(|i| moving_frame(w, h, i as f64)).collect();
        let mut packets = Vec::new();
        for f in &originals {
            packets.extend(enc.encode(f).expect("h264 encoder: encode failed"));
        }
        packets.extend(enc.flush().expect("h264 encoder: flush failed"));
        let mut decoded = Vec::new();
        for p in &packets {
            decoded.extend(dec.decode(&p.data).expect("h264 decoder: packet rejected"));
        }
        decoded.extend(dec.flush());
        assert_eq!(decoded.len(), 6);
        for (o, d) in originals.iter().zip(&decoded) {
            let mut acc = SequencePsnr::new();
            acc.add(o, d);
            assert!(acc.y_psnr() > 27.0, "{:.2}", acc.y_psnr());
        }
    }

    #[test]
    fn multi_reference_wins_on_alternating_content() {
        // Frames alternate between two scenes: with two references the
        // encoder can reach past the immediately previous (different)
        // frame, so the stream must shrink versus single-reference.
        let (w, h) = (64, 48);
        let scene = |which: bool, t: usize| -> Frame {
            let mut f = moving_frame(w, h, t as f64 * 0.1);
            if which {
                for v in f.y_mut().data_mut() {
                    *v = 255 - *v; // inverted scene
                }
            }
            f
        };
        let bits_with = |refs: u8| -> u64 {
            let mut enc = H264Encoder::new(
                EncoderConfig::new(w, h)
                    .with_b_frames(0)
                    .with_num_refs(refs),
            )
            .expect("h264 encoder: config rejected");
            let mut total = 0;
            for t in 0..8 {
                let f = scene(t % 2 == 1, t);
                for p in enc.encode(&f).expect("h264 encoder: encode failed") {
                    total += p.bits();
                }
            }
            for p in enc.flush().expect("h264 encoder: flush failed") {
                total += p.bits();
            }
            total
        };
        let single = bits_with(1);
        let multi = bits_with(3);
        assert!(
            multi < single * 9 / 10,
            "multi-ref {multi} not clearly below single-ref {single}"
        );
    }

    #[test]
    fn lower_qp_is_higher_quality() {
        let q = |qp: u8| {
            let (orig, dec) = roundtrip(qp, 4, 2);
            let mut acc = SequencePsnr::new();
            for (o, d) in orig.iter().zip(&dec) {
                acc.add(o, d);
            }
            acc.y_psnr()
        };
        assert!(q(16) > q(40) + 3.0);
    }

    #[test]
    fn decode_is_simd_level_independent() {
        let (w, h) = (64, 48);
        let mut enc =
            H264Encoder::new(EncoderConfig::new(w, h)).expect("h264 encoder: config rejected");
        let mut packets = Vec::new();
        for i in 0..5 {
            packets.extend(
                enc.encode(&moving_frame(w, h, i as f64))
                    .expect("h264 encoder: encode failed"),
            );
        }
        packets.extend(enc.flush().expect("h264 encoder: flush failed"));
        let mut a = H264Decoder::with_simd(SimdLevel::Scalar);
        let mut b = H264Decoder::with_simd(SimdLevel::Sse2);
        let mut oa = Vec::new();
        let mut ob = Vec::new();
        for p in &packets {
            oa.extend(
                a.decode(&p.data)
                    .expect("h264 decoder (scalar): packet rejected"),
            );
            ob.extend(
                b.decode(&p.data)
                    .expect("h264 decoder (sse2): packet rejected"),
            );
        }
        oa.extend(a.flush());
        ob.extend(b.flush());
        assert_eq!(oa, ob);
    }

    #[test]
    fn corrupt_and_truncated_inputs_error_not_panic() {
        let (w, h) = (64, 48);
        let mut enc =
            H264Encoder::new(EncoderConfig::new(w, h)).expect("h264 encoder: config rejected");
        let packets = enc
            .encode(&moving_frame(w, h, 0.0))
            .expect("h264 encoder: encode failed");
        let data = &packets[0].data;
        for cut in [0, 2, 6, data.len() / 2] {
            let mut dec = H264Decoder::new();
            let _ = dec.decode(&data[..cut]);
        }
        let mut dec = H264Decoder::new();
        assert!(dec.decode(&[0xABu8; 80]).is_err());
        // P without reference.
        let mut enc2 = H264Encoder::new(EncoderConfig::new(w, h).with_b_frames(0))
            .expect("h264 encoder: config rejected");
        let _ = enc2
            .encode(&moving_frame(w, h, 0.0))
            .expect("h264 encoder: encode failed");
        let p = enc2
            .encode(&moving_frame(w, h, 1.0))
            .expect("h264 encoder: encode failed");
        let mut dec2 = H264Decoder::new();
        assert!(dec2.decode(&p[0].data).is_err());
    }

    #[test]
    fn non_aligned_dimensions_roundtrip() {
        let (w, h) = (60, 44);
        let mut enc =
            H264Encoder::new(EncoderConfig::new(w, h)).expect("h264 encoder: config rejected");
        let mut dec = H264Decoder::new();
        let f = moving_frame(w, h, 0.0);
        let mut packets = enc.encode(&f).expect("h264 encoder: encode failed");
        packets.extend(enc.flush().expect("h264 encoder: flush failed"));
        let mut out = Vec::new();
        for p in &packets {
            out.extend(dec.decode(&p.data).expect("h264 decoder: packet rejected"));
        }
        out.extend(dec.flush());
        assert_eq!(out.len(), 1);
        assert_eq!((out[0].width(), out[0].height()), (w, h));
    }

    #[test]
    fn out_of_window_motion_vector_is_corrupt_not_panic() {
        let (w, h) = (16, 16);
        let mut enc = H264Encoder::new(EncoderConfig::new(w, h).with_b_frames(0))
            .expect("h264 encoder: config rejected");
        let mut dec = H264Decoder::new();
        let i_pkt = enc
            .encode(&moving_frame(w, h, 0.0))
            .expect("h264 encoder: encode failed");
        dec.decode(&i_pkt[0].data)
            .expect("h264 decoder: packet rejected");

        // Hand-craft a P picture whose single macroblock carries a motion
        // vector far outside the padded reference window.
        let mut bw = BitWriter::new();
        bw.put_bits(MAGIC, 16);
        bw.put_bits(FrameType::P.to_bits(), 2);
        bw.put_bits(1, 32); // display index
        bw.put_ue(w as u32);
        bw.put_ue(h as u32);
        bw.put_ue(26); // qp
        bw.put_ue(1); // num_refs
        bw.put_bits(0, 1); // deblock off
        bw.put_bits(0, 1); // not skipped
        bw.put_ue(0); // mb_type: P16x16
        bw.put_se(10_000); // mv.x delta, quarter-pel: 2500 px off-screen
        bw.put_se(0); // mv.y delta
        let crafted = bw.finish();

        match dec.decode(&crafted) {
            Err(CodecError::Corrupt { kind, .. }) => {
                assert_eq!(kind, CorruptKind::BadMotionVector);
            }
            other => panic!("expected BadMotionVector, got {other:?}"),
        }

        // The failed packet must not poison the decoder: a real P picture
        // decodes fine afterwards.
        let p_pkt = enc
            .encode(&moving_frame(w, h, 1.0))
            .expect("h264 encoder: encode failed");
        dec.decode(&p_pkt[0].data)
            .expect("h264 decoder: recovery packet rejected");
    }

    #[test]
    fn corrupt_errors_carry_bit_offsets() {
        // Reserved frame type: detected right after the 18 header bits.
        let mut bw = BitWriter::new();
        bw.put_bits(MAGIC, 16);
        bw.put_bits(3, 2);
        let mut dec = H264Decoder::new();
        match dec.decode(&bw.finish()) {
            Err(CodecError::Corrupt { offset, kind, .. }) => {
                assert_eq!(kind, CorruptKind::BadHeaderField);
                assert!(offset >= 16, "offset {offset} should be past the magic");
            }
            other => panic!("expected BadHeaderField, got {other:?}"),
        }
        // Empty packet: truncation at offset 0 is legitimate.
        match dec.decode(&[]) {
            Err(CodecError::Corrupt { kind, .. }) => {
                assert_eq!(kind, CorruptKind::Truncated);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }
}
