//! Motion compensation and shared pixel helpers for the H.264-class
//! codec.

use hdvb_dsp::{Block4, Dsp};
use hdvb_frame::{Frame, PaddedPlane};
use hdvb_me::Mv;

/// Luma padding of reference pictures.
pub(crate) const LUMA_PAD: usize = 40;
/// Chroma padding of reference pictures.
pub(crate) const CHROMA_PAD: usize = 20;

/// A reconstructed, deblocked reference picture.
pub(crate) struct RefPicture {
    pub y: PaddedPlane,
    pub cb: PaddedPlane,
    pub cr: PaddedPlane,
}

impl RefPicture {
    pub(crate) fn from_frame(frame: &Frame) -> Self {
        // Reference-plane padding is part of motion compensation.
        let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
        RefPicture {
            y: PaddedPlane::from_plane(frame.y(), LUMA_PAD),
            cb: PaddedPlane::from_plane(frame.cb(), CHROMA_PAD),
            cr: PaddedPlane::from_plane(frame.cr(), CHROMA_PAD),
        }
    }

    /// Refills a retired reference in place from a new reconstruction of
    /// the same geometry, avoiding the padded-plane allocations of
    /// [`from_frame`](Self::from_frame).
    pub(crate) fn refill_from(&mut self, frame: &Frame) {
        let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
        self.y.refill(frame.y());
        self.cb.refill(frame.cb());
        self.cr.refill(frame.cr());
    }

    /// Whether this reference matches a `w`×`h` luma geometry, i.e. can
    /// be recycled via [`refill_from`](Self::refill_from).
    pub(crate) fn matches(&self, w: usize, h: usize) -> bool {
        self.y.width() == w && self.y.height() == h
    }
}

/// Motion-compensates one partition (luma + both chroma planes) from `r`
/// at quarter-pel vector `mv`. `(px, py)` is the partition's absolute
/// luma pixel origin; the destination buffers are macroblock-sized
/// (16×16 luma / 8×8 chroma) and `(ox, oy)` is the partition offset
/// within the macroblock.
#[allow(clippy::too_many_arguments)]
pub(crate) fn predict_partition(
    dsp: &Dsp,
    r: &RefPicture,
    px: usize,
    py: usize,
    ox: usize,
    oy: usize,
    w: usize,
    h: usize,
    mv: Mv,
    luma: &mut [u8; 256],
    cb: &mut [u8; 64],
    cr: &mut [u8; 64],
) {
    let ix = px as isize + isize::from(mv.x >> 2) - 2;
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
    let iy = py as isize + isize::from(mv.y >> 2) - 2;
    dsp.qpel_luma(
        &mut luma[oy * 16 + ox..],
        16,
        r.y.row_from(ix, iy),
        r.y.stride(),
        (mv.x & 3) as u8,
        (mv.y & 3) as u8,
        w,
        h,
    );
    // Chroma: vector scaled to chroma half-pel (floor), as in the other
    // codecs (1/8-pel chroma approximated at half-pel; see DESIGN.md).
    let cmx = mv.x >> 2;
    let cmy = mv.y >> 2;
    let cx = (px / 2) as isize + isize::from(cmx >> 1);
    let cy = (py / 2) as isize + isize::from(cmy >> 1);
    let (cfx, cfy) = ((cmx & 1) as u8, (cmy & 1) as u8);
    dsp.hpel_interp(
        &mut cb[(oy / 2) * 8 + ox / 2..],
        8,
        r.cb.row_from(cx, cy),
        r.cb.stride(),
        cfx,
        cfy,
        w / 2,
        h / 2,
    );
    dsp.hpel_interp(
        &mut cr[(oy / 2) * 8 + ox / 2..],
        8,
        r.cr.row_from(cx, cy),
        r.cr.stride(),
        cfx,
        cfy,
        w / 2,
        h / 2,
    );
}

/// The four inter partition shapes (paper-era x264 `--analyse all` minus
/// sub-8×8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Partitioning {
    P16x16,
    P16x8,
    P8x16,
    P8x8,
}

impl Partitioning {
    pub(crate) const ALL: [Partitioning; 4] = [
        Partitioning::P16x16,
        Partitioning::P16x8,
        Partitioning::P8x16,
        Partitioning::P8x8,
    ];

    pub(crate) fn index(self) -> u32 {
        match self {
            Partitioning::P16x16 => 0,
            Partitioning::P16x8 => 1,
            Partitioning::P8x16 => 2,
            Partitioning::P8x8 => 3,
        }
    }

    pub(crate) fn from_index(i: u32) -> Option<Partitioning> {
        Self::ALL.get(i as usize).copied()
    }

    /// Partition rectangles as `(ox, oy, w, h)` within the macroblock.
    pub(crate) fn rects(self) -> &'static [(usize, usize, usize, usize)] {
        match self {
            Partitioning::P16x16 => &[(0, 0, 16, 16)],
            Partitioning::P16x8 => &[(0, 0, 16, 8), (0, 8, 16, 8)],
            Partitioning::P8x16 => &[(0, 0, 8, 16), (8, 0, 8, 16)],
            Partitioning::P8x8 => &[(0, 0, 8, 8), (8, 0, 8, 8), (0, 8, 8, 8), (8, 8, 8, 8)],
        }
    }
}

// ------------------------------------------------------- 4x4 helpers --

/// Loads residual `cur - pred` for a 4×4 block.
pub(crate) fn diff4(
    res: &mut Block4,
    cur: &[u8],
    cur_stride: usize,
    pred: &[u8],
    pred_stride: usize,
) {
    for y in 0..4 {
        for x in 0..4 {
            res[y * 4 + x] =
                i16::from(cur[y * cur_stride + x]) - i16::from(pred[y * pred_stride + x]);
        }
    }
}

/// Adds a residual onto a prediction with clamping, writing into a
/// plane-backed destination.
pub(crate) fn add4(
    dst: &mut [u8],
    dst_stride: usize,
    pred: &[u8],
    pred_stride: usize,
    res: &Block4,
) {
    for y in 0..4 {
        for x in 0..4 {
            let v = i32::from(pred[y * pred_stride + x]) + i32::from(res[y * 4 + x]);
            dst[y * dst_stride + x] = v.clamp(0, 255) as u8;
        }
    }
}

/// Copies a 4×4 block.
pub(crate) fn copy4(dst: &mut [u8], dst_stride: usize, src: &[u8], src_stride: usize) {
    for y in 0..4 {
        dst[y * dst_stride..y * dst_stride + 4]
            .copy_from_slice(&src[y * src_stride..y * src_stride + 4]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_rects_tile_the_macroblock() {
        for p in Partitioning::ALL {
            let area: usize = p.rects().iter().map(|&(_, _, w, h)| w * h).sum();
            assert_eq!(area, 256, "{p:?}");
            assert_eq!(Partitioning::from_index(p.index()), Some(p));
        }
        assert_eq!(Partitioning::from_index(9), None);
    }

    #[test]
    fn diff_add_roundtrip() {
        let cur: Vec<u8> = (0..16).map(|i| (i * 13) as u8).collect();
        let pred: Vec<u8> = (0..16).map(|i| (200 - i * 3) as u8).collect();
        let mut res = [0i16; 16];
        diff4(&mut res, &cur, 4, &pred, 4);
        let mut out = vec![0u8; 16];
        add4(&mut out, 4, &pred, 4, &res);
        assert_eq!(out, cur);
    }

    #[test]
    fn predict_partition_zero_mv_is_copy() {
        let mut f = Frame::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                f.y_mut().set(x, y, (x * 5 + y * 3) as u8);
            }
        }
        let r = RefPicture::from_frame(&f);
        let dsp = Dsp::default();
        let (mut luma, mut cb, mut cr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
        predict_partition(
            &dsp,
            &r,
            16,
            16,
            0,
            0,
            16,
            16,
            Mv::ZERO,
            &mut luma,
            &mut cb,
            &mut cr,
        );
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(luma[y * 16 + x], f.y().get(16 + x, 16 + y));
            }
        }
    }

    #[test]
    fn predict_partition_at_sub_offsets() {
        let f = Frame::new(32, 32);
        let r = RefPicture::from_frame(&f);
        let dsp = Dsp::default();
        let (mut luma, mut cb, mut cr) = ([0u8; 256], [1u8; 64], [1u8; 64]);
        // Bottom 16x8 partition with a quarter-pel vector: must not panic
        // and must fill its half of the buffers.
        predict_partition(
            &dsp,
            &r,
            0,
            8,
            0,
            8,
            16,
            8,
            Mv::new(5, -3),
            &mut luma,
            &mut cb,
            &mut cr,
        );
        assert!(luma[8 * 16..].iter().all(|&v| v == 128));
        assert!(cb[4 * 8..].iter().all(|&v| v == 128));
    }
}
