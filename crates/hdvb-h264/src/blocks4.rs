//! Run-level (de)serialisation of quantised 4×4 blocks.

use crate::tables::{
    event_symbol4, event_table4, symbol_event4, MAX_LEVEL4, MAX_RUN4, SYM_ESCAPE4, ZIGZAG4,
};
use crate::types::CodecError;
use hdvb_bits::{BitReader, BitWriter};
use hdvb_dsp::Block4;

/// Writes a 4×4 block that has at least one nonzero coefficient.
pub(crate) fn write_coeffs4(w: &mut BitWriter, block: &Block4) {
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
    let table = event_table4();
    let last_pos = match ZIGZAG4.iter().rposition(|&p| block[p] != 0) {
        Some(p) => p,
        None => {
            debug_assert!(false, "write_coeffs4 on an empty block");
            return;
        }
    };
    let mut run = 0u32;
    for (zi, &pos) in ZIGZAG4.iter().enumerate().take(last_pos + 1) {
        let level = block[pos];
        if level == 0 {
            run += 1;
            continue;
        }
        let last = zi == last_pos;
        let abs = level.unsigned_abs() as u32;
        if run <= MAX_RUN4 && abs <= MAX_LEVEL4 {
            table.encode(event_symbol4(last, run, abs), w);
            w.put_bit(level < 0);
        } else {
            table.encode(SYM_ESCAPE4, w);
            w.put_bit(last);
            w.put_bits(run, 4);
            w.put_se(i32::from(level));
        }
        run = 0;
    }
}

/// Parses one coded 4×4 block into `block` (zeroed by the caller).
pub(crate) fn read_coeffs4(r: &mut BitReader<'_>, block: &mut Block4) -> Result<(), CodecError> {
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
    let table = event_table4();
    let mut pos = 0usize;
    loop {
        let symbol = table.decode(r)?;
        let (last, run, level) = if symbol == SYM_ESCAPE4 {
            let last = r.get_bit()?;
            let run = r.get_bits(4)?;
            let level = r.get_se()?;
            if level == 0 {
                return Err(CodecError::corrupt(
                    hdvb_bits::CorruptKind::BadCoefficients,
                    "escape level of zero",
                ));
            }
            (last, run, level)
        } else {
            let (last, run, abs) = symbol_event4(symbol);
            let neg = r.get_bit()?;
            (last, run, if neg { -(abs as i32) } else { abs as i32 })
        };
        pos += run as usize;
        if pos >= 16 {
            return Err(CodecError::corrupt(
                hdvb_bits::CorruptKind::BadCoefficients,
                "coefficient run overflows 4x4 block",
            ));
        }
        block[ZIGZAG4[pos]] = level.clamp(-2047, 2047) as i16;
        pos += 1;
        if last {
            return Ok(());
        }
    }
}

/// Estimated bit cost of a coded block, matching [`write_coeffs4`]
/// exactly (kept for rate-estimation extensions; exercised by tests).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn coeff_bits4(block: &Block4) -> u32 {
    let table = event_table4();
    let last_pos = match ZIGZAG4.iter().rposition(|&p| block[p] != 0) {
        Some(p) => p,
        None => return 0,
    };
    let mut bits = 0;
    let mut run = 0u32;
    for &pos in ZIGZAG4.iter().take(last_pos + 1) {
        let level = block[pos];
        if level == 0 {
            run += 1;
            continue;
        }
        let abs = level.unsigned_abs() as u32;
        if run <= MAX_RUN4 && abs <= MAX_LEVEL4 {
            let last = pos == ZIGZAG4[last_pos];
            bits += table.code_len(event_symbol4(last, run, abs)) + 1;
        } else {
            let mapped = 2 * u64::from(abs);
            let se_len = 2 * (64 - (mapped + 1).leading_zeros()) - 1;
            bits += table.code_len(SYM_ESCAPE4) + 1 + 4 + se_len;
        }
        run = 0;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(block: &Block4) -> Block4 {
        let mut w = BitWriter::new();
        write_coeffs4(&mut w, block);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut out = [0i16; 16];
        read_coeffs4(&mut r, &mut out).unwrap();
        out
    }

    #[test]
    fn single_and_dense_blocks_roundtrip() {
        let mut b = [0i16; 16];
        b[0] = 1;
        assert_eq!(roundtrip(&b), b);
        let mut state = 17u32;
        for _ in 0..60 {
            let mut b = [0i16; 16];
            for v in &mut b {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                if state.is_multiple_of(3) {
                    *v = ((state >> 22) as i16 % 401) - 200;
                }
            }
            if b.iter().all(|&v| v == 0) {
                b[5] = -2;
            }
            assert_eq!(roundtrip(&b), b);
        }
    }

    #[test]
    fn long_run_uses_escape() {
        let mut b = [0i16; 16];
        b[ZIGZAG4[15]] = 3; // run 15 > MAX_RUN4
        assert_eq!(roundtrip(&b), b);
    }

    #[test]
    fn corrupt_run_overflow_is_error() {
        let table = event_table4();
        let mut w = BitWriter::new();
        for _ in 0..3 {
            table.encode(SYM_ESCAPE4, &mut w);
            w.put_bit(false);
            w.put_bits(15, 4);
            w.put_se(2);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut out = [0i16; 16];
        assert!(read_coeffs4(&mut r, &mut out).is_err());
    }

    #[test]
    fn bit_estimate_is_exact() {
        let mut state = 4u32;
        for _ in 0..30 {
            let mut b = [0i16; 16];
            for v in &mut b {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                if state.is_multiple_of(2) {
                    *v = ((state >> 24) as i16 % 21) - 10;
                }
            }
            if b.iter().all(|&v| v == 0) {
                continue;
            }
            let mut w = BitWriter::new();
            write_coeffs4(&mut w, &b);
            assert_eq!(u64::from(coeff_bits4(&b)), w.bit_len());
        }
    }
}
