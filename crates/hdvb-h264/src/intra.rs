//! Spatial intra prediction: 5-mode 4×4, 4-mode 16×16 (with plane) and
//! 3-mode chroma. Prediction always reads from the reconstructed plane
//! (never the source), so the encoder and decoder see identical
//! neighbours; samples outside the picture substitute 128.

use hdvb_frame::Plane;

/// 4×4 luma intra modes (subset of the standard's nine — see DESIGN.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Intra4Mode {
    Vertical,
    Horizontal,
    Dc,
    DiagonalDownLeft,
    DiagonalDownRight,
}

impl Intra4Mode {
    pub(crate) const ALL: [Intra4Mode; 5] = [
        Intra4Mode::Vertical,
        Intra4Mode::Horizontal,
        Intra4Mode::Dc,
        Intra4Mode::DiagonalDownLeft,
        Intra4Mode::DiagonalDownRight,
    ];

    pub(crate) fn index(self) -> u32 {
        match self {
            Intra4Mode::Vertical => 0,
            Intra4Mode::Horizontal => 1,
            Intra4Mode::Dc => 2,
            Intra4Mode::DiagonalDownLeft => 3,
            Intra4Mode::DiagonalDownRight => 4,
        }
    }

    pub(crate) fn from_index(i: u32) -> Option<Intra4Mode> {
        Self::ALL.get(i as usize).copied()
    }
}

/// 16×16 luma intra modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Intra16Mode {
    Vertical,
    Horizontal,
    Dc,
    Plane,
}

impl Intra16Mode {
    pub(crate) const ALL: [Intra16Mode; 4] = [
        Intra16Mode::Vertical,
        Intra16Mode::Horizontal,
        Intra16Mode::Dc,
        Intra16Mode::Plane,
    ];

    pub(crate) fn index(self) -> u32 {
        match self {
            Intra16Mode::Vertical => 0,
            Intra16Mode::Horizontal => 1,
            Intra16Mode::Dc => 2,
            Intra16Mode::Plane => 3,
        }
    }

    pub(crate) fn from_index(i: u32) -> Option<Intra16Mode> {
        Self::ALL.get(i as usize).copied()
    }
}

/// Chroma 8×8 intra modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ChromaMode {
    Dc,
    Vertical,
    Horizontal,
}

impl ChromaMode {
    pub(crate) const ALL: [ChromaMode; 3] =
        [ChromaMode::Dc, ChromaMode::Vertical, ChromaMode::Horizontal];

    pub(crate) fn index(self) -> u32 {
        match self {
            ChromaMode::Dc => 0,
            ChromaMode::Vertical => 1,
            ChromaMode::Horizontal => 2,
        }
    }

    pub(crate) fn from_index(i: u32) -> Option<ChromaMode> {
        Self::ALL.get(i as usize).copied()
    }
}

/// Gathers up to `2n` top neighbours (with edge replication to the
/// right), `n` left neighbours and the top-left sample for a block of
/// size `n` at `(bx, by)`; unavailable positions read 128.
///
/// Returned as fixed stack arrays sized for the largest block (n = 16):
/// this runs per prediction trial in the encoder's mode search, so a
/// heap allocation here would dominate the whole hot path (it used to —
/// the allocation gate now keeps it out). Only the first `2n` / `n`
/// entries are meaningful; callers must slice accordingly.
fn neighbours(plane: &Plane, bx: usize, by: usize, n: usize) -> ([u8; 32], [u8; 16], u8) {
    debug_assert!(n <= 16);
    let top_avail = by > 0;
    let left_avail = bx > 0;
    let mut top = [128u8; 32];
    if top_avail {
        for (i, t) in top[..2 * n].iter_mut().enumerate() {
            let x = (bx + i).min(plane.width() - 1);
            *t = plane.get(x, by - 1);
        }
    }
    let mut left = [128u8; 16];
    if left_avail {
        for (j, l) in left[..n].iter_mut().enumerate() {
            *l = plane.get(bx - 1, by + j);
        }
    }
    let tl = if top_avail && left_avail {
        plane.get(bx - 1, by - 1)
    } else {
        128
    };
    (top, left, tl)
}

fn dc_value(top: &[u8], left: &[u8], top_avail: bool, left_avail: bool, n: usize) -> u8 {
    let ts: u32 = top[..n].iter().map(|&v| u32::from(v)).sum();
    let ls: u32 = left.iter().map(|&v| u32::from(v)).sum();
    match (top_avail, left_avail) {
        (true, true) => ((ts + ls + n as u32) / (2 * n as u32)) as u8,
        (true, false) => ((ts + n as u32 / 2) / n as u32) as u8,
        (false, true) => ((ls + n as u32 / 2) / n as u32) as u8,
        (false, false) => 128,
    }
}

/// Predicts a 4×4 luma block into `dst` (row-major 4×4).
pub(crate) fn predict4(plane: &Plane, bx: usize, by: usize, mode: Intra4Mode, dst: &mut [u8; 16]) {
    let (top, left, tl) = neighbours(plane, bx, by, 4);
    match mode {
        Intra4Mode::Vertical => {
            for y in 0..4 {
                dst[y * 4..y * 4 + 4].copy_from_slice(&top[..4]);
            }
        }
        Intra4Mode::Horizontal => {
            for y in 0..4 {
                for x in 0..4 {
                    dst[y * 4 + x] = left[y];
                }
            }
        }
        Intra4Mode::Dc => {
            let v = dc_value(&top, &left[..4], by > 0, bx > 0, 4);
            dst.fill(v);
        }
        Intra4Mode::DiagonalDownLeft => {
            let t = &top;
            for y in 0..4 {
                for x in 0..4 {
                    let i = x + y;
                    let v = if i == 6 {
                        (u16::from(t[6]) + 3 * u16::from(t[7]) + 2) >> 2
                    } else {
                        (u16::from(t[i]) + 2 * u16::from(t[i + 1]) + u16::from(t[i + 2]) + 2) >> 2
                    };
                    dst[y * 4 + x] = v as u8;
                }
            }
        }
        Intra4Mode::DiagonalDownRight => {
            // Samples along the top-left diagonal: a[k] for k in -4..=4
            // where a[0] = top-left, a[k>0] = top[k-1], a[k<0] = left[-k-1].
            let a = |k: i32| -> u16 {
                if k == 0 {
                    u16::from(tl)
                } else if k > 0 {
                    u16::from(top[(k - 1) as usize])
                } else {
                    u16::from(left[(-k - 1) as usize])
                }
            };
            for y in 0..4i32 {
                for x in 0..4i32 {
                    let d = x - y;
                    let v = (a(d - 1) + 2 * a(d) + a(d + 1) + 2) >> 2;
                    dst[(y * 4 + x) as usize] = v as u8;
                }
            }
        }
    }
}

/// Predicts a 16×16 luma macroblock into `dst` (row-major 16×16).
pub(crate) fn predict16(
    plane: &Plane,
    bx: usize,
    by: usize,
    mode: Intra16Mode,
    dst: &mut [u8; 256],
) {
    let (top, left, _) = neighbours(plane, bx, by, 16);
    match mode {
        Intra16Mode::Vertical => {
            for y in 0..16 {
                dst[y * 16..y * 16 + 16].copy_from_slice(&top[..16]);
            }
        }
        Intra16Mode::Horizontal => {
            for y in 0..16 {
                for x in 0..16 {
                    dst[y * 16 + x] = left[y];
                }
            }
        }
        Intra16Mode::Dc => {
            let v = dc_value(&top, &left[..16], by > 0, bx > 0, 16);
            dst.fill(v);
        }
        Intra16Mode::Plane => {
            // Standard plane fit from the border samples; index -1 is the
            // top-left corner sample.
            let (_, _, tl) = neighbours(plane, bx, by, 1);
            let top_at = |i: i32| -> i32 {
                if i < 0 {
                    i32::from(tl)
                } else {
                    i32::from(top[i as usize])
                }
            };
            let left_at = |i: i32| -> i32 {
                if i < 0 {
                    i32::from(tl)
                } else {
                    i32::from(left[i as usize])
                }
            };
            let mut h = 0i32;
            let mut v = 0i32;
            for i in 1..=8i32 {
                h += i * (top_at(7 + i) - top_at(7 - i));
                v += i * (left_at(7 + i) - left_at(7 - i));
            }
            let a = 16 * (i32::from(left[15]) + i32::from(top[15]));
            let b = (5 * h + 32) >> 6;
            let c = (5 * v + 32) >> 6;
            for y in 0..16i32 {
                for x in 0..16i32 {
                    let p = (a + b * (x - 7) + c * (y - 7) + 16) >> 5;
                    dst[(y * 16 + x) as usize] = p.clamp(0, 255) as u8;
                }
            }
        }
    }
}

/// Predicts one 8×8 chroma block into `dst` (row-major 8×8).
pub(crate) fn predict_chroma8(
    plane: &Plane,
    bx: usize,
    by: usize,
    mode: ChromaMode,
    dst: &mut [u8; 64],
) {
    let (top, left, _) = neighbours(plane, bx, by, 8);
    match mode {
        ChromaMode::Dc => {
            let v = dc_value(&top, &left[..8], by > 0, bx > 0, 8);
            dst.fill(v);
        }
        ChromaMode::Vertical => {
            for y in 0..8 {
                dst[y * 8..y * 8 + 8].copy_from_slice(&top[..8]);
            }
        }
        ChromaMode::Horizontal => {
            for y in 0..8 {
                for x in 0..8 {
                    dst[y * 8 + x] = left[y];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_plane() -> Plane {
        let mut p = Plane::new(48, 48);
        for y in 0..48 {
            for x in 0..48 {
                p.set(x, y, (x * 3 + y * 5) as u8);
            }
        }
        p
    }

    #[test]
    fn vertical_copies_top_row() {
        let p = gradient_plane();
        let mut dst = [0u8; 16];
        predict4(&p, 8, 8, Intra4Mode::Vertical, &mut dst);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(dst[y * 4 + x], p.get(8 + x, 7));
            }
        }
    }

    #[test]
    fn horizontal_copies_left_column() {
        let p = gradient_plane();
        let mut dst = [0u8; 16];
        predict4(&p, 8, 8, Intra4Mode::Horizontal, &mut dst);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(dst[y * 4 + x], p.get(7, 8 + y));
            }
        }
    }

    #[test]
    fn dc_without_neighbours_is_mid_grey() {
        let p = gradient_plane();
        let mut dst = [0u8; 16];
        predict4(&p, 0, 0, Intra4Mode::Dc, &mut dst);
        assert!(dst.iter().all(|&v| v == 128));
        let mut dst16 = [0u8; 256];
        predict16(&p, 0, 0, Intra16Mode::Dc, &mut dst16);
        assert!(dst16.iter().all(|&v| v == 128));
    }

    #[test]
    fn dc_averages_available_borders() {
        let mut p = Plane::new(16, 16);
        p.fill(100);
        let mut dst = [0u8; 16];
        predict4(&p, 4, 4, Intra4Mode::Dc, &mut dst);
        assert!(dst.iter().all(|&v| v == 100));
    }

    #[test]
    fn diagonal_modes_follow_the_gradient() {
        // On a linear gradient, every predictor should be close to the
        // true continuation.
        let p = gradient_plane();
        for mode in [Intra4Mode::DiagonalDownLeft, Intra4Mode::DiagonalDownRight] {
            let mut dst = [0u8; 16];
            predict4(&p, 20, 20, mode, &mut dst);
            // Interior truth: value at (20+x, 20+y).
            let mut total_err = 0i32;
            for y in 0..4 {
                for x in 0..4 {
                    let truth = i32::from(p.get(20 + x, 20 + y));
                    total_err += (i32::from(dst[y * 4 + x]) - truth).abs();
                }
            }
            // DDL extrapolates along the anti-diagonal; the gradient is
            // not diagonal so allow slack, but prediction must correlate.
            assert!(total_err < 16 * 40, "{mode:?} err {total_err}");
        }
    }

    #[test]
    fn plane_mode_reproduces_linear_field() {
        let p = gradient_plane();
        let mut dst = [0u8; 256];
        predict16(&p, 16, 16, Intra16Mode::Plane, &mut dst);
        for y in 0..16 {
            for x in 0..16 {
                let truth = i32::from(p.get(16 + x, 16 + y));
                let got = i32::from(dst[y * 16 + x]);
                assert!((got - truth).abs() <= 3, "({x},{y}): {got} vs {truth}");
            }
        }
    }

    #[test]
    fn chroma_modes_cover_all_indices() {
        for m in ChromaMode::ALL {
            assert_eq!(ChromaMode::from_index(m.index()), Some(m));
        }
        assert_eq!(ChromaMode::from_index(3), None);
        for m in Intra4Mode::ALL {
            assert_eq!(Intra4Mode::from_index(m.index()), Some(m));
        }
        for m in Intra16Mode::ALL {
            assert_eq!(Intra16Mode::from_index(m.index()), Some(m));
        }
    }
}
