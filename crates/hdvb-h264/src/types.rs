use hdvb_dsp::SimdLevel;
use std::fmt;

/// Upper bound on decoded picture area in pixels (64 Mpixel).
///
/// Both the encoder configuration and the decoder's header parser enforce
/// it, so a corrupt packet cannot make the decoder allocate an unbounded
/// reconstruction frame from attacker-controlled dimension fields.
pub(crate) const MAX_DECODE_PIXELS: usize = 1 << 26;

/// Picture coding type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FrameType {
    /// Intra picture.
    I,
    /// Forward-predicted picture.
    P,
    /// Bidirectionally predicted picture.
    B,
}

impl FrameType {
    pub(crate) fn to_bits(self) -> u32 {
        match self {
            FrameType::I => 0,
            FrameType::P => 1,
            FrameType::B => 2,
        }
    }

    pub(crate) fn from_bits(v: u32) -> Option<FrameType> {
        match v {
            0 => Some(FrameType::I),
            1 => Some(FrameType::P),
            2 => Some(FrameType::B),
            _ => None,
        }
    }
}

impl fmt::Display for FrameType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FrameType::I => "I",
            FrameType::P => "P",
            FrameType::B => "B",
        })
    }
}

/// One coded picture.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Serialised picture data.
    pub data: Vec<u8>,
    /// Picture type.
    pub frame_type: FrameType,
    /// Display-order index.
    pub display_index: u32,
}

impl Packet {
    /// Coded size in bits.
    pub fn bits(&self) -> u64 {
        self.data.len() as u64 * 8
    }
}

/// Encoder configuration. Defaults mirror the paper's x264 command:
/// constant QP 26, two B frames, hexagon search with range 24, only the
/// first picture intra.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EncoderConfig {
    /// Picture width (even, ≥ 16).
    pub width: usize,
    /// Picture height (even, ≥ 16).
    pub height: usize,
    /// Quantisation parameter, 0..=51 (paper: 26 via Eq. 1).
    pub qp: u8,
    /// Number of B pictures between anchors.
    pub b_frames: u8,
    /// `None` = only the first picture intra (paper setting).
    pub intra_period: Option<u32>,
    /// Motion search range in full pels (paper: `--merange 24`).
    pub search_range: u16,
    /// Number of reference pictures for P motion search (1..=4; the
    /// paper's `--ref 16` is capped — see DESIGN.md).
    pub num_refs: u8,
    /// Kernel dispatch level.
    pub simd: SimdLevel,
    /// Whether the in-loop deblocking filter runs (ablation knob;
    /// signalled in the stream so encoder and decoder always agree).
    pub deblock: bool,
}

impl EncoderConfig {
    /// Creates a configuration with the paper's coding options.
    pub fn new(width: usize, height: usize) -> Self {
        EncoderConfig {
            width,
            height,
            qp: 26,
            b_frames: 2,
            intra_period: None,
            search_range: 24,
            num_refs: 3,
            simd: SimdLevel::detect(),
            deblock: true,
        }
    }

    /// Sets the quantisation parameter.
    pub fn with_qp(mut self, qp: u8) -> Self {
        self.qp = qp;
        self
    }

    /// Sets the number of B frames between anchors.
    pub fn with_b_frames(mut self, b: u8) -> Self {
        self.b_frames = b;
        self
    }

    /// Sets the SIMD dispatch level.
    pub fn with_simd(mut self, simd: SimdLevel) -> Self {
        self.simd = simd;
        self
    }

    /// Sets the motion search range.
    pub fn with_search_range(mut self, range: u16) -> Self {
        self.search_range = range;
        self
    }

    /// Sets the number of reference pictures.
    pub fn with_num_refs(mut self, n: u8) -> Self {
        self.num_refs = n;
        self
    }

    /// Sets the periodic intra interval.
    pub fn with_intra_period(mut self, period: Option<u32>) -> Self {
        self.intra_period = period;
        self
    }

    /// Enables or disables the in-loop deblocking filter.
    pub fn with_deblock(mut self, deblock: bool) -> Self {
        self.deblock = deblock;
        self
    }

    pub(crate) fn validate(&self) -> Result<(), CodecError> {
        if self.width < 16
            || self.height < 16
            || !self.width.is_multiple_of(2)
            || !self.height.is_multiple_of(2)
            || self.width > 16384
            || self.height > 16384
        {
            return Err(CodecError::BadConfig(
                "dimensions must be even, between 16 and 16384",
            ));
        }
        if self.width * self.height > MAX_DECODE_PIXELS {
            return Err(CodecError::BadConfig(
                "picture area exceeds the supported maximum",
            ));
        }
        if self.qp > 51 {
            return Err(CodecError::BadConfig("qp must be in 0..=51"));
        }
        if self.b_frames > 4 {
            return Err(CodecError::BadConfig("at most 4 b-frames supported"));
        }
        if self.num_refs == 0 || self.num_refs > 4 {
            return Err(CodecError::BadConfig("num_refs must be in 1..=4"));
        }
        Ok(())
    }
}

/// Errors from encoding or decoding.
#[derive(Debug)]
#[non_exhaustive]
pub enum CodecError {
    /// Invalid encoder configuration.
    BadConfig(&'static str),
    /// A frame did not match the configured geometry.
    FrameMismatch {
        /// Expected dimensions.
        expected: (usize, usize),
        /// Received dimensions.
        actual: (usize, usize),
    },
    /// The bitstream is malformed; decoding stopped at bit `offset`.
    Corrupt {
        /// Bit offset in the packet where the corruption was detected
        /// (the parse position the decoder stopped at).
        offset: u64,
        /// Classification of the corruption.
        kind: hdvb_bits::CorruptKind,
        /// Human-readable detail for diagnostics.
        detail: String,
    },
    /// The operation was cancelled via a [`hdvb_par::CancelToken`]
    /// (cooperative deadline or shutdown) at a picture boundary. The
    /// codec state is unchanged since the last completed picture.
    Cancelled,
}

impl CodecError {
    /// Builds a [`CodecError::Corrupt`] with an unset (0) offset; the
    /// outermost decode loop stamps the reader's bit position via
    /// [`at_bit`](Self::at_bit).
    pub(crate) fn corrupt(kind: hdvb_bits::CorruptKind, detail: impl Into<String>) -> Self {
        CodecError::Corrupt {
            offset: 0,
            kind,
            detail: detail.into(),
        }
    }

    /// Stamps `offset` on a [`CodecError::Corrupt`] whose offset is still
    /// unset; other variants and already-stamped errors pass through.
    pub(crate) fn at_bit(mut self, offset: u64) -> Self {
        if let CodecError::Corrupt { offset: o, .. } = &mut self {
            if *o == 0 {
                *o = offset;
            }
        }
        self
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadConfig(msg) => write!(f, "bad encoder configuration: {msg}"),
            CodecError::FrameMismatch { expected, actual } => write!(
                f,
                "frame is {}x{} but encoder is configured for {}x{}",
                actual.0, actual.1, expected.0, expected.1
            ),
            CodecError::Corrupt {
                offset,
                kind,
                detail,
            } => write!(f, "corrupt bitstream at bit {offset} ({kind}): {detail}"),
            CodecError::Cancelled => f.write_str("cancelled at a picture boundary"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<hdvb_bits::BitsError> for CodecError {
    fn from(e: hdvb_bits::BitsError) -> Self {
        CodecError::corrupt((&e).into(), e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(EncoderConfig::new(64, 48).validate().is_ok());
        assert!(EncoderConfig::new(64, 48).with_qp(52).validate().is_err());
        assert!(EncoderConfig::new(64, 48)
            .with_num_refs(0)
            .validate()
            .is_err());
        assert!(EncoderConfig::new(64, 48)
            .with_num_refs(5)
            .validate()
            .is_err());
        assert!(EncoderConfig::new(14, 48).validate().is_err());
    }

    #[test]
    fn frame_type_roundtrip() {
        for t in [FrameType::I, FrameType::P, FrameType::B] {
            assert_eq!(FrameType::from_bits(t.to_bits()), Some(t));
        }
        assert_eq!(FrameType::from_bits(7), None);
    }

    #[test]
    fn defaults_follow_paper_command() {
        let c = EncoderConfig::new(1280, 720);
        assert_eq!(c.qp, 26);
        assert_eq!(c.b_frames, 2);
        assert_eq!(c.search_range, 24);
        assert!(c.intra_period.is_none());
    }
}
