//! In-loop deblocking filter with the standard α/β/t_c0 thresholds.
//!
//! Both the encoder's reconstruction loop and the decoder run this
//! filter on every reconstructed picture before it becomes a reference,
//! exactly once and with identical parameters, so references never
//! diverge. Horizontal edges run through the dispatched SIMD kernel in
//! `hdvb-dsp` (real decoders vectorise deblocking too); vertical edges
//! are scalar at both levels. Simplifications vs. the full standard
//! (documented in DESIGN.md): a single boundary strength (the bS=1 t_c0
//! row) on every 4×4 edge, and no p1/q1 update.

use crate::tables::{ALPHA, BETA, TC0};
use hdvb_dsp::Dsp;
use hdvb_frame::{Frame, Plane};

/// Filters one plane on a grid of `step`-aligned edges.
fn deblock_plane(dsp: &Dsp, plane: &mut Plane, step: usize, qp: u8) {
    let alpha = i32::from(ALPHA[usize::from(qp.min(51))]);
    let beta = i32::from(BETA[usize::from(qp.min(51))]);
    let tc = i32::from(TC0[usize::from(qp.min(51))]).max(1);
    if alpha == 0 {
        return;
    }
    let (w, h) = (plane.width(), plane.height());
    let stride = plane.stride();
    // Vertical edges (filter across columns) — scalar at both levels.
    let data = plane.data_mut();
    let mut x = step;
    while x < w {
        for y in 0..h {
            let i = y * stride + x;
            let p1 = i32::from(data[i - 2]);
            let p0 = i32::from(data[i - 1]);
            let q0 = i32::from(data[i]);
            let q1 = i32::from(data[i + (x + 1 < w) as usize]);
            if (p0 - q0).abs() < alpha && (p1 - p0).abs() < beta && (q1 - q0).abs() < beta {
                let delta = (((q0 - p0) * 4 + (p1 - q1) + 4) >> 3).clamp(-tc, tc);
                data[i - 1] = (p0 + delta).clamp(0, 255) as u8;
                data[i] = (q0 - delta).clamp(0, 255) as u8;
            }
        }
        x += step;
    }
    // Horizontal edges — dispatched kernel. The bottom row of q1 samples
    // must exist; the last filterable edge is at y <= h - 2.
    let mut y = step;
    while y + 1 < h {
        dsp.deblock_horiz_edge(data, stride, y * stride, w, alpha, beta, tc);
        y += step;
    }
}

/// Runs the in-loop filter over a reconstructed frame.
pub(crate) fn deblock_frame(dsp: &Dsp, frame: &mut Frame, qp: u8) {
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::Deblock);
    deblock_plane(dsp, frame.y_mut(), 4, qp);
    // Chroma uses the 8x8 luma grid = 4x4 in chroma samples, with the
    // chroma QP (same value here: no chroma QP offset).
    deblock_plane(dsp, frame.cb_mut(), 4, qp);
    deblock_plane(dsp, frame.cr_mut(), 4, qp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdvb_dsp::SimdLevel;

    #[test]
    fn low_qp_disables_the_filter() {
        let mut f = Frame::new(32, 32);
        for (i, v) in f.y_mut().data_mut().iter_mut().enumerate() {
            *v = (i % 251) as u8;
        }
        let before = f.clone();
        deblock_frame(&Dsp::default(), &mut f, 10); // alpha[10] == 0
        assert_eq!(f, before);
    }

    #[test]
    fn smooths_small_blocking_steps() {
        let mut f = Frame::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                f.y_mut().set(x, y, if x < 4 { 100 } else { 106 });
            }
        }
        deblock_frame(&Dsp::default(), &mut f, 30);
        let p0 = f.y().get(3, 10);
        let q0 = f.y().get(4, 10);
        assert!(
            i32::from(q0) - i32::from(p0) < 6,
            "edge not smoothed: {p0} vs {q0}"
        );
    }

    #[test]
    fn preserves_real_edges() {
        let mut f = Frame::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                f.y_mut().set(x, y, if x < 8 { 40 } else { 160 });
            }
        }
        let before = f.y().get(7, 5);
        deblock_frame(&Dsp::default(), &mut f, 30);
        assert_eq!(f.y().get(7, 5), before);
    }

    #[test]
    fn flat_areas_are_untouched() {
        let mut f = Frame::new(32, 32);
        f.y_mut().fill(90);
        let before = f.clone();
        deblock_frame(&Dsp::default(), &mut f, 40);
        assert_eq!(f, before);
    }

    #[test]
    fn scalar_and_simd_filters_are_identical() {
        let mut a = Frame::new(48, 48);
        for (i, v) in a.y_mut().data_mut().iter_mut().enumerate() {
            *v = ((i * 7) % 256) as u8;
        }
        for (i, v) in a.cb_mut().data_mut().iter_mut().enumerate() {
            *v = ((i * 13) % 256) as u8;
        }
        let mut b = a.clone();
        deblock_frame(&Dsp::new(SimdLevel::Scalar), &mut a, 26);
        deblock_frame(&Dsp::new(SimdLevel::Sse2), &mut b, 26);
        assert_eq!(a, b);
    }
}
