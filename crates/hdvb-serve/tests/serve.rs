//! End-to-end serve-layer tests: backpressure policies, cancellation,
//! graceful drain, batch bit-identity and deterministic load
//! generation.

use hdvb_core::{encode_sequence, CodecId, CodecSession, CodingOptions, SessionInput};
use hdvb_frame::Resolution;
use hdvb_seq::{Sequence, SequenceId};
use hdvb_serve::{
    build_schedule, run_serve_bench, LoadSpec, OverflowPolicy, ServeMode, Server, ServerConfig,
    SubmitError,
};
use std::time::Duration;

fn small_seq() -> Sequence {
    Sequence::new(SequenceId::RushHour, Resolution::new(64, 48))
}

fn spec(seed: u64) -> LoadSpec {
    LoadSpec {
        codec: CodecId::Mpeg2,
        mode: ServeMode::Encode,
        sessions: 3,
        fps: 120,
        duration: Duration::from_millis(100),
        resolution: Resolution::new(64, 48),
        options: CodingOptions::default(),
        queue_capacity: 8,
        policy: OverflowPolicy::Block,
        seed,
        threads: 2,
    }
}

#[test]
fn single_session_serve_is_bit_identical_to_batch_encode() {
    let seq = small_seq();
    let options = CodingOptions::default();
    for codec in CodecId::ALL {
        let batch = encode_sequence(codec, seq, 6, &options).unwrap();
        let server = Server::new(ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        });
        let session = CodecSession::encoder(codec, seq.resolution(), &options).unwrap();
        let handle = server.open(session, true);
        for i in 0..6 {
            handle.submit(SessionInput::Frame(seq.frame(i))).unwrap();
        }
        handle.finish();
        let result = handle.wait();
        assert!(result.error.is_none(), "{codec}: {:?}", result.error);
        assert_eq!(result.packets, batch.packets, "{codec}");
        server.drain();
    }
}

#[test]
fn block_policy_under_slow_consumer_loses_nothing() {
    // One worker thread and a tiny queue force the producer to block;
    // the block policy must deliver every frame anyway.
    let seq = small_seq();
    let options = CodingOptions::default();
    let server = Server::new(ServerConfig {
        threads: 1,
        queue_capacity: 2,
        policy: OverflowPolicy::Block,
        ..ServerConfig::default()
    });
    let session = CodecSession::encoder(CodecId::H264, seq.resolution(), &options).unwrap();
    let handle = server.open(session, false);
    let frames = 30u32;
    for i in 0..frames {
        handle.submit(SessionInput::Frame(seq.frame(i))).unwrap();
    }
    handle.finish();
    let result = handle.wait();
    assert!(result.error.is_none());
    assert_eq!(result.completed, u64::from(frames));
    assert_eq!(result.discarded, 0);
    assert_eq!(result.queue.dropped, 0);
    server.drain();
}

#[test]
fn drop_oldest_sheds_load_but_every_input_is_accounted() {
    // A deliberately slow consumer (H.264 encode at a non-trivial
    // resolution, one worker) against a fast producer: the tiny queue
    // must evict, and admitted == completed + discarded afterwards.
    let seq = Sequence::new(SequenceId::RushHour, Resolution::new(288, 160));
    let options = CodingOptions::default();
    let server = Server::new(ServerConfig {
        threads: 1,
        queue_capacity: 2,
        policy: OverflowPolicy::DropOldest,
        ..ServerConfig::default()
    });
    let session = CodecSession::encoder(CodecId::H264, seq.resolution(), &options).unwrap();
    let handle = server.open(session, false);
    let prepared: Vec<_> = (0..40).map(|i| seq.frame(i)).collect();
    for f in prepared {
        handle.submit(SessionInput::Frame(f)).unwrap();
    }
    handle.finish();
    let result = handle.wait();
    assert!(result.error.is_none());
    assert!(result.discarded > 0, "queue never overflowed");
    assert_eq!(result.completed + result.discarded, 40);
    server.drain();
}

#[test]
fn cancel_mid_stream_leaves_the_pool_healthy() {
    let seq = small_seq();
    let options = CodingOptions::default();
    let server = Server::new(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let doomed = server.open(
        CodecSession::encoder(CodecId::H264, seq.resolution(), &options).unwrap(),
        false,
    );
    let survivor = server.open(
        CodecSession::encoder(CodecId::Mpeg2, seq.resolution(), &options).unwrap(),
        true,
    );
    for i in 0..4 {
        doomed.submit(SessionInput::Frame(seq.frame(i))).unwrap();
        survivor.submit(SessionInput::Frame(seq.frame(i))).unwrap();
    }
    // Cancel mid-GOP (B-frame lookahead still buffered, no finish).
    doomed.cancel();
    let cancelled = doomed.wait();
    assert!(
        matches!(cancelled.error, Some(hdvb_core::BenchError::Cancelled)),
        "{:?}",
        cancelled.error
    );
    // Submissions after cancellation are refused, not queued forever.
    assert_eq!(
        doomed.submit(SessionInput::Frame(seq.frame(9))),
        Err(SubmitError::SessionClosed)
    );

    // The untouched session and a brand-new one still run to completion
    // on the same pool.
    survivor.finish();
    let ok = survivor.wait();
    assert!(ok.error.is_none());
    assert_eq!(ok.completed, 4);
    let late = server.open(
        CodecSession::encoder(CodecId::Mpeg4, seq.resolution(), &options).unwrap(),
        false,
    );
    late.submit(SessionInput::Frame(seq.frame(0))).unwrap();
    late.finish();
    assert!(late.wait().error.is_none());
    server.drain();
    assert_eq!(server.active_sessions(), 0);
}

#[test]
fn drain_completes_all_in_flight_frames() {
    let seq = small_seq();
    let options = CodingOptions::default();
    let server = Server::new(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let handles: Vec<_> = (0..6)
        .map(|_| {
            server.open(
                CodecSession::encoder(CodecId::Mpeg2, seq.resolution(), &options).unwrap(),
                false,
            )
        })
        .collect();
    for h in &handles {
        for i in 0..8 {
            h.submit(SessionInput::Frame(seq.frame(i))).unwrap();
        }
        h.finish();
    }
    // Drain first: it must block until every queued frame completed.
    server.drain();
    assert_eq!(server.active_sessions(), 0);
    for h in &handles {
        let r = h.wait();
        assert!(r.error.is_none());
        assert_eq!(r.completed, 8);
        assert_eq!(r.discarded, 0);
    }
}

#[test]
fn schedule_is_deterministic_in_the_seed() {
    let s = spec(7);
    let items = vec![s.items_per_session(); s.sessions as usize];
    let a = build_schedule(&s, &items);
    let b = build_schedule(&s, &items);
    assert_eq!(a, b);
    let c = build_schedule(&spec(8), &items);
    assert_ne!(a, c, "different seeds produced identical jitter");
    // Per-session item order survives the global interleave.
    for session in 0..s.sessions {
        let order: Vec<u32> = a
            .iter()
            .filter(|x| x.session == session)
            .map(|x| x.item)
            .collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
    }
}

#[test]
fn serve_bench_admission_order_is_reproducible() {
    let first = run_serve_bench(&spec(42)).unwrap();
    let second = run_serve_bench(&spec(42)).unwrap();
    assert_eq!(first.admission_log, second.admission_log);
    assert_eq!(first.offered, first.admitted);
    assert_eq!(first.completed, first.offered);
    assert_eq!(first.discarded + first.rejected + first.errors, 0);
    assert!(first.percentile_ns(0.99) >= first.percentile_ns(0.50));
}

#[test]
fn decode_and_transcode_modes_complete() {
    for mode in [ServeMode::Decode, ServeMode::Transcode] {
        let s = LoadSpec {
            mode,
            codec: CodecId::H264,
            sessions: 2,
            ..spec(3)
        };
        let report = run_serve_bench(&s).unwrap();
        assert_eq!(report.errors, 0, "{mode:?}");
        assert_eq!(report.completed, report.admitted, "{mode:?}");
        assert!(report.completed > 0, "{mode:?}");
    }
}

#[cfg(target_os = "linux")]
#[test]
fn server_shutdown_leaks_no_worker_threads() {
    fn thread_count() -> usize {
        hdvb_serve::os_thread_count().expect("/proc/self/status")
    }
    let baseline = thread_count();
    {
        let seq = small_seq();
        let options = CodingOptions::default();
        let server = Server::new(ServerConfig {
            threads: 4,
            ..ServerConfig::default()
        });
        let h = server.open(
            CodecSession::encoder(CodecId::Mpeg2, seq.resolution(), &options).unwrap(),
            false,
        );
        h.submit(SessionInput::Frame(seq.frame(0))).unwrap();
        h.finish();
        h.wait();
        server.drain();
        assert!(thread_count() >= baseline + 4);
        drop(h);
        drop(server);
    }
    assert_eq!(thread_count(), baseline, "worker threads leaked");
}

#[test]
fn serve_traffic_recycles_through_the_global_pools() {
    // A fleet of encode sessions without keep_output: every output
    // packet is recycled by the pump, every pooled input frame is
    // recycled by the session, so pool hits and returns must both grow
    // by far more than the fleet's first-GOP warm-up. The counters are
    // process-global and monotone, so parallel tests can only add to
    // them — the deltas below are a lower bound on this test's own
    // traffic.
    let seq = small_seq();
    let options = CodingOptions::default();
    let frames = 24u32;
    let before_frames = hdvb_frame::FramePool::global().stats();
    let before_bufs = hdvb_frame::BufferPool::global().stats();
    let server = Server::new(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let s = CodecSession::encoder(CodecId::Mpeg2, seq.resolution(), &options).unwrap();
            server.open(s, false)
        })
        .collect();
    for i in 0..frames {
        for h in &handles {
            let src = seq.frame(i);
            let mut f = hdvb_frame::FramePool::global().take(src.width(), src.height());
            f.copy_from(&src);
            h.submit(SessionInput::Frame(f)).unwrap();
        }
    }
    for h in &handles {
        h.finish();
        let r = h.wait();
        assert!(r.error.is_none(), "{:?}", r.error);
        assert_eq!(r.completed, u64::from(frames));
    }
    server.drain();
    let after_frames = hdvb_frame::FramePool::global().stats();
    let after_bufs = hdvb_frame::BufferPool::global().stats();
    assert!(
        after_frames.hits > before_frames.hits,
        "frame pool never hit: {before_frames:?} -> {after_frames:?}"
    );
    assert!(
        after_frames.returns > before_frames.returns,
        "frames never recycled: {before_frames:?} -> {after_frames:?}"
    );
    assert!(
        after_bufs.returns > before_bufs.returns,
        "bitstream buffers never recycled: {before_bufs:?} -> {after_bufs:?}"
    );
}

#[test]
fn live_sessions_are_claimed_before_batch_under_saturation() {
    use hdvb_core::Priority;
    use hdvb_serve::OpenOptions;
    use std::sync::{Arc, Mutex};

    let seq = small_seq();
    let options = CodingOptions::default();
    let server = Server::new(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });
    let mk = || CodecSession::encoder(CodecId::Mpeg2, seq.resolution(), &options).unwrap();

    // A blocker session whose sink parks the only pool worker long
    // enough for the two contenders to queue up behind it.
    let blocker = server.open_with(
        mk(),
        OpenOptions {
            priority: Priority::Batch,
            sink: Some(Box::new(|_out| {
                std::thread::sleep(Duration::from_millis(500));
            })),
            ..OpenOptions::default()
        },
    );
    blocker.submit(SessionInput::Frame(seq.frame(0))).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let the pump start

    let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    let log = |tag: &'static str| -> hdvb_serve::OutputSink {
        let order = Arc::clone(&order);
        Box::new(move |_out| order.lock().unwrap().push(tag))
    };
    // Batch contender first, live second: claim-time priority must
    // still run the live session's work first.
    let batch = server.open_with(
        mk(),
        OpenOptions {
            priority: Priority::Batch,
            sink: Some(log("batch")),
            ..OpenOptions::default()
        },
    );
    batch.submit(SessionInput::Frame(seq.frame(0))).unwrap();
    batch.finish();
    let live = server.open_with(
        mk(),
        OpenOptions {
            priority: Priority::Live,
            sink: Some(log("live")),
            ..OpenOptions::default()
        },
    );
    live.submit(SessionInput::Frame(seq.frame(0))).unwrap();
    live.finish();

    blocker.finish();
    live.wait();
    batch.wait();
    server.drain();
    let order = order.lock().unwrap();
    assert_eq!(order.first().copied(), Some("live"), "order {order:?}");
    assert!(order.contains(&"batch"));
}

#[test]
fn fleet_latency_sees_recent_completions() {
    let seq = small_seq();
    let options = CodingOptions::default();
    let server = Server::new(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    assert_eq!(server.fleet_latency().count(), 0);
    let session = CodecSession::encoder(CodecId::Mpeg2, seq.resolution(), &options).unwrap();
    let handle = server.open(session, false);
    for i in 0..6 {
        handle
            .submit(SessionInput::Frame(seq.frame(i)))
            .expect("submit");
    }
    handle.finish();
    handle.wait();
    let fleet = server.fleet_latency();
    assert_eq!(fleet.count(), 6);
    assert!(fleet.percentile(0.99) > 0);
}

#[test]
fn sink_streams_the_same_packets_wait_would_return() {
    use hdvb_serve::OpenOptions;
    use std::sync::{Arc, Mutex};

    let seq = small_seq();
    let options = CodingOptions::default();
    let batch = encode_sequence(CodecId::Mpeg2, seq, 8, &options).unwrap();

    let server = Server::new(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let streamed: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_store = Arc::clone(&streamed);
    let session = CodecSession::encoder(CodecId::Mpeg2, seq.resolution(), &options).unwrap();
    let handle = server.open_with(
        session,
        OpenOptions {
            sink: Some(Box::new(move |out| {
                let mut store = sink_store.lock().unwrap();
                for p in &out.packets {
                    store.push(p.data.clone());
                }
            })),
            ..OpenOptions::default()
        },
    );
    for i in 0..8 {
        handle
            .submit(SessionInput::Frame(seq.frame(i)))
            .expect("submit");
    }
    handle.finish();
    let result = handle.wait();
    assert!(result.error.is_none());
    assert!(result.packets.is_empty(), "sink sessions retain nothing");
    let streamed = streamed.lock().unwrap();
    assert_eq!(streamed.len(), batch.packets.len());
    for (s, b) in streamed.iter().zip(&batch.packets) {
        assert_eq!(s, &b.data);
    }
}
