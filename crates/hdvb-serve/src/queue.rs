//! Bounded MPSC queues with explicit overflow policies.
//!
//! Every serve session owns one [`BoundedQueue`] between the admission
//! side (the load generator or an RPC front end) and the codec pump.
//! The capacity bound is the backpressure mechanism: when a session
//! falls behind, the queue either blocks the producer
//! ([`OverflowPolicy::Block`], lossless, latency grows) or evicts the
//! oldest queued item ([`OverflowPolicy::DropOldest`], lossy, latency
//! bounded). Which one is right depends on the workload — an archival
//! transcode must not lose frames, a live preview must not fall behind
//! — so the policy is a per-queue parameter, not a global.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// What a full queue does with the next push.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Block the producer until the consumer makes room (lossless
    /// backpressure; admission latency absorbs the overload).
    Block,
    /// Evict the oldest queued item to admit the new one (lossy
    /// backpressure; queueing delay stays bounded by the capacity).
    DropOldest,
}

impl OverflowPolicy {
    /// Parses `"block"` or `"drop-oldest"`.
    pub fn parse(s: &str) -> Option<OverflowPolicy> {
        match s {
            "block" => Some(OverflowPolicy::Block),
            "drop-oldest" | "drop_oldest" => Some(OverflowPolicy::DropOldest),
            _ => None,
        }
    }

    /// The canonical CLI/report spelling.
    pub fn name(self) -> &'static str {
        match self {
            OverflowPolicy::Block => "block",
            OverflowPolicy::DropOldest => "drop-oldest",
        }
    }
}

/// Occupancy and loss counters, snapshotted by [`BoundedQueue::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Successful pushes (including ones that evicted an older item).
    pub pushed: u64,
    /// Items evicted by [`OverflowPolicy::DropOldest`].
    pub dropped: u64,
    /// Pushes refused because the queue was already closed.
    pub rejected: u64,
    /// Highest depth observed immediately after a push.
    pub max_depth: usize,
    /// Sum of post-push depths (divide by `pushed` for the mean depth
    /// seen by arriving items).
    pub depth_sum: u64,
}

impl QueueStats {
    /// Mean queue depth observed by arriving items.
    pub fn mean_depth(&self) -> f64 {
        if self.pushed == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.pushed as f64
        }
    }
}

/// The error returned when pushing to a closed queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Closed;

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    stats: QueueStats,
}

/// A bounded FIFO with a per-queue [`OverflowPolicy`], safe for any
/// number of producers and consumers (serve uses it single-consumer).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled on push and on close (wakes poppers).
    not_empty: Condvar,
    /// Signalled on pop and on close (wakes blocked pushers).
    not_full: Condvar,
    capacity: usize,
    policy: OverflowPolicy,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize, policy: OverflowPolicy) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                stats: QueueStats::default(),
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            policy,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        // Queue state is a plain VecDeque plus whole-word counters, so a
        // panicked holder leaves it consistent (same reasoning as the
        // pool's lock helper).
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The queue's capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The queue's overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Pushes an item, applying the overflow policy when full: `Block`
    /// waits for room, `DropOldest` evicts and returns the evicted
    /// item.
    ///
    /// # Errors
    ///
    /// [`Closed`] when the queue was closed before the item was
    /// admitted (the item is returned alongside).
    pub fn push(&self, item: T) -> Result<Option<T>, (T, Closed)> {
        let mut g = self.lock();
        let mut evicted = None;
        loop {
            if g.closed {
                g.stats.rejected += 1;
                return Err((item, Closed));
            }
            if g.items.len() < self.capacity {
                break;
            }
            match self.policy {
                OverflowPolicy::Block => {
                    g = self.not_full.wait(g).unwrap_or_else(|e| e.into_inner());
                }
                OverflowPolicy::DropOldest => {
                    evicted = g.items.pop_front();
                    g.stats.dropped += 1;
                    break;
                }
            }
        }
        g.items.push_back(item);
        g.stats.pushed += 1;
        g.stats.max_depth = g.stats.max_depth.max(g.items.len());
        g.stats.depth_sum += g.items.len() as u64;
        drop(g);
        self.not_empty.notify_one();
        Ok(evicted)
    }

    /// Pops the oldest item without blocking; `None` when empty.
    pub fn try_pop(&self) -> Option<T> {
        let mut g = self.lock();
        let item = g.items.pop_front();
        drop(g);
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Pops the oldest item, blocking while the queue is empty and
    /// open; `None` once the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Closes the queue: pending items stay poppable, every subsequent
    /// or blocked push fails with [`Closed`], and blocked poppers wake.
    pub fn close(&self) {
        let mut g = self.lock();
        g.closed = true;
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`close`](Self::close) has run.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Snapshot of the occupancy/loss counters.
    pub fn stats(&self) -> QueueStats {
        self.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_stats() {
        let q = BoundedQueue::new(4, OverflowPolicy::Block);
        for i in 0..4 {
            assert_eq!(q.push(i).unwrap(), None);
        }
        assert_eq!(q.len(), 4);
        assert_eq!((q.try_pop(), q.try_pop()), (Some(0), Some(1)));
        let s = q.stats();
        assert_eq!((s.pushed, s.dropped, s.max_depth), (4, 0, 4));
        assert_eq!(s.depth_sum, 1 + 2 + 3 + 4);
    }

    #[test]
    fn drop_oldest_evicts_front_and_counts() {
        let q = BoundedQueue::new(2, OverflowPolicy::DropOldest);
        assert_eq!(q.push(1).unwrap(), None);
        assert_eq!(q.push(2).unwrap(), None);
        assert_eq!(q.push(3).unwrap(), Some(1));
        assert_eq!(q.push(4).unwrap(), Some(2));
        assert_eq!(
            (q.try_pop(), q.try_pop(), q.try_pop()),
            (Some(3), Some(4), None)
        );
        assert_eq!(q.stats().dropped, 2);
    }

    #[test]
    fn block_policy_waits_for_room() {
        let q = Arc::new(BoundedQueue::new(1, OverflowPolicy::Block));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).unwrap())
        };
        // The producer must be blocked: the queue stays at capacity.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(0));
        producer.join().unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.stats().dropped, 0);
    }

    #[test]
    fn close_wakes_blocked_pusher_and_popper() {
        let q = Arc::new(BoundedQueue::new(1, OverflowPolicy::Block));
        q.push(7u32).unwrap();
        let pusher = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(8))
        };
        let popper = {
            let q = Arc::new(BoundedQueue::<u32>::new(1, OverflowPolicy::Block));
            let q2 = Arc::clone(&q);
            let h = std::thread::spawn(move || q2.pop());
            q.close();
            h
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(pusher.join().unwrap().is_err());
        assert_eq!(popper.join().unwrap(), None);
        // Pending items survive close; new pushes are rejected.
        assert_eq!(q.pop(), Some(7));
        assert!(q.push(9).is_err());
        assert_eq!(q.stats().rejected, 2);
    }
}
