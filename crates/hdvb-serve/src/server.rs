//! The session multiplexer.
//!
//! A [`Server`] runs many concurrent [`CodecSession`]s over one
//! work-stealing [`ThreadPool`]. Sessions do not own threads: each one
//! is a *pump* — a short-lived pool task that drains the session's
//! bounded input queue, feeds the codec, and exits when the queue runs
//! dry. A session that receives input while no pump is running spawns
//! one; a session with a running pump just enqueues. Hundreds of mostly
//! idle sessions therefore cost nothing but their queue memory, while a
//! handful of busy ones saturate the pool.
//!
//! The pump handoff uses a claim flag (`pumping`): the submitter spawns
//! a pump only if it flips the flag from false to true, and a retiring
//! pump re-checks the queue *after* clearing the flag, re-claiming it
//! if work raced in. Exactly one pump runs per session at any time, so
//! the codec state machine needs no further synchronisation.
//!
//! Priority is applied at *claim* time: a freshly claimed session is
//! pushed into a per-class ready set, and the spawned pool task pops the
//! highest-priority ready session — not necessarily the one whose
//! submission spawned it. Ready entries and spawned tasks are always 1:1
//! so no claimed session is stranded; when the pool is saturated, every
//! freed worker picks up live traffic before batch.

use crate::metrics::SessionMetrics;
use crate::queue::{BoundedQueue, OverflowPolicy, QueueStats};
use hdvb_core::{BenchError, CodecSession, Packet, Priority, SessionInput, SessionOutput};
use hdvb_frame::{BufferPool, Frame, FramePool};
use hdvb_par::{CancelToken, ThreadPool};
use hdvb_trace::{LatencyHistogram, RollingHistogram};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Server-wide knobs, applied to every session it opens.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Pool worker threads; `0` means the machine's parallelism.
    pub threads: usize,
    /// Per-session input queue capacity.
    pub queue_capacity: usize,
    /// What a full session queue does with the next input.
    pub policy: OverflowPolicy,
    /// Width of the fleet's rolling latency window (feeds
    /// [`Server::fleet_latency`], which admission control reads).
    pub rolling_window: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 0,
            queue_capacity: 8,
            policy: OverflowPolicy::Block,
            rolling_window: Duration::from_secs(5),
        }
    }
}

/// Per-open knobs (the server-wide ones live in [`ServerConfig`]).
#[derive(Default)]
pub struct OpenOptions {
    /// Retain decoded frames and coded packets for
    /// [`SessionHandle::wait`]. Ignored when a `sink` is set.
    pub keep_output: bool,
    /// Scheduling class; see [`Priority`].
    pub priority: Priority,
    /// Streaming consumer: called by the pump (outside the session
    /// lock) with each step's outputs. Anything it leaves behind is
    /// recycled to the global pools.
    pub sink: Option<OutputSink>,
}

/// A streaming output consumer; see [`OpenOptions::sink`].
pub type OutputSink = Box<dyn FnMut(&mut SessionOutput) + Send>;

/// Why a submission was not admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The session already finished, failed or was cancelled.
    SessionClosed,
}

/// The terminal state of a session, returned by [`SessionHandle::wait`].
#[derive(Debug, Default)]
pub struct SessionResult {
    /// Coded packets, in emission order (empty unless the session was
    /// opened with `keep_output`).
    pub packets: Vec<Packet>,
    /// Decoded frames, in display order (empty unless `keep_output`).
    pub frames: Vec<Frame>,
    /// The error that terminated the session early, if any.
    pub error: Option<BenchError>,
    /// Inputs whose processing completed.
    pub completed: u64,
    /// Inputs discarded unprocessed (evicted by `DropOldest`, or
    /// drained after the session terminated early).
    pub discarded: u64,
    /// Corrupt packets dropped by a resilient session.
    pub corrupt_dropped: u64,
    /// Latency/jitter/throughput counters.
    pub metrics: SessionMetrics,
    /// Input queue occupancy and loss counters.
    pub queue: QueueStats,
}

/// One queued unit of work.
enum Work {
    Input(SessionInput, Instant),
    /// End of stream: flush lookahead and retire the session.
    Finish,
}

/// Mutable per-session state, touched only under its mutex (by the
/// single pump, or by `wait`/`cancel` at the edges).
struct SessionState {
    session: CodecSession,
    keep_output: bool,
    /// Per-step output staging, reused across every push so a
    /// steady-state pump allocates nothing: outputs land here, are
    /// either moved to `packets`/`frames` (`keep_output`) or recycled
    /// straight back to the global pools.
    scratch: SessionOutput,
    packets: Vec<Packet>,
    frames: Vec<Frame>,
    metrics: SessionMetrics,
    completed: u64,
    discarded: u64,
    error: Option<BenchError>,
    done: bool,
    /// Set once `wait` has consumed the result.
    taken: bool,
    /// Streaming consumer; taken out while it runs unlocked.
    sink: Option<OutputSink>,
}

struct SessionShared {
    queue: BoundedQueue<Work>,
    state: Mutex<SessionState>,
    done_cv: Condvar,
    /// Pump claim flag; see the module docs.
    pumping: AtomicBool,
    cancel: CancelToken,
    priority: Priority,
}

/// Fleet-wide bookkeeping: the drain count, the priority ready set the
/// pool tasks claim from, and the rolling latency window admission
/// control reads.
struct ServerInner {
    active: Mutex<usize>,
    drained: Condvar,
    /// Claimed-but-unpumped sessions, one deque per class (index =
    /// [`Priority::index`]). Always exactly one entry per spawned
    /// claim task.
    ready: Mutex<[VecDeque<Arc<SessionShared>>; 2]>,
    rolling: Mutex<RollingHistogram>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A multiplexing front end running codec sessions on a shared pool.
pub struct Server {
    pool: Arc<ThreadPool>,
    inner: Arc<ServerInner>,
    config: ServerConfig,
}

impl Server {
    /// A server with its own pool, per `config`.
    pub fn new(config: ServerConfig) -> Server {
        let threads = if config.threads == 0 {
            ThreadPool::default_threads()
        } else {
            config.threads
        };
        Server {
            pool: Arc::new(ThreadPool::new(threads)),
            inner: Arc::new(ServerInner {
                active: Mutex::new(0),
                drained: Condvar::new(),
                ready: Mutex::new([VecDeque::new(), VecDeque::new()]),
                rolling: Mutex::new(RollingHistogram::new(config.rolling_window, 10)),
            }),
            config,
        }
    }

    /// The fleet's frame latencies over the last
    /// [`rolling_window`](ServerConfig::rolling_window) — the signal an
    /// admission controller compares against its SLO. Recent samples
    /// only: a load burst ages out one window after it ends.
    pub fn fleet_latency(&self) -> LatencyHistogram {
        lock(&self.inner.rolling).snapshot()
    }

    /// Pool worker threads serving the sessions.
    pub fn threads(&self) -> usize {
        self.pool.thread_count()
    }

    /// Admits a session. `keep_output` retains decoded frames and coded
    /// packets for [`SessionHandle::wait`]; benchmarks pass `false` so
    /// a long run does not accumulate every output in memory.
    pub fn open(&self, session: CodecSession, keep_output: bool) -> SessionHandle {
        self.open_with(
            session,
            OpenOptions {
                keep_output,
                ..OpenOptions::default()
            },
        )
    }

    /// Admits a session with explicit scheduling class and output
    /// delivery; see [`OpenOptions`].
    pub fn open_with(&self, mut session: CodecSession, opts: OpenOptions) -> SessionHandle {
        let cancel = CancelToken::new();
        session.set_cancel(cancel.clone());
        let shared = Arc::new(SessionShared {
            queue: BoundedQueue::new(self.config.queue_capacity, self.config.policy),
            state: Mutex::new(SessionState {
                session,
                keep_output: opts.keep_output && opts.sink.is_none(),
                scratch: SessionOutput::new(),
                packets: Vec::new(),
                frames: Vec::new(),
                metrics: SessionMetrics::new(),
                completed: 0,
                discarded: 0,
                error: None,
                done: false,
                taken: false,
                sink: opts.sink,
            }),
            done_cv: Condvar::new(),
            pumping: AtomicBool::new(false),
            cancel,
            priority: opts.priority,
        });
        *lock(&self.inner.active) += 1;
        SessionHandle {
            shared,
            pool: Arc::clone(&self.pool),
            server: Arc::clone(&self.inner),
        }
    }

    /// Sessions opened but not yet retired.
    pub fn active_sessions(&self) -> usize {
        *lock(&self.inner.active)
    }

    /// Blocks until every opened session has retired (finished, failed
    /// or been cancelled). Graceful shutdown is `finish()` on every
    /// handle, then `drain()`: all in-flight and queued inputs complete
    /// before this returns.
    pub fn drain(&self) {
        let mut g = lock(&self.inner.active);
        while *g > 0 {
            g = self
                .inner
                .drained
                .wait(g)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The caller's handle to one open session.
pub struct SessionHandle {
    shared: Arc<SessionShared>,
    pool: Arc<ThreadPool>,
    server: Arc<ServerInner>,
}

impl SessionHandle {
    /// Submits one input, applying the queue's overflow policy (may
    /// block under [`OverflowPolicy::Block`]).
    ///
    /// # Errors
    ///
    /// [`SubmitError::SessionClosed`] once the session has finished,
    /// failed or been cancelled.
    pub fn submit(&self, input: SessionInput) -> Result<(), SubmitError> {
        match self.shared.queue.push(Work::Input(input, Instant::now())) {
            Ok(evicted) => {
                if let Some(work) = evicted {
                    // An eviction is a discard the pump never sees; its
                    // buffers go straight back to the pools.
                    lock(&self.shared.state).discarded += 1;
                    recycle_work(work);
                }
                self.spawn_pump_if_idle();
                Ok(())
            }
            Err((work, _)) => {
                recycle_work(work);
                Err(SubmitError::SessionClosed)
            }
        }
    }

    /// Signals end of stream. The pump flushes buffered lookahead and
    /// retires the session once everything queued ahead has completed.
    pub fn finish(&self) {
        if let Ok(evicted) = self.shared.queue.push(Work::Finish) {
            // Under DropOldest the end-of-stream marker can itself
            // evict a queued input.
            if let Some(work) = evicted {
                lock(&self.shared.state).discarded += 1;
                recycle_work(work);
            }
            self.spawn_pump_if_idle();
        }
    }

    /// Requests cooperative cancellation: the codec stops at its next
    /// picture boundary and the session retires with
    /// [`BenchError::Cancelled`], discarding whatever is still queued.
    pub fn cancel(&self) {
        self.shared.cancel.cancel();
        // The pump may be idle (empty queue) with no submission coming,
        // so retire the session directly rather than waiting for one.
        let mut st = lock(&self.shared.state);
        if !st.done {
            st.error = Some(BenchError::Cancelled);
            retire(&self.shared, &self.server, &mut st);
        }
        // Count whatever was still queued as discarded (the pump, if
        // one is running, discards anything it pops instead), and
        // return the dead inputs' buffers to the pools — a disconnect
        // must not leak its queue.
        while let Some(work) = self.shared.queue.try_pop() {
            st.discarded += 1;
            recycle_work(work);
        }
    }

    /// Blocks until the session retires and returns its result. The
    /// first call consumes the outputs and the error; later calls see
    /// them empty.
    pub fn wait(&self) -> SessionResult {
        let mut st = lock(&self.shared.state);
        while !st.done {
            st = self
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        let first = !st.taken;
        st.taken = true;
        SessionResult {
            packets: if first {
                std::mem::take(&mut st.packets)
            } else {
                Vec::new()
            },
            frames: if first {
                std::mem::take(&mut st.frames)
            } else {
                Vec::new()
            },
            error: if first { st.error.take() } else { None },
            completed: st.completed,
            // Evictions already land in `st.discarded` at submit time,
            // so the queue's own drop counter is reported only via
            // `queue`, never added here.
            discarded: st.discarded,
            corrupt_dropped: st.session.dropped(),
            metrics: st.metrics.clone(),
            queue: self.shared.queue.stats(),
        }
    }

    /// Whether the session has retired.
    pub fn is_done(&self) -> bool {
        lock(&self.shared.state).done
    }

    /// Current input queue depth (frames waiting for the codec).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Claims the pump flag; if nobody held it, registers the session
    /// in the server's ready set and spawns one claim task, which pops
    /// the highest-priority ready session (not necessarily this one).
    fn spawn_pump_if_idle(&self) {
        if !self.shared.pumping.swap(true, Ordering::AcqRel) {
            let server = Arc::clone(&self.server);
            lock(&server.ready)[self.shared.priority.index()].push_back(Arc::clone(&self.shared));
            self.pool.execute(move || claim_and_pump(&server));
        }
    }
}

/// Pops the highest-priority ready session and pumps it dry. Ready
/// entries and claim tasks are 1:1, so the pop always succeeds and
/// every claimed session gets exactly one pump.
fn claim_and_pump(server: &Arc<ServerInner>) {
    let next = {
        let mut ready = lock(&server.ready);
        let live = ready[Priority::Live.index()].pop_front();
        live.or_else(|| ready[Priority::Batch.index()].pop_front())
    };
    if let Some(shared) = next {
        pump(&shared, server);
    }
}

/// Drains the session queue on a pool worker. Holds the pump claim; on
/// empty, releases it and re-checks for racing submissions.
fn pump(shared: &Arc<SessionShared>, server: &Arc<ServerInner>) {
    loop {
        match shared.queue.try_pop() {
            Some(work) => process(shared, server, work),
            None => {
                shared.pumping.store(false, Ordering::Release);
                if shared.queue.is_empty() {
                    return;
                }
                // Work raced in between the pop and the release. Re-claim
                // unless the submitter's own check already spawned a
                // successor pump.
                if shared.pumping.swap(true, Ordering::AcqRel) {
                    return;
                }
            }
        }
    }
}

fn process(shared: &Arc<SessionShared>, server: &Arc<ServerInner>, work: Work) {
    let mut st = lock(&shared.state);
    if st.done {
        // Late items behind a terminal event drain without processing;
        // their buffers still go back to the pools.
        st.discarded += 1;
        recycle_work(work);
        return;
    }
    // Split borrows: the session writes into the state's own scratch.
    let SessionState {
        session, scratch, ..
    } = &mut *st;
    match work {
        Work::Input(input, arrival) => match session.push_into(input, scratch) {
            Ok(()) => {
                let now = Instant::now();
                let latency = now - arrival;
                st.metrics.record(latency, now);
                st.completed += 1;
                lock(&server.rolling).record(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
                drop(deliver(shared, st));
            }
            Err(e) => {
                st.scratch.recycle();
                st.error = Some(e);
                retire(shared, server, &mut st);
            }
        },
        Work::Finish => {
            match session.finish_into(scratch) {
                Ok(()) => {
                    let mut st = deliver(shared, st);
                    // A concurrent `cancel` may have retired the
                    // session while the sink ran unlocked.
                    if !st.done {
                        retire(shared, server, &mut st);
                    }
                    return;
                }
                Err(e) => {
                    st.scratch.recycle();
                    st.error = Some(e);
                }
            }
            retire(shared, server, &mut st);
        }
    }
}

/// Delivers the step's outputs: streamed through the session's sink
/// (run *outside* the state lock so a slow consumer never blocks
/// `cancel`/`wait`), retained for `wait` (`keep_output`), or recycled
/// straight back to the global pools. Returns the (re-acquired) guard.
fn deliver<'a>(
    shared: &'a Arc<SessionShared>,
    mut st: MutexGuard<'a, SessionState>,
) -> MutexGuard<'a, SessionState> {
    if let Some(mut sink) = st.sink.take() {
        let mut out = std::mem::take(&mut st.scratch);
        drop(st);
        sink(&mut out);
        out.recycle();
        let mut st = lock(&shared.state);
        // Hand the drained scratch back so its buffers keep their
        // capacity across steps.
        st.scratch = out;
        st.sink = Some(sink);
        st
    } else {
        if st.keep_output {
            let SessionState {
                scratch,
                packets,
                frames,
                ..
            } = &mut *st;
            packets.append(&mut scratch.packets);
            frames.append(&mut scratch.frames);
        } else {
            st.scratch.recycle();
        }
        st
    }
}

/// Returns a dead work item's buffers to the global pools.
fn recycle_work(work: Work) {
    if let Work::Input(input, _) = work {
        match input {
            SessionInput::Frame(frame) => FramePool::global().put(frame),
            SessionInput::Packet(data) => BufferPool::global().put(data),
        }
    }
}

/// Marks the session terminal: closes the queue (waking blocked
/// producers), wakes waiters, and releases the server's drain count.
fn retire(shared: &SessionShared, server: &ServerInner, st: &mut SessionState) {
    debug_assert!(!st.done);
    st.done = true;
    shared.queue.close();
    shared.done_cv.notify_all();
    let mut active = lock(&server.active);
    *active = active.saturating_sub(1);
    drop(active);
    server.drained.notify_all();
}
