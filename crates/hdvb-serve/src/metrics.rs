//! Per-session latency accounting.
//!
//! Frame latency here is *admission to completion*: the clock starts
//! when an input is accepted into the session queue and stops when the
//! codec pump has finished processing it. It therefore includes
//! queueing delay — which is the point: under overload, queueing is
//! where the latency goes, and a serve benchmark that only timed the
//! codec call would report a healthy p99 while frames aged in the
//! queue.

use hdvb_trace::LatencyHistogram;
use std::time::{Duration, Instant};

/// Latency, jitter and throughput counters for one session. Merge into
/// fleet-wide aggregates with [`merge`](Self::merge).
#[derive(Clone, Debug, Default)]
pub struct SessionMetrics {
    /// Log2 histogram of per-input admission-to-completion latencies.
    pub latency: LatencyHistogram,
    /// Sum of |latency - previous latency| in ns (RFC 3550-style
    /// inter-arrival jitter numerator, without the smoothing filter).
    jitter_sum_ns: u64,
    /// Number of consecutive-latency pairs in `jitter_sum_ns`.
    jitter_pairs: u64,
    last_latency_ns: Option<u64>,
    first_completion: Option<Instant>,
    last_completion: Option<Instant>,
}

impl SessionMetrics {
    /// An empty accumulator.
    pub fn new() -> SessionMetrics {
        SessionMetrics::default()
    }

    /// Records one completed input.
    pub fn record(&mut self, latency: Duration, completed_at: Instant) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.latency.record(ns);
        if let Some(prev) = self.last_latency_ns {
            self.jitter_sum_ns += prev.abs_diff(ns);
            self.jitter_pairs += 1;
        }
        self.last_latency_ns = Some(ns);
        if self.first_completion.is_none() {
            self.first_completion = Some(completed_at);
        }
        self.last_completion = Some(completed_at);
    }

    /// Completed inputs.
    pub fn completed(&self) -> u64 {
        self.latency.count()
    }

    /// Mean |latency - previous latency| in ns; the spread a viewer
    /// would perceive as stutter even when the mean latency is fine.
    pub fn jitter_mean_ns(&self) -> u64 {
        self.jitter_sum_ns
            .checked_div(self.jitter_pairs)
            .unwrap_or(0)
    }

    /// Completions per second over the first-to-last completion window
    /// (the *sustained* rate, which sags below the offered rate exactly
    /// when the fleet cannot keep up).
    pub fn sustained_fps(&self) -> f64 {
        match (self.first_completion, self.last_completion) {
            (Some(first), Some(last)) if last > first => {
                // n completions span n-1 inter-completion intervals.
                (self.completed().saturating_sub(1)) as f64 / (last - first).as_secs_f64()
            }
            _ => 0.0,
        }
    }

    /// Folds `other` into `self` (fleet aggregation). Jitter merges as
    /// a weighted mean of per-session jitter; cross-session latency
    /// deltas are meaningless and are not synthesised.
    pub fn merge(&mut self, other: &SessionMetrics) {
        self.latency.merge(&other.latency);
        self.jitter_sum_ns += other.jitter_sum_ns;
        self.jitter_pairs += other.jitter_pairs;
        self.last_latency_ns = None;
        self.first_completion = match (self.first_completion, other.first_completion) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_completion = match (self.last_completion, other.last_completion) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_mean_absolute_latency_delta() {
        let mut m = SessionMetrics::new();
        let t = Instant::now();
        for ns in [1_000u64, 3_000, 2_000] {
            m.record(Duration::from_nanos(ns), t);
        }
        // |3000-1000| = 2000, |2000-3000| = 1000 -> mean 1500.
        assert_eq!(m.jitter_mean_ns(), 1_500);
        assert_eq!(m.completed(), 3);
    }

    #[test]
    fn sustained_fps_spans_first_to_last_completion() {
        let mut m = SessionMetrics::new();
        let t0 = Instant::now();
        m.record(Duration::from_millis(1), t0);
        m.record(Duration::from_millis(1), t0 + Duration::from_millis(500));
        m.record(Duration::from_millis(1), t0 + Duration::from_secs(1));
        // 2 intervals over 1 s.
        assert!((m.sustained_fps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn merge_pools_latency_and_weights_jitter() {
        let t = Instant::now();
        let mut a = SessionMetrics::new();
        a.record(Duration::from_nanos(100), t);
        a.record(Duration::from_nanos(300), t + Duration::from_secs(1));
        let mut b = SessionMetrics::new();
        b.record(Duration::from_nanos(500), t + Duration::from_secs(2));
        a.merge(&b);
        assert_eq!(a.completed(), 3);
        assert_eq!(a.jitter_mean_ns(), 200);
        assert!((a.sustained_fps() - 1.0).abs() < 1e-9);
    }
}
