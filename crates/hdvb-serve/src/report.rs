//! Serve-bench reporting: the fleet latency table and
//! `BENCH_serve.json`.

use crate::loadgen::ServeMode;
use crate::queue::OverflowPolicy;
use hdvb_core::CodecId;
use hdvb_frame::{BufferPool, FramePool, PoolStats, Resolution};
use hdvb_trace::LatencyHistogram;
use std::time::Duration;

/// Global pool traffic attributable to one run: the [`FramePool`] and
/// [`BufferPool`] counter deltas between the run's start and end. A
/// falling hit rate here is a pool-efficiency regression — frames or
/// bitstream buffers leaking out of the recycle loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolsReport {
    /// Frame-pool traffic.
    pub frame: PoolStats,
    /// Bitstream-buffer-pool traffic.
    pub buffer: PoolStats,
}

impl PoolsReport {
    /// The global pools' counters right now.
    pub fn snapshot() -> PoolsReport {
        PoolsReport {
            frame: FramePool::global().stats(),
            buffer: BufferPool::global().stats(),
        }
    }

    /// Traffic between `earlier` and this snapshot.
    pub fn delta_since(&self, earlier: &PoolsReport) -> PoolsReport {
        PoolsReport {
            frame: self.frame.delta_since(&earlier.frame),
            buffer: self.buffer.delta_since(&earlier.buffer),
        }
    }
}

fn json_pool(s: &PoolStats) -> String {
    format!(
        concat!(
            "{{\"takes\":{},\"hits\":{},\"misses\":{},",
            "\"returns\":{},\"dropped\":{},\"hit_rate\":{:.4}}}"
        ),
        s.takes,
        s.hits,
        s.misses,
        s.returns,
        s.dropped,
        s.hit_rate()
    )
}

/// The `pools` JSON object shared by the serve and serve-load reports.
pub fn json_pools(p: &PoolsReport) -> String {
    format!(
        "{{\"frame\":{},\"buffer\":{}}}",
        json_pool(&p.frame),
        json_pool(&p.buffer)
    )
}

/// Per-session tail summary carried inside a [`ServeBenchReport`].
#[derive(Clone, Debug)]
pub struct SessionSummary {
    /// Session index.
    pub session: u32,
    /// Inputs whose processing completed.
    pub completed: u64,
    /// Inputs discarded unprocessed (queue eviction or late drain).
    pub discarded: u64,
    /// Median admission-to-completion latency, ns.
    pub p50_ns: u64,
    /// 99th-percentile latency, ns.
    pub p99_ns: u64,
    /// Mean absolute latency delta between consecutive inputs, ns.
    pub jitter_ns: u64,
    /// Completions per second over the session's active window.
    pub sustained_fps: f64,
    /// The error that retired the session early, if any.
    pub error: Option<String>,
}

/// Everything one serve-bench run measured.
#[derive(Clone, Debug)]
pub struct ServeBenchReport {
    /// Codec under test.
    pub codec: CodecId,
    /// Workload direction.
    pub mode: ServeMode,
    /// Concurrent sessions.
    pub sessions: u32,
    /// Offered per-session input rate.
    pub offered_fps: u32,
    /// Schedule length.
    pub duration: Duration,
    /// Frame size.
    pub resolution: Resolution,
    /// Queue overflow policy.
    pub policy: OverflowPolicy,
    /// Per-session queue capacity.
    pub queue_capacity: usize,
    /// Arrival-jitter seed.
    pub seed: u64,
    /// Pool worker threads that served the run.
    pub threads: usize,
    /// Inputs the schedule offered.
    pub offered: u64,
    /// Inputs admitted into session queues.
    pub admitted: u64,
    /// Inputs whose processing completed.
    pub completed: u64,
    /// Inputs discarded unprocessed.
    pub discarded: u64,
    /// Submissions refused because the session had already retired.
    pub rejected: u64,
    /// Corrupt packets dropped by resilient sessions.
    pub corrupt_dropped: u64,
    /// Sessions that retired with an error.
    pub errors: u64,
    /// Wall-clock time from first scheduled arrival to full drain.
    pub wall: Duration,
    /// Fleet-wide latency histogram (every session merged).
    pub fleet: LatencyHistogram,
    /// Fleet-wide mean jitter, ns.
    pub jitter_mean_ns: u64,
    /// Fleet-wide completions per second over the active window.
    pub sustained_fps: f64,
    /// Highest queue depth any session reached.
    pub max_queue_depth: usize,
    /// Mean post-push queue depth across all admissions.
    pub mean_queue_depth: f64,
    /// Per-session tails.
    pub per_session: Vec<SessionSummary>,
    /// Admission order actually executed, as `(session, item)` pairs —
    /// deterministic for a fixed seed.
    pub admission_log: Vec<(u32, u32)>,
    /// Global pool traffic over the run.
    pub pools: PoolsReport,
}

impl ServeBenchReport {
    /// Fleet latency percentile in ns (conservative bucket upper
    /// bound).
    pub fn percentile_ns(&self, p: f64) -> u64 {
        self.fleet.percentile(p)
    }

    /// The offered fleet rate: sessions × per-session fps.
    pub fn offered_fleet_fps(&self) -> f64 {
        f64::from(self.sessions) * f64::from(self.offered_fps)
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The fleet-wide latency/SLO table for a set of runs (one row per
/// codec/mode configuration).
pub fn serve_markdown(runs: &[ServeBenchReport]) -> String {
    let mut out = String::new();
    out.push_str(
        "| codec | mode  | sessions | offered fps | sustained fps | p50 | p95 | p99 | max | jitter | q-depth max/mean | dropped | pool hit% F/B |\n",
    );
    out.push_str(
        "|-------|-------|---------:|------------:|--------------:|----:|----:|----:|----:|-------:|-----------------:|--------:|--------------:|\n",
    );
    for r in runs {
        out.push_str(&format!(
            "| {} | {} | {} | {:.0} | {:.1} | {} | {} | {} | {} | {} | {}/{:.2} | {} | {:.0}/{:.0} |\n",
            r.codec.name(),
            r.mode.name(),
            r.sessions,
            r.offered_fleet_fps(),
            r.sustained_fps,
            fmt_ns(r.percentile_ns(0.50)),
            fmt_ns(r.percentile_ns(0.95)),
            fmt_ns(r.percentile_ns(0.99)),
            fmt_ns(r.fleet.max_ns()),
            fmt_ns(r.jitter_mean_ns),
            r.max_queue_depth,
            r.mean_queue_depth,
            r.discarded,
            r.pools.frame.hit_rate() * 100.0,
            r.pools.buffer.hit_rate() * 100.0,
        ));
    }
    out
}

fn json_session(s: &SessionSummary) -> String {
    format!(
        concat!(
            "{{\"session\":{},\"completed\":{},\"discarded\":{},",
            "\"p50_ns\":{},\"p99_ns\":{},\"jitter_ns\":{},",
            "\"sustained_fps\":{:.3},\"error\":{}}}"
        ),
        s.session,
        s.completed,
        s.discarded,
        s.p50_ns,
        s.p99_ns,
        s.jitter_ns,
        s.sustained_fps,
        match &s.error {
            Some(e) => format!("\"{}\"", hdvb_trace::json::escape(e)),
            None => "null".to_string(),
        }
    )
}

fn json_run(r: &ServeBenchReport) -> String {
    let sessions: Vec<String> = r.per_session.iter().map(json_session).collect();
    format!(
        concat!(
            "{{\"codec\":\"{}\",\"mode\":\"{}\",\"sessions\":{},",
            "\"offered_fps\":{},\"duration_s\":{:.3},",
            "\"resolution\":\"{}x{}\",\"policy\":\"{}\",",
            "\"queue_capacity\":{},\"seed\":{},\"threads\":{},",
            "\"offered\":{},\"admitted\":{},\"completed\":{},",
            "\"discarded\":{},\"rejected\":{},\"corrupt_dropped\":{},",
            "\"errors\":{},\"wall_s\":{:.3},",
            "\"latency_ns\":{{\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{},\"mean\":{}}},",
            "\"jitter_mean_ns\":{},\"sustained_fps\":{:.3},",
            "\"queue_depth\":{{\"max\":{},\"mean\":{:.3}}},",
            "\"pools\":{},",
            "\"per_session\":[{}]}}"
        ),
        r.codec.name(),
        r.mode.name(),
        r.sessions,
        r.offered_fps,
        r.duration.as_secs_f64(),
        r.resolution.width(),
        r.resolution.height(),
        r.policy.name(),
        r.queue_capacity,
        r.seed,
        r.threads,
        r.offered,
        r.admitted,
        r.completed,
        r.discarded,
        r.rejected,
        r.corrupt_dropped,
        r.errors,
        r.wall.as_secs_f64(),
        r.percentile_ns(0.50),
        r.percentile_ns(0.95),
        r.percentile_ns(0.99),
        r.fleet.max_ns(),
        r.fleet.mean_ns(),
        r.jitter_mean_ns,
        r.sustained_fps,
        r.max_queue_depth,
        r.mean_queue_depth,
        json_pools(&r.pools),
        sessions.join(",")
    )
}

/// The `BENCH_serve.json` document for a set of runs.
pub fn serve_json(runs: &[ServeBenchReport]) -> String {
    let body: Vec<String> = runs.iter().map(json_run).collect();
    format!(
        "{{\"schema\":\"hdvb-serve-bench/v1\",\"runs\":[{}]}}\n",
        body.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeBenchReport {
        let mut fleet = LatencyHistogram::new();
        for ns in [1_000u64, 2_000, 4_000, 1_000_000] {
            fleet.record(ns);
        }
        ServeBenchReport {
            codec: CodecId::H264,
            mode: ServeMode::Encode,
            sessions: 2,
            offered_fps: 30,
            duration: Duration::from_secs(1),
            resolution: Resolution::new(64, 48),
            policy: OverflowPolicy::Block,
            queue_capacity: 8,
            seed: 1,
            threads: 4,
            offered: 60,
            admitted: 60,
            completed: 60,
            discarded: 0,
            rejected: 0,
            corrupt_dropped: 0,
            errors: 0,
            wall: Duration::from_secs(2),
            fleet,
            jitter_mean_ns: 500,
            sustained_fps: 29.5,
            max_queue_depth: 3,
            mean_queue_depth: 1.25,
            per_session: vec![SessionSummary {
                session: 0,
                completed: 30,
                discarded: 0,
                p50_ns: 2_048,
                p99_ns: 1 << 20,
                jitter_ns: 500,
                sustained_fps: 29.5,
                error: None,
            }],
            admission_log: vec![(0, 0), (1, 0)],
            pools: PoolsReport::default(),
        }
    }

    #[test]
    fn markdown_has_a_row_per_run() {
        let md = serve_markdown(&[sample()]);
        assert!(md.contains("| h264 | encode | 2 | 60 |"), "{md}");
        assert!(md.lines().count() == 3);
    }

    #[test]
    fn json_parses_and_carries_the_slo_fields() {
        let doc = serve_json(&[sample()]);
        let v = hdvb_trace::json::parse(&doc).expect("valid json");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("hdvb-serve-bench/v1")
        );
        let runs = v.get("runs").and_then(|r| r.as_array()).unwrap();
        assert_eq!(runs.len(), 1);
        let lat = runs[0].get("latency_ns").unwrap();
        assert!(lat.get("p99").and_then(|p| p.as_f64()).unwrap() > 0.0);
        assert!(runs[0].get("queue_depth").is_some());
        let pools = runs[0].get("pools").expect("pools object");
        assert!(pools.get("frame").and_then(|f| f.get("hit_rate")).is_some());
        assert!(pools.get("buffer").and_then(|b| b.get("takes")).is_some());
    }

    #[test]
    fn pool_deltas_subtract_and_rate() {
        let a = PoolStats {
            takes: 10,
            hits: 8,
            misses: 2,
            returns: 9,
            dropped: 1,
        };
        let b = PoolStats {
            takes: 30,
            hits: 26,
            misses: 4,
            returns: 29,
            dropped: 1,
        };
        let d = b.delta_since(&a);
        assert_eq!(d.takes, 20);
        assert_eq!(d.hits, 18);
        assert_eq!(d.dropped, 0);
        assert!((d.hit_rate() - 0.9).abs() < 1e-9);
        assert_eq!(PoolStats::default().hit_rate(), 1.0);
    }
}
