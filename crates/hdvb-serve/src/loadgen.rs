//! The open-loop load generator.
//!
//! An open-loop generator decides *in advance* when every input
//! arrives, then walks that schedule against the wall clock regardless
//! of how the system responds — which is what exposes queueing
//! collapse: a closed-loop driver slows down with the server and hides
//! it. The schedule is fully deterministic: arrival jitter comes from
//! [`splitmix64`] keyed on `(seed, session, item)`, so the same seed
//! produces the same arrival times and therefore the same admission
//! order (the generator is a single thread walking a sorted schedule —
//! backpressure can delay admissions, never reorder them).

use crate::metrics::SessionMetrics;
use crate::queue::OverflowPolicy;
use crate::report::{PoolsReport, ServeBenchReport, SessionSummary};
use crate::server::{Server, ServerConfig, SessionHandle};
use hdvb_core::{encode_sequence, splitmix64, CodecId, CodecSession, CodingOptions, SessionInput};
use hdvb_frame::{BufferPool, Frame, FramePool, Resolution};
use hdvb_seq::{Sequence, SequenceId};
use hdvb_trace::LatencyHistogram;
use std::time::{Duration, Instant};

/// What each serve-bench session does with its inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeMode {
    /// Sessions encode synthetic frames (frames in, packets out).
    Encode,
    /// Sessions decode a pre-encoded stream (packets in, frames out).
    Decode,
    /// Sessions transcode a pre-encoded MPEG-2 stream to the target
    /// codec (packets in, packets out).
    Transcode,
}

impl ServeMode {
    /// Parses `"encode"`, `"decode"` or `"transcode"`.
    pub fn parse(s: &str) -> Option<ServeMode> {
        match s {
            "encode" => Some(ServeMode::Encode),
            "decode" => Some(ServeMode::Decode),
            "transcode" => Some(ServeMode::Transcode),
            _ => None,
        }
    }

    /// The canonical CLI/report spelling.
    pub fn name(self) -> &'static str {
        match self {
            ServeMode::Encode => "encode",
            ServeMode::Decode => "decode",
            ServeMode::Transcode => "transcode",
        }
    }
}

/// One serve-bench configuration.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Codec under test (encode/decode codec, or transcode target).
    pub codec: CodecId,
    /// Session workload direction.
    pub mode: ServeMode,
    /// Concurrent sessions.
    pub sessions: u32,
    /// Offered per-session input rate.
    pub fps: u32,
    /// Schedule length (per-session items = `fps × duration`, min 1).
    pub duration: Duration,
    /// Frame size for the synthetic sequences.
    pub resolution: Resolution,
    /// Coding options for the codecs.
    pub options: CodingOptions,
    /// Per-session input queue capacity.
    pub queue_capacity: usize,
    /// Overflow policy for the session queues.
    pub policy: OverflowPolicy,
    /// Arrival-jitter seed; same seed, same admission order.
    pub seed: u64,
    /// Pool worker threads (`0` = machine parallelism).
    pub threads: usize,
}

impl LoadSpec {
    /// Inputs each session receives under this spec.
    pub fn items_per_session(&self) -> u32 {
        ((f64::from(self.fps) * self.duration.as_secs_f64()).round() as u32).max(1)
    }
}

/// One scheduled admission: input `item` of `session` arrives `at_ns`
/// after the run starts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Offset from the run epoch, in ns.
    pub at_ns: u64,
    /// Target session index.
    pub session: u32,
    /// Per-session input index (frame or packet number).
    pub item: u32,
}

/// Builds the deterministic arrival schedule: item `i` of session `s`
/// arrives at `i × period` plus a uniform jitter in `[0, period)` drawn
/// from `splitmix64(seed, s, i)`. Per-session arrival times are
/// non-decreasing in `i`, so sorting by `(at_ns, session, item)`
/// preserves every session's input order while interleaving sessions.
pub fn build_schedule(spec: &LoadSpec, items_per_session: &[u32]) -> Vec<Arrival> {
    let period_ns = (1_000_000_000f64 / f64::from(spec.fps.max(1))).round() as u64;
    let mut schedule = Vec::new();
    for (s, &items) in items_per_session.iter().enumerate() {
        for i in 0..items {
            let key = spec
                .seed
                .wrapping_add((s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(u64::from(i).wrapping_mul(0xBF58_476D_1CE4_E5B9));
            let jitter = splitmix64(key) % period_ns.max(1);
            schedule.push(Arrival {
                at_ns: u64::from(i) * period_ns + jitter,
                session: s as u32,
                item: i,
            });
        }
    }
    schedule.sort_unstable_by_key(|a| (a.at_ns, a.session, a.item));
    schedule
}

/// Per-session input material, prepared before the clock starts so the
/// generator thread only copies into pooled buffers and submits.
enum SessionFeed {
    Frames(std::sync::Arc<Vec<Frame>>),
    Packets(std::sync::Arc<Vec<Vec<u8>>>),
}

impl SessionFeed {
    fn len(&self) -> u32 {
        match self {
            SessionFeed::Frames(f) => f.len() as u32,
            SessionFeed::Packets(p) => p.len() as u32,
        }
    }

    /// Materialises input `i` into a pool-backed buffer. The session
    /// recycles it after consumption, so in steady state the submit
    /// path allocates nothing.
    fn input(&self, i: u32) -> SessionInput {
        match self {
            SessionFeed::Frames(f) => {
                let src = &f[i as usize];
                let mut frame = FramePool::global().take(src.width(), src.height());
                frame.copy_from(src);
                SessionInput::Frame(frame)
            }
            SessionFeed::Packets(p) => {
                let src = &p[i as usize];
                let mut data = BufferPool::global().take(src.len());
                data.extend_from_slice(src);
                SessionInput::Packet(data)
            }
        }
    }
}

/// Renders or pre-encodes the per-session input material. Sessions
/// rotate over the paper's four sequences; material is shared between
/// sessions with the same rotation slot.
fn build_feeds(spec: &LoadSpec, items: u32) -> Result<Vec<SessionFeed>, String> {
    let unique = (SequenceId::ALL.len() as u32).min(spec.sessions).max(1) as usize;
    let mut cache: Vec<SessionFeed> = Vec::with_capacity(unique);
    for slot in 0..unique {
        let seq = Sequence::new(SequenceId::ALL[slot], spec.resolution);
        let feed = match spec.mode {
            ServeMode::Encode => {
                let frames: Vec<Frame> = (0..items).map(|i| seq.frame(i)).collect();
                SessionFeed::Frames(std::sync::Arc::new(frames))
            }
            ServeMode::Decode | ServeMode::Transcode => {
                // Decode sessions consume their own codec's stream;
                // transcode sessions consume MPEG-2 and emit the target.
                let source = match spec.mode {
                    ServeMode::Decode => spec.codec,
                    _ => CodecId::Mpeg2,
                };
                let encoded = encode_sequence(source, seq, items, &spec.options)
                    .map_err(|e| format!("pre-encoding {source} feed: {e}"))?;
                let packets = encoded.packets.into_iter().map(|p| p.data).collect();
                SessionFeed::Packets(std::sync::Arc::new(packets))
            }
        };
        cache.push(feed);
    }
    Ok((0..spec.sessions as usize)
        .map(|s| match &cache[s % unique] {
            SessionFeed::Frames(f) => SessionFeed::Frames(std::sync::Arc::clone(f)),
            SessionFeed::Packets(p) => SessionFeed::Packets(std::sync::Arc::clone(p)),
        })
        .collect())
}

fn open_session(spec: &LoadSpec, server: &Server) -> Result<SessionHandle, String> {
    let session = match spec.mode {
        ServeMode::Encode => CodecSession::encoder(spec.codec, spec.resolution, &spec.options)
            .map_err(|e| e.to_string())?,
        ServeMode::Decode => CodecSession::decoder(spec.codec, spec.options.simd),
        ServeMode::Transcode => {
            CodecSession::transcoder(CodecId::Mpeg2, spec.codec, spec.resolution, &spec.options)
                .map_err(|e| e.to_string())?
        }
    };
    Ok(server.open(session, false))
}

/// Runs one open-loop serve benchmark to completion and reports.
///
/// # Errors
///
/// Propagates session-construction and feed-preparation failures;
/// per-session runtime errors are reported, not fatal.
pub fn run_serve_bench(spec: &LoadSpec) -> Result<ServeBenchReport, String> {
    let pools_before = PoolsReport::snapshot();
    let items = spec.items_per_session();
    let feeds = build_feeds(spec, items)?;
    let items_per_session: Vec<u32> = feeds.iter().map(SessionFeed::len).collect();
    let schedule = build_schedule(spec, &items_per_session);

    let server = Server::new(ServerConfig {
        threads: spec.threads,
        queue_capacity: spec.queue_capacity,
        policy: spec.policy,
        ..ServerConfig::default()
    });
    let handles: Vec<SessionHandle> = (0..spec.sessions)
        .map(|_| open_session(spec, &server))
        .collect::<Result<_, _>>()?;

    // The generator: one thread, walking the schedule against the wall
    // clock. A submission that blocks (Block policy) delays later
    // admissions but never reorders them.
    let mut admission_log = Vec::with_capacity(schedule.len());
    let mut rejected = 0u64;
    let epoch = Instant::now();
    for a in &schedule {
        let target = epoch + Duration::from_nanos(a.at_ns);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let input = feeds[a.session as usize].input(a.item);
        match handles[a.session as usize].submit(input) {
            Ok(()) => admission_log.push((a.session, a.item)),
            Err(_) => rejected += 1,
        }
    }
    for h in &handles {
        h.finish();
    }

    let results: Vec<_> = handles.iter().map(SessionHandle::wait).collect();
    server.drain();
    let wall = epoch.elapsed();

    let mut fleet = SessionMetrics::new();
    let mut fleet_hist = LatencyHistogram::new();
    let mut completed = 0u64;
    let mut discarded = 0u64;
    let mut corrupt_dropped = 0u64;
    let mut errors = 0u64;
    let mut max_depth = 0usize;
    let mut depth_sum = 0u64;
    let mut depth_pushes = 0u64;
    let mut per_session = Vec::with_capacity(results.len());
    for (s, r) in results.iter().enumerate() {
        fleet.merge(&r.metrics);
        fleet_hist.merge(&r.metrics.latency);
        completed += r.completed;
        discarded += r.discarded;
        corrupt_dropped += r.corrupt_dropped;
        if r.error.is_some() {
            errors += 1;
        }
        max_depth = max_depth.max(r.queue.max_depth);
        depth_sum += r.queue.depth_sum;
        depth_pushes += r.queue.pushed;
        per_session.push(SessionSummary {
            session: s as u32,
            completed: r.completed,
            discarded: r.discarded,
            p50_ns: r.metrics.latency.percentile(0.50),
            p99_ns: r.metrics.latency.percentile(0.99),
            jitter_ns: r.metrics.jitter_mean_ns(),
            sustained_fps: r.metrics.sustained_fps(),
            error: r.error.as_ref().map(|e| e.to_string()),
        });
    }

    Ok(ServeBenchReport {
        codec: spec.codec,
        mode: spec.mode,
        sessions: spec.sessions,
        offered_fps: spec.fps,
        duration: spec.duration,
        resolution: spec.resolution,
        policy: spec.policy,
        queue_capacity: spec.queue_capacity,
        seed: spec.seed,
        threads: server.threads(),
        offered: schedule.len() as u64,
        admitted: admission_log.len() as u64,
        completed,
        discarded,
        rejected,
        corrupt_dropped,
        errors,
        wall,
        fleet: fleet_hist,
        jitter_mean_ns: fleet.jitter_mean_ns(),
        sustained_fps: fleet.sustained_fps(),
        max_queue_depth: max_depth,
        mean_queue_depth: if depth_pushes == 0 {
            0.0
        } else {
            depth_sum as f64 / depth_pushes as f64
        },
        per_session,
        admission_log,
        pools: PoolsReport::snapshot().delta_since(&pools_before),
    })
}
