//! The streaming transcode service layer.
//!
//! HD-VideoBench's batch runners answer "how fast is one codec on one
//! clip". Production video infrastructure asks a different question:
//! how many concurrent encode/decode/transcode *sessions* can a
//! machine sustain while every frame still meets its latency SLO? This
//! crate answers it:
//!
//! - [`Server`] multiplexes hundreds of incremental
//!   [`CodecSession`](hdvb_core::CodecSession)s over one work-stealing
//!   pool, with per-session bounded input queues ([`BoundedQueue`])
//!   whose [`OverflowPolicy`] makes the backpressure contract explicit
//!   (block the producer, or shed the oldest frame).
//! - Sessions cancel cooperatively mid-stream and a [`Server::drain`]
//!   completes all in-flight work before shutdown.
//! - [`run_serve_bench`] drives the server with a deterministic,
//!   seeded *open-loop* load schedule ([`build_schedule`]) and reports
//!   fleet-wide p50/p95/p99 frame latency, jitter, queue depth and
//!   sustained throughput ([`ServeBenchReport`], rendered by
//!   [`serve_markdown`]/[`serve_json`]).
//!
//! A single-session serve run pushes exactly the inputs the batch path
//! would, in the same order, so its output is bit-identical to
//! `encode`/`decode` — serving changes scheduling, never results
//! (enforced in `tests/serve.rs`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod ladder;
mod loadgen;
mod metrics;
mod queue;
mod report;
mod server;

pub use ladder::{run_ladder_serve, ServeLadder, ServeRung};
pub use loadgen::{build_schedule, run_serve_bench, Arrival, LoadSpec, ServeMode};
pub use metrics::SessionMetrics;
pub use queue::{BoundedQueue, Closed, OverflowPolicy, QueueStats};
pub use report::{
    json_pools, serve_json, serve_markdown, PoolsReport, ServeBenchReport, SessionSummary,
};
pub use server::{
    OpenOptions, OutputSink, Server, ServerConfig, SessionHandle, SessionResult, SubmitError,
};

/// The number of OS threads in this process, from `/proc/self/status`
/// (`None` where /proc is unavailable). Thread-leak tests compare this
/// before and after a server's lifetime: a clean shutdown must return
/// the process to its baseline thread count.
pub fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}
