//! Serving an ABR ladder: one [`CodecSession`] per rung, sharing the
//! decoded source frames through the global pools.
//!
//! The core runner ([`hdvb_core::run_ladder`]) is the batch shape: it
//! owns the whole fan-out loop. This module is the *service* shape of
//! the same workload — each rung of each segment is an encoder session
//! opened on a [`Server`], input frames are scaled into pool-recycled
//! buffers and submitted through the bounded session queues, and the
//! pump threads drive the encodes concurrently. The submitted frames
//! come from [`FramePool::global`] and every encode session recycles
//! its input back to that pool after coding, so a steady-state ladder
//! allocates nothing per frame.
//!
//! Sessions are opened fresh per (rung × segment), exactly mirroring
//! the core runner's closed-segment construction, so for a given spec
//! the spliced rung streams here are **bit-identical** to
//! [`hdvb_core::run_ladder`]'s — asserted by `tests/ladder_conformance.rs`.
//! That equivalence is what lets capacity numbers measured through the
//! serve layer be compared with the batch transcode numbers.

use crate::server::{Server, SessionResult};
use hdvb_core::{BenchError, CodecSession, FrameScaler, LadderSpec, Packet, SessionInput};
use hdvb_dsp::Dsp;
use hdvb_frame::{Frame, FramePool, Resolution};
use std::time::{Duration, Instant};

/// One rung stream produced by [`run_ladder_serve`].
#[derive(Clone, Debug)]
pub struct ServeRung {
    /// The rung's output geometry.
    pub resolution: Resolution,
    /// Spliced packets, display indices in sequence order.
    pub packets: Vec<Packet>,
    /// Packet index where each segment begins (intra entry points,
    /// aligned across rungs).
    pub segment_starts: Vec<usize>,
    /// Total coded bits.
    pub bits: u64,
}

/// Outcome of [`run_ladder_serve`].
#[derive(Clone, Debug)]
pub struct ServeLadder {
    /// Per-rung streams, in spec order.
    pub rungs: Vec<ServeRung>,
    /// Source frames transcoded into every rung.
    pub frames: u32,
    /// Wall-clock time of the whole fan-out.
    pub wall: Duration,
    /// Inputs completed across all rung sessions.
    pub completed: u64,
}

/// Fans `source` out to one encoder session per rung on `server`,
/// segment by segment.
///
/// Within a segment all rung sessions are open at once: the submitter
/// scales frame `i` once per rung (into frames taken from the global
/// pool) and submits to every rung before moving to `i + 1`, so the
/// pump threads see concurrent per-rung work while submission order —
/// and therefore output — stays deterministic.
///
/// # Errors
///
/// Propagates spec validation errors exactly as
/// [`hdvb_core::run_ladder`] does, and any codec error raised inside a
/// rung session (first rung in spec order wins).
pub fn run_ladder_serve(
    server: &Server,
    source: &[Frame],
    spec: &LadderSpec,
) -> Result<ServeLadder, BenchError> {
    if source.is_empty() {
        return Err(BenchError::BadRequest(
            "ladder needs at least one source frame",
        ));
    }
    if spec.rungs.is_empty() {
        return Err(BenchError::BadRequest("ladder needs at least one rung"));
    }
    let gop = u32::from(spec.options.b_frames) + 1;
    if spec.switch_interval == 0 || !spec.switch_interval.is_multiple_of(gop) {
        return Err(BenchError::BadRequest(
            "switch interval must be a positive multiple of the GOP length",
        ));
    }
    let src_res = Resolution::new(source[0].width() as u32, source[0].height() as u32);
    let dsp = Dsp::new(spec.options.simd);
    let mut scalers: Vec<FrameScaler> = spec
        .rungs
        .iter()
        .map(|&r| FrameScaler::new(dsp, src_res, r))
        .collect::<Result<_, _>>()?;

    let frames = source.len() as u32;
    let mut rungs: Vec<ServeRung> = spec
        .rungs
        .iter()
        .map(|&r| ServeRung {
            resolution: r,
            packets: Vec::new(),
            segment_starts: Vec::new(),
            bits: 0,
        })
        .collect();

    let t0 = Instant::now();
    let mut completed = 0u64;
    let mut start = 0u32;
    while start < frames {
        let end = frames.min(start + spec.switch_interval);
        // One fresh encoder session per rung: closed segment streams,
        // exactly like the core runner's cells.
        let handles: Vec<_> = spec
            .rungs
            .iter()
            .map(|&rung| {
                CodecSession::encoder(spec.codec, rung, &spec.options).map(|s| server.open(s, true))
            })
            .collect::<Result<_, _>>()?;
        for i in start..end {
            for (scaler, handle) in scalers.iter_mut().zip(&handles) {
                let rung = scaler.dst();
                let mut scaled = FramePool::global().take(rung.width(), rung.height());
                scaler.scale_into(&source[i as usize], &mut scaled);
                // A closed session means it already failed; surface the
                // error through wait() below rather than here.
                let _ = handle.submit(SessionInput::Frame(scaled));
            }
        }
        for handle in &handles {
            handle.finish();
        }
        for (rung, handle) in rungs.iter_mut().zip(&handles) {
            let mut result: SessionResult = handle.wait();
            if let Some(err) = result.error.take() {
                return Err(err);
            }
            completed += result.completed;
            rung.segment_starts.push(rung.packets.len());
            for mut p in result.packets {
                p.display_index += start;
                rung.bits += p.bits();
                rung.packets.push(p);
            }
        }
        start = end;
    }

    Ok(ServeLadder {
        rungs,
        frames,
        wall: t0.elapsed(),
        completed,
    })
}
