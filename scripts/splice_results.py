#!/usr/bin/env python3
"""Splices the measured Table V / Figure 1 sweeps into EXPERIMENTS.md.

Usage: python3 scripts/splice_results.py
Reads results_table5.md and results_figure1.md from the repository root
and replaces the TABLE5_MEASURED / FIGURE1_MEASURED markers.
"""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent


def indent_block(path: pathlib.Path) -> str:
    text = path.read_text().strip()
    # Drop the leading title line the CLI prints; keep the tables.
    lines = text.splitlines()
    if lines and lines[0].startswith("# "):
        lines = lines[1:]
    return "\n".join(lines).strip()


def main() -> None:
    exp = ROOT / "EXPERIMENTS.md"
    content = exp.read_text()
    for marker, source in [
        ("<!-- TABLE5_MEASURED -->", ROOT / "results_table5.md"),
        ("<!-- FIGURE1_MEASURED -->", ROOT / "results_figure1.md"),
    ]:
        if not source.exists() or source.stat().st_size == 0:
            print(f"skipping {source.name}: not ready")
            continue
        block = indent_block(source)
        if marker in content:
            content = content.replace(marker, block)
            print(f"spliced {source.name}")
        else:
            # Already spliced once: refresh between the heading and the
            # next '**Shape' marker is too fragile; just report.
            print(f"marker for {source.name} already replaced")
    exp.write_text(content)


if __name__ == "__main__":
    main()
