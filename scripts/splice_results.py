#!/usr/bin/env python3
"""Splices the measured Table V / Figure 1 sweeps into EXPERIMENTS.md.

Usage: python3 scripts/splice_results.py
Reads results_table5.md and results_figure1.md from the repository root
and replaces the measured block of the matching EXPERIMENTS.md section:
everything between the section's "Measured (full output in ...)" line
and its "**Shape assessment.**" heading. Re-running after a fresh sweep
refreshes the tables in place; the prose around them is never touched.
"""

import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent


def results_body(path: pathlib.Path) -> str:
    text = path.read_text().strip()
    # Drop the leading title line the CLI prints; keep the tables.
    lines = text.splitlines()
    if lines and lines[0].startswith("# "):
        lines = lines[1:]
    return "\n".join(lines).strip()


def splice_section(content: str, start_marker: str, block: str, name: str) -> str:
    end_marker = "**Shape assessment.**"
    start = content.find(start_marker)
    if start == -1:
        print(f"skipping {name}: marker line not found in EXPERIMENTS.md")
        return content
    body_start = start + len(start_marker)
    end = content.find(end_marker, body_start)
    if end == -1:
        print(f"skipping {name}: no shape-assessment heading after marker")
        return content
    print(f"spliced {name}")
    return content[:body_start] + "\n\n" + block + "\n\n" + content[end:]


def main() -> None:
    exp = ROOT / "EXPERIMENTS.md"
    content = exp.read_text()
    for name, source in [
        ("results_table5.md", ROOT / "results_table5.md"),
        ("results_figure1.md", ROOT / "results_figure1.md"),
    ]:
        if not source.exists() or source.stat().st_size == 0:
            print(f"skipping {name}: not ready")
            continue
        marker = f"Measured (full output in [`{name}`]({name})):"
        content = splice_section(content, marker, results_body(source), name)
    exp.write_text(content)


if __name__ == "__main__":
    main()
