#!/usr/bin/env sh
# CI gate for the HD-VideoBench workspace: formatting, lints, release
# build and the full test suite. Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release (workspace, including the hdvb binary)"
cargo build --release --workspace

echo "==> cargo test (HDVB_SIMD=scalar)"
HDVB_SIMD=scalar cargo test -q --workspace

echo "==> cargo test (HDVB_SIMD=auto)"
HDVB_SIMD=auto cargo test -q --workspace

echo "==> traced smoke encode + chrome-trace check"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
./target/release/hdvb encode --codec h264 --sequence rush_hour \
    --resolution 96x80 --frames 4 --trace "$tmpdir/trace.json" \
    -o "$tmpdir/out.hvb" 2> "$tmpdir/summary.txt"
python3 scripts/check_trace.py "$tmpdir/trace.json"
grep -q "stage coverage of encode_frame" "$tmpdir/summary.txt" || {
    echo "traced encode printed no stage-coverage summary" >&2
    cat "$tmpdir/summary.txt" >&2
    exit 1
}

echo "==> disabled-path overhead guard (probe must stay one atomic load)"
cargo test -q -p hdvb-trace disabled_probe_is_cheap

echo "==> deterministic fuzz smoke (replays tests/corpus, then 20s of mutation)"
./target/release/hdvb fuzz --seconds 20 --seed 7 --corpus tests/corpus

echo "CI green."
