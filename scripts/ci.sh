#!/usr/bin/env sh
# CI gate for the HD-VideoBench workspace: formatting, lints, release
# build and the full test suite. Run from the repository root.
set -eu
# A failure must not be masked by a downstream pipe stage (POSIX sh
# guard: dash < 0.5.12 has no pipefail).
(set -o pipefail) 2>/dev/null && set -o pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release (workspace, including the hdvb binary)"
cargo build --release --workspace

echo "==> cargo test (HDVB_SIMD=scalar)"
HDVB_SIMD=scalar cargo test -q --workspace

echo "==> cargo test (HDVB_SIMD=auto)"
HDVB_SIMD=auto cargo test -q --workspace

echo "==> traced smoke encode + chrome-trace check"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
./target/release/hdvb encode --codec h264 --sequence rush_hour \
    --resolution 96x80 --frames 4 --trace "$tmpdir/trace.json" \
    -o "$tmpdir/out.hvb" 2> "$tmpdir/summary.txt"
python3 scripts/check_trace.py "$tmpdir/trace.json"
grep -q "stage coverage of encode_frame" "$tmpdir/summary.txt" || {
    echo "traced encode printed no stage-coverage summary" >&2
    cat "$tmpdir/summary.txt" >&2
    exit 1
}

echo "==> disabled-path overhead guard (probe must stay one atomic load)"
cargo test -q -p hdvb-trace disabled_probe_is_cheap

echo "==> allocation-regression gate (steady-state sessions: 0 heap allocs/frame)"
# Every codec x {encode, decode, transcode} through the pooled session
# API: after the warm-up window, a single step that allocates fails the
# build (see DESIGN.md section 14). --nocapture prints the per-stage
# table.
cargo test --release -q -p hdvb-bench --test alloc_gate -- --nocapture

echo "==> deterministic fuzz smoke (replays tests/corpus, then 20s of mutation)"
./target/release/hdvb fuzz --seconds 20 --seed 7 --corpus tests/corpus

echo "==> chaos smoke (seeded panic + stall injection, then clean resume)"
# Cell 2 panics on all three attempts (exhausts the default 2 retries),
# cell 4 stalls past its 2 s budget. The sweep must finish anyway,
# report both cells, and a clean --resume must heal the table.
HDVB_FAULTS="panic@2x3,stall@4:4000x1,seed=7" ./target/release/hdvb figure1 \
    --frames 2 --scale 8 --threads 2 --simd scalar --part a --cell-timeout 2 \
    --journal "$tmpdir/sweep.journal" > "$tmpdir/chaos.txt" 2>&1
grep -q "1 failed, 1 timed out" "$tmpdir/chaos.txt" || {
    echo "chaos sweep did not report the injected failures" >&2
    cat "$tmpdir/chaos.txt" >&2
    exit 1
}
./target/release/hdvb figure1 \
    --frames 2 --scale 8 --threads 2 --simd scalar --part a --cell-timeout 2 \
    --journal "$tmpdir/sweep.journal" --resume > "$tmpdir/resume.txt" 2>&1
grep -q "0 failed, 0 timed out" "$tmpdir/resume.txt" || {
    echo "resume did not heal the chaos sweep" >&2
    cat "$tmpdir/resume.txt" >&2
    exit 1
}
if grep -q "n/a" "$tmpdir/resume.txt"; then
    echo "resumed figure1 table still has unmeasured cells" >&2
    cat "$tmpdir/resume.txt" >&2
    exit 1
fi

echo "==> serve smoke (8 sessions x 30 fps x 5 s, block policy: lossless, finite p99)"
(cd "$tmpdir" && "$OLDPWD/target/release/hdvb" serve-bench --codec mpeg2 \
    --sessions 8 --fps 30 --duration 5 --resolution 96x80 --seed 7 \
    > serve.txt 2> serve.log)
grep -q "clean shutdown" "$tmpdir/serve.log" || {
    echo "serve-bench did not report a clean shutdown" >&2
    cat "$tmpdir/serve.log" >&2
    exit 1
}
python3 - "$tmpdir/BENCH_serve.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "hdvb-serve-bench/v1", doc.get("schema")
(run,) = doc["runs"]
assert run["policy"] == "block"
# Block policy is lossless: every offered frame admitted and completed.
assert run["offered"] == run["admitted"] == run["completed"], run
assert run["discarded"] == 0 and run["rejected"] == 0 and run["errors"] == 0, run
p99 = run["latency_ns"]["p99"]
assert 0 < p99 < 2**40, p99
assert run["queue_depth"]["max"] >= 1
print(f"serve smoke ok: {run['completed']} frames, p99 {p99/1e6:.2f} ms")
EOF

echo "==> loopback TCP smoke (serve --bind + connect transcode, byte-identical to in-process serve)"
# Build a small MPEG-2 source, transcode it to H.264 twice — once
# through the in-process serve path, once over a real TCP connection —
# and require the output containers to be byte-identical: the wire
# moves bytes, never changes them.
./target/release/hdvb encode --codec mpeg2 --sequence blue_sky \
    --resolution 96x80 --frames 8 -o "$tmpdir/src.hvb" > /dev/null
./target/release/hdvb serve -i "$tmpdir/src.hvb" --codec h264 --threads 1 \
    -o "$tmpdir/local.hvb" > /dev/null
./target/release/hdvb serve --bind 127.0.0.1:0 --seconds 20 \
    > "$tmpdir/net.log" 2>&1 &
net_pid=$!
for _ in $(seq 1 100); do
    grep -q "listening on" "$tmpdir/net.log" 2>/dev/null && break
    sleep 0.1
done
net_addr=$(sed -n 's/.*listening on //p' "$tmpdir/net.log" | head -1)
[ -n "$net_addr" ] || { echo "serve --bind never came up" >&2; cat "$tmpdir/net.log" >&2; exit 1; }
./target/release/hdvb connect --addr "$net_addr" -i "$tmpdir/src.hvb" \
    --codec h264 --priority live -o "$tmpdir/remote.hvb" > "$tmpdir/connect.txt"
wait "$net_pid"
cmp "$tmpdir/local.hvb" "$tmpdir/remote.hvb" || {
    echo "TCP transcode diverged from in-process serve" >&2
    exit 1
}
grep -Eq "live +admitted 1" "$tmpdir/net.log" || {
    echo "server stats did not count the live session" >&2
    cat "$tmpdir/net.log" >&2
    exit 1
}
echo "loopback smoke ok: remote.hvb == local.hvb"

echo "==> serve-load smoke (TCP saturation sweep, loadcurve schema check)"
(cd "$tmpdir" && "$OLDPWD/target/release/hdvb" serve-load --codec mpeg2 \
    --sessions 1,2 --fps 20 --duration 1 --resolution 96x80 \
    --slo-p99 250 --seed 7 > loadcurve.txt 2> loadcurve.log)
python3 - "$tmpdir/BENCH_loadcurve.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "hdvb-loadcurve/v1", doc.get("schema")
assert [c["sessions"] for c in doc["cells"]] == [1, 2], doc["cells"]
for cell in doc["cells"]:
    for cls in ("live", "batch"):
        c = cell[cls]
        assert c["admitted"] + c["rejected"] >= 0
        assert 0.0 <= c["rejection_rate"] <= 1.0, c
    assert cell["goodput_fps"] > 0, cell
    assert cell["client_errors"] == 0, cell
assert "frame" in doc["pools"] and "buffer" in doc["pools"]
print(f"serve-load smoke ok: {len(doc['cells'])} cells, schema {doc['schema']}")
EOF

echo "==> network chaos smoke (seeded wire faults, byte-identical recovery)"
# Two severed connections, a stall, a mid-message truncation (which
# also severs) and a payload bit flip, all at fixed message indices.
# Gates are counts and byte-identity only — never wall-clock.
(cd "$tmpdir" && "$OLDPWD/target/release/hdvb" chaos \
    --faults "drop@4,stall@6:20,truncate@12:13,garble@16,drop@20,seed=7" \
    --codec mpeg2 --sequence blue_sky --resolution 96x80 --frames 12 \
    --trials 2 --heartbeat-ms 150 --seed 7 > netchaos.txt 2> netchaos.log)
python3 - "$tmpdir/BENCH_chaos.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "hdvb-chaos/v1", doc.get("schema")
assert doc["identical"] is True, doc
assert doc["reference"]["completed"] == doc["frames"] == 12, doc["reference"]
assert len(doc["runs"]) == 2, doc["runs"]
for run in doc["runs"]:
    assert run["identical"] is True, run
    assert run["digest"] == doc["reference"]["digest"], run
    assert run["faults_fired"] == run["faults_total"] == 5, run
    # Three severing rules (two drops + the truncation), spaced wider
    # than a recovery's handshake traffic: three distinct outages.
    assert run["reconnects"] >= 3, run
    assert run["error"] is None, run
srv = doc["server"]
assert srv["resumes"] >= 6, srv
assert srv["disconnects"] >= 6, srv
print(f"network chaos smoke ok: {len(doc['runs'])} trials byte-identical, "
      f"{srv['resumes']} resumes, schema {doc['schema']}")
EOF

echo "==> ladder + screen smoke (ABR rung conformance, schema checks)"
(cd "$tmpdir" && "$OLDPWD/target/release/hdvb" ladder --codec mpeg2 \
    --sequence screen --resolution 96x64 --frames 12 --switch 6 --seed 7 \
    --threads 1 > ladder.txt 2> ladder.log)
python3 - "$tmpdir/BENCH_ladder.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "hdvb-ladder/v1", doc.get("schema")
assert doc["frames"] == 12 and doc["switch_interval"] == 6, doc
assert doc["segments"] == 2, doc["segments"]
assert len(doc["rungs"]) >= 2, doc["rungs"]
for rung in doc["rungs"]:
    assert rung["packets"] == 12, rung
    assert rung["bits"] > 0 and rung["kbps"] > 0, rung
    assert rung["psnr_y"] > 20, rung
    assert rung["segment_starts"][0] == 0, rung
print(f"ladder smoke ok: {len(doc['rungs'])} rungs, schema {doc['schema']}")
EOF
(cd "$tmpdir" && "$OLDPWD/target/release/hdvb" screen --resolution 96x64 \
    --frames 8 --seed 7 > screen.txt 2> screen.log)
python3 - "$tmpdir/BENCH_screen.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "hdvb-screen/v1", doc.get("schema")
assert doc["frames"] == 8 and doc["seed"] == 7, doc
assert len(doc["codecs"]) == 3, doc["codecs"]
for c in doc["codecs"]:
    assert c["bits"] > 0 and c["psnr_y"] > 20, c
    assert c["encode_fps"] > 0 and c["decode_fps"] > 0, c
print(f"screen smoke ok: {len(doc['codecs'])} codecs, schema {doc['schema']}")
EOF

echo "CI green."
