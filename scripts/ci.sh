#!/usr/bin/env sh
# CI gate for the HD-VideoBench workspace: formatting, lints, release
# build and the full test suite. Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (HDVB_SIMD=scalar)"
HDVB_SIMD=scalar cargo test -q --workspace

echo "==> cargo test (HDVB_SIMD=auto)"
HDVB_SIMD=auto cargo test -q --workspace

echo "CI green."
