#!/usr/bin/env python3
"""Validates an hdvb chrome-trace export (stdlib only, CI-friendly).

Usage: python3 scripts/check_trace.py trace.json
Checks the invariants the chrome://tracing / Perfetto importer relies
on: a top-level object with a "traceEvents" array, every event carrying
pid/tid/name and a known phase, complete ("X") events with non-negative
microsecond timestamps that nest properly per thread, and at least one
span recorded. Exits 0 and prints a one-line summary on success; exits
1 with the first violation otherwise.
"""

import collections
import json
import pathlib
import sys

KNOWN_PHASES = {"X", "M", "C"}


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}")
    sys.exit(1)


def check_event(i: int, ev: dict) -> None:
    if not isinstance(ev, dict):
        fail(f"event {i}: not an object")
    for key in ("ph", "pid", "tid", "name"):
        if key not in ev:
            fail(f"event {i}: missing {key!r}")
    ph = ev["ph"]
    if ph not in KNOWN_PHASES:
        fail(f"event {i}: unknown phase {ph!r}")
    if ph == "X":
        for key in ("ts", "dur"):
            v = ev.get(key)
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"event {i}: bad {key!r}: {v!r}")
    if ph == "M" and ev["name"] != "thread_name":
        fail(f"event {i}: unexpected metadata record {ev['name']!r}")
    if ph == "C" and not isinstance(ev.get("args"), dict):
        fail(f"event {i}: counter without args object")


def check_nesting(events: list) -> None:
    """Spans on one thread must nest: sorted by start, each span either
    contains the next or ends before it starts (1 us slack for the
    export's microsecond rounding)."""
    per_tid = collections.defaultdict(list)
    for ev in events:
        if ev["ph"] == "X":
            per_tid[ev["tid"]].append((ev["ts"], ev["ts"] + ev["dur"]))
    for tid, spans in per_tid.items():
        spans.sort()
        stack = []
        for start, end in spans:
            while stack and stack[-1] <= start + 1:
                stack.pop()
            if stack and end > stack[-1] + 1:
                fail(f"tid {tid}: span [{start}, {end}] crosses enclosing span end {stack[-1]}")
            stack.append(end)


def main() -> None:
    if len(sys.argv) != 2:
        print(__doc__.strip())
        sys.exit(2)
    path = pathlib.Path(sys.argv[1])
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as e:
        fail(f"cannot load {path}: {e}")
    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("displayTimeUnit") not in (None, "ms", "ns"):
        fail(f"bad displayTimeUnit {doc.get('displayTimeUnit')!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents missing or not an array")
    for i, ev in enumerate(events):
        check_event(i, ev)
    spans = [ev for ev in events if ev["ph"] == "X"]
    if not spans:
        fail("no complete (ph=X) span events — nothing was traced")
    check_nesting(events)
    threads = {ev["tid"] for ev in spans}
    names = collections.Counter(ev["name"] for ev in spans)
    top = ", ".join(f"{n}×{c}" for n, c in names.most_common(4))
    print(
        f"check_trace: OK: {len(spans)} spans on {len(threads)} thread(s), "
        f"{len(events)} events ({top})"
    )


if __name__ == "__main__":
    main()
