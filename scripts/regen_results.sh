#!/usr/bin/env sh
# Regenerates the measured result files checked into the repository
# root: results_table5.md, results_figure1.md and the machine-readable
# BENCH_kernels.json / BENCH_figure1.json trajectory files.
#
# The figure1 output ends with a "Measured on:" attribution line (CPU
# model, the SIMD tiers the host supports, and the tier `auto` resolves
# to), and every fps row carries a Tier column — numbers without the
# executed tier are not comparable across hosts.
#
# Usage: scripts/regen_results.sh [frames_table5] [frames_figure1]
set -eu

cd "$(dirname "$0")/.."

T5_FRAMES="${1:-100}"
F1_FRAMES="${2:-40}"

echo "==> cargo build --release"
cargo build --release

HDVB=target/release/hdvb

echo "==> figure1 (${F1_FRAMES} frames, all supported tiers)"
"$HDVB" figure1 --frames "$F1_FRAMES" --threads 1 --json \
    >results_figure1.md 2>results_figure1.log

echo "==> table5 (${T5_FRAMES} frames)"
"$HDVB" table5 --frames "$T5_FRAMES" \
    >results_table5.md 2>results_table5.log

echo "==> kernels microbenchmark"
"$HDVB" kernels --json >/dev/null

echo "==> splice into EXPERIMENTS.md"
python3 scripts/splice_results.py

tail -n 1 results_figure1.md
echo "done."
